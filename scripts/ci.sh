#!/usr/bin/env bash
# CI gate for the Levioso workspace.
#
# The workspace is hermetic by policy (see README.md "Hermetic build
# policy"): every dependency is an in-tree path crate, so everything here
# runs with --offline and must pass on a machine with no registry access.
#
#   1. tier-1 verify:   cargo build --release && cargo test -q
#   2. offline proof:   full-workspace build of every target with the
#                       network-facing resolver disabled
#   3. lint gate:       clippy on all targets, warnings are errors
#
# Usage: scripts/ci.sh  (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> hermetic: full-workspace offline build, all targets"
cargo build --offline --workspace --all-targets

echo "==> full-workspace tests"
cargo test -q --offline --workspace

echo "==> clippy, warnings denied"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> OK: hermetic build, tests, and lints all green"
