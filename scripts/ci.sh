#!/usr/bin/env bash
# CI gate for the Levioso workspace.
#
# The workspace is hermetic by policy (see README.md "Hermetic build
# policy"): every dependency is an in-tree path crate, so everything here
# runs with --offline and must pass on a machine with no registry access.
#
# Steps, grouped by subcommand:
#
#   lint:
#     format gate:        rustfmt --check against rustfmt.toml
#     lint gate:          clippy on every workspace target, warnings denied
#
#   test:
#     tier-1 verify:      cargo build --release && cargo test -q — first
#                         and fast, so the basic contract fails early
#     workspace tests:    unit, property, integration, and doc tests
#     golden gate:        the smoke-tier bench sweep checked against
#                         results/golden/smoke/ — exits nonzero with a
#                         per-cell diff on any drift; the run reuses the
#                         persisted sweep-cell cache under
#                         target/sweep-cache/ so unchanged cells replay
#                         instead of recomputing (results are identical
#                         either way — pinned by crates/bench/tests)
#     throughput check:   perfcheck validates the snapshot the golden gate
#                         just wrote, including that busy-time samples came
#                         only from freshly computed cells
#     trace smoke:        levitrace traces one smoke cell, proving blame
#                         conservation + JSON round-trip
#     noninterference:    table4_noninterference fuzzes every scheme with
#                         two-run secret pairs at the smoke tier (cells
#                         replay from the same sweep-cell cache)
#     cache split:        asserts the golden gate printed its sweep-cache
#                         hit/miss line — a run that silently stopped
#                         reporting the split would hide cache rot
#     serve smoke:        starts `all --smoke --serve` once, submits the
#                         smoke golden check twice via levq, and asserts
#                         the second response is answered entirely from
#                         the in-memory hot tier (nonzero l1_hits, zero
#                         disk reads, zero recomputes) with report bytes
#                         identical to the first; both request latencies
#                         land in target/ci_timing.json. While the server
#                         is still warm, `levtop --once --json` captures a
#                         status snapshot (target/ci_levtop.json) whose
#                         registry counters must reconcile exactly with
#                         the summed per-response cache splits, and the
#                         mirrored METRICS_run.json must carry the
#                         levioso-metrics/1 schema tag
#     run ledger:         one measured smoke run appends this commit's
#                         levioso-ledger/1 record to results/ledger.jsonl
#                         (persisted across CI runs by the workflow cache),
#                         then `levhist --check` gates the perf trajectory
#                         against the robust baseline — with a negative
#                         test proving the gate fires on an injected
#                         synthetic regression, and a vacuity test proving
#                         a thin history exits 4 instead of passing
#
# Every step's wall-clock is reported inline and written machine-readably
# to target/ci_timing.json (schema levioso-ci-timing/1), so a CI run's
# time budget can be tracked step by step across commits.
#
# Usage: scripts/ci.sh [lint|test|all]   (default: all; from anywhere)

set -euo pipefail
cd "$(dirname "$0")/.."

mode=${1:-all}
case "$mode" in
  lint|test|all) ;;
  *)
    echo "usage: scripts/ci.sh [lint|test|all]" >&2
    exit 2
    ;;
esac

start=$SECONDS
step_names=()
step_seconds=()

# run_step <label> <function>: runs the function, echoing the label first
# and recording its wall-clock for the timing report.
run_step() {
  local label="$1" fn="$2"
  local t0=$SECONDS
  echo "==> $label"
  "$fn"
  local dt=$((SECONDS - t0))
  echo "    [${dt}s] $label"
  step_names+=("$label")
  step_seconds+=("$dt")
}

# Written on every exit (including failures) so a red run still records
# how far it got and where the time went.
write_timing() {
  mkdir -p target
  {
    echo '{'
    echo '  "schema": "levioso-ci-timing/1",'
    echo "  \"mode\": \"$mode\","
    echo '  "steps": ['
    local i
    for i in "${!step_names[@]}"; do
      local comma=','
      [[ $i -eq $((${#step_names[@]} - 1)) ]] && comma=''
      echo "    { \"step\": \"${step_names[$i]}\", \"seconds\": ${step_seconds[$i]} }$comma"
    done
    echo '  ],'
    echo "  \"total_seconds\": $((SECONDS - start))"
    echo '}'
  } > target/ci_timing.json
}
trap write_timing EXIT

step_build()     { cargo build --release --offline; }
step_test()      { cargo test -q --offline; }
step_fmt()       { cargo fmt --all --check; }
step_clippy()    { cargo clippy --offline --workspace --all-targets -- -D warnings; }
step_ws_tests()  { cargo test -q --offline --workspace; }
step_doc_tests() { cargo test -q --offline --workspace --doc; }

step_golden_gate() {
  # Tee'd so the cache-split step below can assert on what was reported.
  cargo run -q --release --offline -p levioso-bench --bin all -- --smoke --check \
    | tee target/ci_golden_gate.log
}

step_perfcheck() { cargo run -q --release --offline -p levioso-bench --bin perfcheck; }

step_trace_smoke() {
  cargo run -q --release --offline -p levioso-bench --bin levitrace -- \
    --smoke --workload filter_scan --scheme levioso --out target/ci_trace.json --quiet
}

step_noninterference() {
  cargo run -q --release --offline -p levioso-bench --bin table4_noninterference -- --smoke --quiet
}

step_serve_smoke() {
  local jobs=target/ci_jobs resdir=target/ci_serve_results
  rm -rf "$jobs" "$resdir"
  cargo build -q --release --offline -p levioso-bench
  LEVIOSO_RESULTS_DIR="$resdir" target/release/all --smoke --serve "$jobs" \
    2> target/ci_serve_server.log &
  local server=$!
  # Wait until the server is polling: a request written before its start
  # would be skipped as stale by design.
  local i
  for i in $(seq 1 100); do [[ -d "$jobs" ]] && break; sleep 0.1; done
  sleep 0.5
  local id
  for id in ci-cold ci-warm; do
    if ! target/release/levq "$jobs" check --smoke --id "$id" --timeout-secs 300 \
        > "target/ci_serve_$id.out" 2> "target/ci_serve_$id.err"; then
      kill "$server" 2>/dev/null || true
      echo "ERROR: served check request $id failed:" >&2
      cat "target/ci_serve_$id.err" >&2
      exit 1
    fi
  done
  # Introspection while the server is still warm: one status snapshot via
  # the dashboard's scripting mode.
  if ! target/release/levtop "$jobs" --smoke --once --json --timeout-secs 60 \
      > target/ci_levtop.json 2> target/ci_levtop.err; then
    kill "$server" 2>/dev/null || true
    echo "ERROR: serve smoke: levtop --once --json failed:" >&2
    cat target/ci_levtop.err >&2
    exit 1
  fi
  if ! target/release/levq "$jobs" shutdown --id ci-bye --timeout-secs 60 >/dev/null 2>&1; then
    kill "$server" 2>/dev/null || true
    echo "ERROR: serve smoke: shutdown request failed" >&2
    exit 1
  fi
  if ! wait "$server"; then
    echo "ERROR: serve smoke: server exited nonzero (see target/ci_serve_server.log)" >&2
    exit 1
  fi
  if ! cmp -s target/ci_serve_ci-cold.out target/ci_serve_ci-warm.out; then
    echo "ERROR: serve smoke: warm report bytes differ from the cold report" >&2
    exit 1
  fi
  local warm_line
  warm_line=$(grep -E '^levq: id=ci-warm' target/ci_serve_ci-warm.err)
  echo "    warm request: $warm_line"
  if ! grep -qE 'l1_hits=[1-9][0-9]* l2_hits=0 misses=0' <<< "$warm_line"; then
    echo "ERROR: serve smoke: warm request was not answered entirely from the memory tier" >&2
    exit 1
  fi
  # Fold both request latencies into the timing report (fractional seconds,
  # straight from the responses' wall_seconds).
  local cold_s warm_s
  cold_s=$(sed -nE 's/^levq: id=ci-cold .*wall_seconds=([0-9.]+).*/\1/p' target/ci_serve_ci-cold.err)
  warm_s=$(sed -nE 's/^levq: id=ci-warm .*wall_seconds=([0-9.]+).*/\1/p' target/ci_serve_ci-warm.err)
  step_names+=("serve smoke: cold levq check" "serve smoke: warm levq check")
  step_seconds+=("${cold_s:-0}" "${warm_s:-0}")
  # The status snapshot's registry counters and the per-response splits
  # are the same atomics: the cumulative bench-cache counters must equal
  # the cold+warm splits summed, or the telemetry is lying.
  local reg_l1 reg_l2 reg_miss
  reg_l1=$(sed -nE 's/.*"sweep_cache_l1_hits_total\{cache=bench\}": "([0-9]+)".*/\1/p' target/ci_levtop.json)
  reg_l2=$(sed -nE 's/.*"sweep_cache_l2_hits_total\{cache=bench\}": "([0-9]+)".*/\1/p' target/ci_levtop.json)
  reg_miss=$(sed -nE 's/.*"sweep_cache_misses_total\{cache=bench\}": "([0-9]+)".*/\1/p' target/ci_levtop.json)
  if [[ -z "$reg_l1" || -z "$reg_l2" || -z "$reg_miss" ]]; then
    echo "ERROR: serve smoke: status snapshot is missing the bench cache counters" >&2
    exit 1
  fi
  local sum_l1=0 sum_l2=0 sum_miss=0 f
  for f in target/ci_serve_ci-cold.err target/ci_serve_ci-warm.err; do
    sum_l1=$((sum_l1 + $(sed -nE 's/.* l1_hits=([0-9]+).*/\1/p' "$f")))
    sum_l2=$((sum_l2 + $(sed -nE 's/.* l2_hits=([0-9]+).*/\1/p' "$f")))
    sum_miss=$((sum_miss + $(sed -nE 's/.* misses=([0-9]+).*/\1/p' "$f")))
  done
  if [[ "$reg_l1" -ne "$sum_l1" || "$reg_l2" -ne "$sum_l2" || "$reg_miss" -ne "$sum_miss" ]]; then
    echo "ERROR: serve smoke: status snapshot (l1=$reg_l1 l2=$reg_l2 miss=$reg_miss) does not" >&2
    echo "       reconcile with the summed response splits (l1=$sum_l1 l2=$sum_l2 miss=$sum_miss)" >&2
    exit 1
  fi
  echo "    status snapshot reconciles: l1=$reg_l1 l2=$reg_l2 misses=$reg_miss"
  # Every served request refreshes the metrics mirror; it must be there
  # and schema-tagged.
  if ! grep -q '"schema": "levioso-metrics/1"' "$resdir/METRICS_run.json"; then
    echo "ERROR: serve smoke: $resdir/METRICS_run.json missing or not schema-tagged" >&2
    exit 1
  fi
  # The server's results snapshots (cumulative throughput split + the
  # latency book + the metrics mirror) must satisfy perfcheck too.
  LEVIOSO_RESULTS_DIR="$resdir" target/release/perfcheck
}

# Run ledger + sentinel. Every measured run in this script has already
# appended a levioso-ledger/1 record to results/ledger.jsonl (the golden
# gate when its cells computed fresh, the serve session at shutdown into
# its own results dir); here the trajectory is gated:
#
#   1. append one fresh measured smoke run for *this* commit — the
#      sentinel judges the newest point, so the candidate must be ours;
#      on a fresh clone, seed up to two more runs so the check is not
#      vacuous (CI persists the ledger across runs, so steady state
#      appends exactly one);
#   2. `levhist --check` must pass (exit 0) on the real history;
#   3. negative test: inject a synthetic regression into a scratch copy
#      and require the sentinel to go red naming the degraded series —
#      a gate that cannot fail is not a gate;
#   4. vacuity test: a 2-record scratch ledger must exit 4, not pass.
step_ledger_sentinel() {
  cargo build -q --release --offline -p levioso-bench
  local ledger=results/ledger.jsonl
  # The measured run: cheapest fig binary, cache off so every cell is a
  # genuine recompute and the record carries a real throughput sample.
  # Threads pinned so the series key is stable across hosts.
  target/release/fig1_motivation --smoke --no-cache --quiet --threads 2 >/dev/null
  local code=0 seeds=0
  while :; do
    code=0
    target/release/levhist --check > target/ci_ledger_check.log 2>&1 || code=$?
    [[ $code -ne 4 ]] && break
    if [[ $seeds -ge 2 ]]; then
      cat target/ci_ledger_check.log >&2
      echo "ERROR: ledger sentinel still vacuous after seeding runs" >&2
      exit 1
    fi
    seeds=$((seeds + 1))
    echo "    fresh ledger — seeding measured run $((seeds + 1))"
    target/release/fig1_motivation --smoke --no-cache --quiet --threads 2 >/dev/null
  done
  if [[ $code -ne 0 ]]; then
    cat target/ci_ledger_check.log >&2
    echo "ERROR: levhist --check flagged a perf regression (exit $code)" >&2
    exit 1
  fi
  grep -E '^LEDGER (check|PASS)' target/ci_ledger_check.log | sed 's/^/    /'
  # Negative test on a scratch copy: the injected regression (throughput
  # quartered, latencies 8x) must turn the sentinel red.
  cp "$ledger" target/ci_ledger_regressed.jsonl
  target/release/levhist --ledger target/ci_ledger_regressed.jsonl --inject-regression >/dev/null
  code=0
  target/release/levhist --ledger target/ci_ledger_regressed.jsonl --check \
    > target/ci_ledger_negative.log 2>&1 || code=$?
  if [[ $code -ne 1 ]] || ! grep -q '^LEDGER REGRESSION' target/ci_ledger_negative.log; then
    cat target/ci_ledger_negative.log >&2
    echo "ERROR: sentinel did not flag the injected synthetic regression (exit $code)" >&2
    exit 1
  fi
  echo "    negative test: injected regression flagged ($(grep -c '^LEDGER REGRESSION' \
    target/ci_ledger_negative.log) series, exit 1)"
  # Vacuity test: two records are below the minimum comparable history
  # for every series, and that must read as exit 4, never as a pass.
  head -n 2 "$ledger" > target/ci_ledger_thin.jsonl
  code=0
  target/release/levhist --ledger target/ci_ledger_thin.jsonl --check >/dev/null 2>&1 || code=$?
  if [[ $code -ne 4 ]]; then
    echo "ERROR: a 2-record ledger must be vacuous (exit 4), got exit $code" >&2
    exit 1
  fi
  echo "    vacuity test: 2-record ledger refused with exit 4"
  # The trend table, for the log and the CI step summary.
  target/release/levhist | sed 's/^/    /'
}

step_cache_split() {
  local line
  if ! line=$(grep -E '^sweep-cache: [0-9]+ hits, [0-9]+ misses' target/ci_golden_gate.log); then
    echo "ERROR: golden gate did not report its sweep-cache hit/miss split" >&2
    echo "       (expected a 'sweep-cache: N hits, M misses, ...' line in its output)" >&2
    exit 1
  fi
  echo "    golden gate reported: $line"
}

if [[ "$mode" == "lint" || "$mode" == "all" ]]; then
  run_step "rustfmt, check only" step_fmt
  run_step "clippy on all workspace targets, warnings denied" step_clippy
fi

if [[ "$mode" == "test" || "$mode" == "all" ]]; then
  run_step "tier-1: cargo build --release" step_build
  run_step "tier-1: cargo test -q" step_test
  run_step "full-workspace tests" step_ws_tests
  run_step "doc tests" step_doc_tests
  run_step "golden gate: smoke-tier sweep vs results/golden/smoke/" step_golden_gate
  run_step "simulator throughput snapshot" step_perfcheck
  run_step "trace smoke: levitrace conservation + round-trip on one cell" step_trace_smoke
  run_step "noninterference gate: two-run fuzz of every scheme, smoke tier" step_noninterference
  run_step "golden gate reported its cache hit/miss split" step_cache_split
  run_step "serve smoke: warm server answers the second check from memory" step_serve_smoke
  run_step "run ledger: levhist sentinel + injected-regression negative test" step_ledger_sentinel
fi

echo "==> OK: ci.sh $mode green in $((SECONDS - start))s (per-step timing in target/ci_timing.json)"
