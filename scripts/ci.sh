#!/usr/bin/env bash
# CI gate for the Levioso workspace.
#
# The workspace is hermetic by policy (see README.md "Hermetic build
# policy"): every dependency is an in-tree path crate, so everything here
# runs with --offline and must pass on a machine with no registry access.
#
#   1. tier-1 verify:     cargo build --release && cargo test -q — first
#                         and fast, so the basic contract fails early
#   2. format gate:       rustfmt --check against rustfmt.toml
#   3. lint gate:         clippy on every workspace target (this compiles
#                         the full workspace with all targets, so no
#                         separate workspace build step is needed),
#                         warnings are errors
#   4. workspace tests:   unit, property, integration, and doc tests
#   5. golden gate:       the smoke-tier bench sweep checked against
#                         results/golden/smoke/ — exits nonzero with a
#                         per-cell diff on any drift (see README.md "CI")
#   6. throughput check:  perfcheck validates and summarizes the
#                         results/BENCH_sim_throughput.json snapshot the
#                         golden gate just wrote — fails if it is missing
#                         or malformed, so simulator-throughput tracking
#                         cannot silently rot
#   7. trace smoke:       levitrace traces one smoke cell, exporting the
#                         Chrome/Perfetto trace and proving blame
#                         conservation + JSON round-trip (the binary
#                         exits nonzero on either violation)
#   8. noninterference:   table4_noninterference fuzzes every scheme with
#                         two-run secret pairs at the smoke tier — fails on
#                         any observation diff from a delaying scheme AND
#                         on a clean unsafe baseline (vacuity: a gate that
#                         cannot catch the known-leaky scheme proves
#                         nothing)
#
# Usage: scripts/ci.sh  (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

start=$SECONDS

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> rustfmt, check only"
cargo fmt --all --check

echo "==> clippy on all workspace targets, warnings denied"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> full-workspace tests"
cargo test -q --offline --workspace

echo "==> doc tests"
cargo test -q --offline --workspace --doc

echo "==> golden gate: smoke-tier sweep vs results/golden/smoke/"
cargo run -q --release --offline -p levioso-bench --bin all -- --smoke --check

echo "==> simulator throughput snapshot"
cargo run -q --release --offline -p levioso-bench --bin perfcheck

echo "==> trace smoke: levitrace conservation + round-trip on one cell"
cargo run -q --release --offline -p levioso-bench --bin levitrace -- \
  --smoke --workload filter_scan --scheme levioso --out target/ci_trace.json --quiet

echo "==> noninterference gate: two-run fuzz of every scheme, smoke tier"
cargo run -q --release --offline -p levioso-bench --bin table4_noninterference -- --smoke --quiet

echo "==> OK: build, format, lints, tests, golden gate, throughput snapshot, trace smoke, and noninterference gate all green in $((SECONDS - start))s"
