#!/usr/bin/env bash
# Simulator throughput measurement: runs the paper-tier sweep twice and
# reports the cells-per-busy-second delta between the runs — a quick
# stability probe (a large delta means the host is too noisy for the
# numbers to be trusted) plus the comparison against the recorded
# baseline in results/BENCH_sim_throughput.json.
#
# The second run's snapshot is the one left on disk; the recorded
# `baseline` object is preserved across runs (see the `all` driver).
#
# Both runs force --no-cache: a throughput measurement must simulate
# every cell, never replay one from target/sweep-cache/ — a cache hit
# contributes no busy time, so letting hits through would inflate the
# cells-per-busy-second rate with free cells (perfcheck independently
# rejects snapshots whose samples mix in cached cells).
#
# With --ab the second run instead attaches the no-op trace sink to every
# cell (LEVIOSO_TRACE=null), turning the run-to-run delta into a
# measurement of the enabled-hook overhead ceiling: the trace layer's
# contract is that a hooked-but-idle pipeline stays within 1% of the
# unhooked one (see DESIGN.md §9).
#
# Usage: scripts/perf.sh [--threads N] [--ab]
#        (default threads: 1 — single-threaded numbers are the comparable
#        ones; see DESIGN.md "Hot path & performance model")

set -euo pipefail
cd "$(dirname "$0")/.."

threads=1
ab=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --threads)
      threads=${2:?--threads needs a value}
      shift 2
      ;;
    --ab)
      ab=1
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      echo "usage: scripts/perf.sh [--threads N] [--ab]" >&2
      exit 2
      ;;
  esac
done

echo "==> building release binaries"
cargo build -q --release --offline -p levioso-bench

extract() {
  cargo run -q --release --offline -p levioso-bench --bin perfcheck \
    | sed -n 's/^PERF .*cells_per_busy_sec=\([0-9.]*\).*$/\1/p' | head -1
}

run_a_label="run 1 of 2"
run_b_label="run 2 of 2"
run_b_env=()
if (( ab )); then
  run_a_label="A (no sink)"
  run_b_label="B (NullSink attached)"
  run_b_env=(env LEVIOSO_TRACE=null)
fi

echo "==> paper-tier sweep, $run_a_label (--threads $threads, --no-cache)"
cargo run -q --release --offline -p levioso-bench --bin all -- --paper --check --no-cache --threads "$threads" >/dev/null
cargo run -q --release --offline -p levioso-bench --bin perfcheck
r1=$(extract)

echo "==> paper-tier sweep, $run_b_label (--threads $threads, --no-cache)"
"${run_b_env[@]}" cargo run -q --release --offline -p levioso-bench --bin all -- --paper --check --no-cache --threads "$threads" >/dev/null
cargo run -q --release --offline -p levioso-bench --bin perfcheck
r2=$(extract)

# Percent delta between the two runs, in pure shell arithmetic (no bc on
# the CI image): scale to integer thousandths first. The --ab verdict
# uses per-mille resolution, since its threshold is 1%.
to_milli() { awk -v v="$1" 'BEGIN { printf "%d", v * 1000 }'; }
m1=$(to_milli "$r1")
m2=$(to_milli "$r2")
if (( ab )); then
  if [[ "$m1" -gt 0 ]]; then
    permille=$(( (m1 - m2) * 1000 / m1 ))
    echo "==> cells/busy-sec: A=$r1 B=$r2 (hooked-but-idle slowdown ${permille} per mille)"
    if (( permille > 10 )); then
      echo "==> WARNING: NullSink run >1% slower than bare run — trace hooks are not zero-cost-when-idle"
      exit 1
    fi
    echo "==> OK: hooked-but-idle overhead within the 1% budget"
  else
    echo "==> cells/busy-sec: A=$r1 B=$r2 (run A too fast to resolve; no verdict)"
  fi
elif [[ "$m1" -gt 0 ]]; then
  delta=$(( (m2 - m1) * 100 / m1 ))
  echo "==> cells/busy-sec: run1=$r1 run2=$r2 (run-to-run delta ${delta}%)"
  if (( delta > 10 || delta < -10 )); then
    echo "==> WARNING: >10% run-to-run drift — host too noisy, rerun on a quiet machine"
  fi
else
  echo "==> cells/busy-sec: run1=$r1 run2=$r2"
fi
