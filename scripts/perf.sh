#!/usr/bin/env bash
# Simulator throughput measurement: runs the paper-tier sweep twice and
# reports the cells-per-busy-second delta between the runs — a quick
# stability probe (a large delta means the host is too noisy for the
# numbers to be trusted) plus the comparison against the recorded
# baseline in results/BENCH_sim_throughput.json.
#
# The second run's snapshot is the one left on disk; the recorded
# `baseline` object is preserved across runs (see the `all` driver).
#
# Usage: scripts/perf.sh [--threads N]   (default: 1 — single-threaded
#        numbers are the comparable ones; see DESIGN.md "Hot path &
#        performance model")

set -euo pipefail
cd "$(dirname "$0")/.."

threads=1
if [[ "${1:-}" == "--threads" && -n "${2:-}" ]]; then
  threads=$2
fi

echo "==> building release binaries"
cargo build -q --release --offline -p levioso-bench

extract() {
  cargo run -q --release --offline -p levioso-bench --bin perfcheck \
    | sed -n 's/^PERF .*cells_per_busy_sec=\([0-9.]*\).*$/\1/p' | head -1
}

echo "==> paper-tier sweep, run 1 of 2 (--threads $threads)"
cargo run -q --release --offline -p levioso-bench --bin all -- --paper --check --threads "$threads" >/dev/null
cargo run -q --release --offline -p levioso-bench --bin perfcheck
r1=$(extract)

echo "==> paper-tier sweep, run 2 of 2 (--threads $threads)"
cargo run -q --release --offline -p levioso-bench --bin all -- --paper --check --threads "$threads" >/dev/null
cargo run -q --release --offline -p levioso-bench --bin perfcheck
r2=$(extract)

# Percent delta between the two runs, in pure shell arithmetic (no bc on
# the CI image): scale to integer thousandths first.
to_milli() { awk -v v="$1" 'BEGIN { printf "%d", v * 1000 }'; }
m1=$(to_milli "$r1")
m2=$(to_milli "$r2")
if [[ "$m1" -gt 0 ]]; then
  delta=$(( (m2 - m1) * 100 / m1 ))
  echo "==> cells/busy-sec: run1=$r1 run2=$r2 (run-to-run delta ${delta}%)"
  if (( delta > 10 || delta < -10 )); then
    echo "==> WARNING: >10% run-to-run drift — host too noisy, rerun on a quiet machine"
  fi
else
  echo "==> cells/busy-sec: run1=$r1 run2=$r2"
fi
