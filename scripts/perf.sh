#!/usr/bin/env bash
# Simulator throughput measurement: runs the paper-tier sweep twice and
# reports the cells-per-busy-second delta between the runs — a quick
# stability probe (a large delta means the host is too noisy for the
# numbers to be trusted) plus the comparison against the recorded
# baseline in results/BENCH_sim_throughput.json.
#
# The second run's snapshot is the one left on disk; the recorded
# `baseline` object is preserved across runs (see the `all` driver).
# Every measured run here also appends a levioso-ledger/1 record to
# results/ledger.jsonl (the driver does this on every run), so repeated
# perf.sh sessions build the longitudinal history `levhist` renders and
# `levhist --check` gates on.
#
# Both runs force --no-cache: a throughput measurement must simulate
# every cell, never replay one from target/sweep-cache/ — a cache hit
# contributes no busy time, so letting hits through would inflate the
# cells-per-busy-second rate with free cells (perfcheck independently
# rejects snapshots whose samples mix in cached cells).
#
# With --ab the runs become an observability overhead measurement along
# one of two independent axes:
#
#   --ab        the metrics registry. Run A disables the registry's gated
#               call sites (LEVIOSO_METRICS=off), run B keeps the default
#               (enabled). Neither run attaches a trace sink. The delta is
#               the *enabled-but-idle registry* cost — per-job clock reads
#               and per-cell counter updates — bounded at 1% (DESIGN.md
#               §13).
#   --ab-trace  the trace hooks. Run A is bare, run B attaches the no-op
#               sink to every cell (LEVIOSO_TRACE=null); metrics stay at
#               their default in both. The delta is the *hooked-but-idle*
#               trace cost — nine virtual calls per event plus per-cycle
#               blame construction — bounded at 1% (DESIGN.md §9).
#
# The axes are measured separately on purpose: bundling them into one B
# run would attribute the (per-cycle) trace-hook cost to the (per-cell)
# registry, and vice versa. Because host noise only ever *slows* a run
# down, both modes interleave A/B pairs (A,B,A,B,...) and compare the
# best rate each side achieved: a sequential single pair would attribute
# whatever the host was doing during one of the runs to the treatment.
#
# Usage: scripts/perf.sh [--threads N] [--ab | --ab-trace] [--pairs N]
#        (default threads: 1 — single-threaded numbers are the comparable
#        ones; see DESIGN.md "Hot path & performance model". --pairs sets
#        the number of interleaved A/B pairs in the --ab modes; default 2)

set -euo pipefail
cd "$(dirname "$0")/.."

threads=1
ab=""
pairs=2
while [[ $# -gt 0 ]]; do
  case "$1" in
    --threads)
      threads=${2:?--threads needs a value}
      shift 2
      ;;
    --ab)
      ab=metrics
      shift
      ;;
    --ab-trace)
      ab=trace
      shift
      ;;
    --pairs)
      pairs=${2:?--pairs needs a value}
      shift 2
      ;;
    *)
      echo "unknown argument: $1" >&2
      echo "usage: scripts/perf.sh [--threads N] [--ab | --ab-trace] [--pairs N]" >&2
      exit 2
      ;;
  esac
done

echo "==> building release binaries"
cargo build -q --release --offline -p levioso-bench

extract() {
  cargo run -q --release --offline -p levioso-bench --bin perfcheck \
    | sed -n 's/^PERF .*cells_per_busy_sec=\([0-9.]*\).*$/\1/p' | head -1
}

run_a_label="run 1 of 2"
run_b_label="run 2 of 2"
run_a_env=(env)
run_b_env=(env)
case "$ab" in
  metrics)
    run_a_label="A (metrics off)"
    run_b_label="B (metrics on)"
    run_a_env=(env LEVIOSO_METRICS=off)
    budget_label="enabled-but-idle registry"
    breach_label="metrics-on run >1% slower than the metrics-off run — the registry is not zero-cost-when-idle"
    ;;
  trace)
    run_a_label="A (no sink)"
    run_b_label="B (NullSink attached)"
    run_b_env=(env LEVIOSO_TRACE=null)
    budget_label="hooked-but-idle trace"
    breach_label="NullSink run >1% slower than the bare run — the trace hooks are not zero-cost-when-idle"
    ;;
esac

sweep() { # sweep <env...> — one measured paper-tier run, prints its rate
  "$@" cargo run -q --release --offline -p levioso-bench --bin all -- --paper --check --no-cache --threads "$threads" >/dev/null
  extract
}

# Integer thousandths, in pure shell arithmetic (no bc on the CI image).
# The --ab verdict uses per-mille resolution, since its threshold is 1%.
to_milli() { awk -v v="$1" 'BEGIN { printf "%d", v * 1000 }'; }

if [[ -n "$ab" ]]; then
  # Interleaved pairs, best-of each side: contention can only lower a
  # run's rate, so max-over-pairs converges on each configuration's
  # true throughput while a lone sequential pair measures the host's
  # mood as much as the code.
  best_a=0
  best_b=0
  for (( p = 1; p <= pairs; p++ )); do
    echo "==> paper-tier sweep, $run_a_label, pair $p/$pairs (--threads $threads, --no-cache)"
    ra=$(sweep "${run_a_env[@]}")
    ma=$(to_milli "$ra")
    (( ma > best_a )) && best_a=$ma
    echo "    A rate: $ra cells/busy-sec"
    echo "==> paper-tier sweep, $run_b_label, pair $p/$pairs (--threads $threads, --no-cache)"
    rb=$(sweep "${run_b_env[@]}")
    mb=$(to_milli "$rb")
    (( mb > best_b )) && best_b=$mb
    echo "    B rate: $rb cells/busy-sec"
  done
  cargo run -q --release --offline -p levioso-bench --bin perfcheck
  if [[ "$best_a" -gt 0 ]]; then
    permille=$(( (best_a - best_b) * 1000 / best_a ))
    echo "==> best cells/busy-sec over $pairs pair(s): A=$((best_a / 1000)).$(printf '%03d' $((best_a % 1000))) B=$((best_b / 1000)).$(printf '%03d' $((best_b % 1000))) (${budget_label} slowdown ${permille} per mille)"
    if (( permille > 10 )); then
      echo "==> WARNING: $breach_label"
      exit 1
    fi
    echo "==> OK: $budget_label overhead within the 1% budget"
  else
    echo "==> best rates: A=0 (too fast to resolve; no verdict)"
  fi
  exit 0
fi

echo "==> paper-tier sweep, $run_a_label (--threads $threads, --no-cache)"
"${run_a_env[@]}" cargo run -q --release --offline -p levioso-bench --bin all -- --paper --check --no-cache --threads "$threads" >/dev/null
cargo run -q --release --offline -p levioso-bench --bin perfcheck
r1=$(extract)

echo "==> paper-tier sweep, $run_b_label (--threads $threads, --no-cache)"
"${run_b_env[@]}" cargo run -q --release --offline -p levioso-bench --bin all -- --paper --check --no-cache --threads "$threads" >/dev/null
cargo run -q --release --offline -p levioso-bench --bin perfcheck
r2=$(extract)

m1=$(to_milli "$r1")
m2=$(to_milli "$r2")
if [[ "$m1" -gt 0 ]]; then
  delta=$(( (m2 - m1) * 100 / m1 ))
  echo "==> cells/busy-sec: run1=$r1 run2=$r2 (run-to-run delta ${delta}%)"
  if (( delta > 10 || delta < -10 )); then
    echo "==> WARNING: >10% run-to-run drift — host too noisy, rerun on a quiet machine"
  fi
else
  echo "==> cells/busy-sec: run1=$r1 run2=$r2"
fi
