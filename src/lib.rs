//! # levioso — reproduction of "Levioso: Efficient Compiler-Informed Secure Speculation" (DAC '24)
//!
//! This facade crate re-exports the whole system; see the README for the
//! architecture and DESIGN.md for the experiment index.
//!
//! * [`isa`] — the lev64 instruction set, assembler, and reference
//!   interpreter;
//! * [`compiler`] — CFG analysis, post-dominators, control dependence, the
//!   branch-dependency annotation pass, and the Levi source language;
//! * [`uarch`] — the cycle-level out-of-order core simulator;
//! * [`core`] — the Levioso policy, all baseline defenses, and the scheme
//!   registry;
//! * [`attacks`] — Spectre-style gadgets with an in-simulation receiver;
//! * [`workloads`] — the twelve-kernel SPEC-stand-in suite;
//! * [`stats`] — metrics aggregation and report rendering.
//!
//! ## Quickstart
//!
//! ```
//! use levioso::core::{run_scheme, Scheme};
//! use levioso::uarch::CoreConfig;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = levioso::compiler::levi::compile(
//!     "demo",
//!     r"
//!     arr a @ 0x10000;
//!     fn main() {
//!         let i = 0;
//!         let sum = 0;
//!         while (i < 16) {
//!             if (a[i] > 0) { sum = sum + a[i]; }
//!             i = i + 1;
//!         }
//!         a[16] = sum;
//!     }
//!     ",
//! )?;
//! let stats = run_scheme(&program, Scheme::Levioso, &CoreConfig::default(), |_| {})?;
//! assert!(stats.committed > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use levioso_attacks as attacks;
pub use levioso_compiler as compiler;
pub use levioso_core as core;
pub use levioso_isa as isa;
pub use levioso_stats as stats;
pub use levioso_uarch as uarch;
pub use levioso_workloads as workloads;
