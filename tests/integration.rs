//! Cross-crate integration through the `levioso` facade.

use levioso::core::{run_scheme, Scheme};
use levioso::uarch::CoreConfig;
use levioso::workloads::{suite, Scale};

#[test]
fn facade_pipeline_end_to_end() {
    // Source → compiler (annotations) → simulator → stats, all through the
    // re-exported paths.
    let program = levioso::compiler::levi::compile(
        "facade",
        r"
        arr a @ 0x10000;
        fn main() {
            let i = 0;
            while (i < 32) {
                a[i] = i * i;
                i = i + 1;
            }
        }
        ",
    )
    .expect("compiles");
    let stats =
        run_scheme(&program, Scheme::Levioso, &CoreConfig::default(), |_| {}).expect("runs");
    assert!(stats.committed > 32 * 5);
    assert!(stats.ipc() > 0.5);
}

#[test]
fn constant_time_kernel_has_data_independent_timing() {
    // ct_mix is branchless with data-independent addresses, so its cycle
    // count must not depend on the *values* processed — under every scheme.
    // (This is the "constant-time programs stay constant-time" face of the
    // comprehensive guarantee.)
    let w = suite(Scale::Smoke).into_iter().find(|w| w.name == "ct_mix").expect("kernel");
    for scheme in [Scheme::Unsafe, Scheme::Levioso, Scheme::ExecuteDelay, Scheme::Stt] {
        let run = |bias: i64| {
            let mut program = w.program.clone();
            scheme.prepare(&mut program);
            let mut sim = levioso::uarch::Simulator::new(&program, CoreConfig::default());
            for &(a, v) in &w.memory {
                sim.mem.write_i64(a, v ^ bias); // different data, same addresses
            }
            sim.run(scheme.policy().as_ref()).expect("runs").cycles
        };
        assert_eq!(
            run(0),
            run(0x0f0f_0f0f),
            "{scheme}: ct_mix timing must be independent of processed values"
        );
    }
}

#[test]
fn defenses_never_accelerate() {
    for w in suite(Scale::Smoke).into_iter().take(4) {
        let base = {
            let mut p = w.program.clone();
            Scheme::Unsafe.prepare(&mut p);
            let mut sim = levioso::uarch::Simulator::new(&p, CoreConfig::default());
            w.apply_memory(&mut sim);
            sim.run(Scheme::Unsafe.policy().as_ref()).unwrap().cycles
        };
        for scheme in Scheme::ALL {
            let mut p = w.program.clone();
            scheme.prepare(&mut p);
            let mut sim = levioso::uarch::Simulator::new(&p, CoreConfig::default());
            w.apply_memory(&mut sim);
            let cycles = sim.run(scheme.policy().as_ref()).unwrap().cycles;
            // Gating can only remove speculative work; allow a tiny margin
            // for second-order predictor interactions.
            assert!(
                cycles as f64 >= base as f64 * 0.98,
                "{}: {scheme} ran faster than unsafe ({cycles} vs {base})",
                w.name
            );
        }
    }
}

#[test]
fn annotation_cap_trades_precision_for_overhead_soundly() {
    // Extension experiment: capping the hint budget coarsens annotations;
    // performance may degrade toward the conservative baseline but results
    // stay correct.
    let w = suite(Scale::Smoke).into_iter().find(|w| w.name == "hash_join").expect("kernel");
    let expected = w.expected_checksum();
    let mut program = w.program.clone();
    Scheme::Levioso.prepare(&mut program);
    let full = program.annotations.clone().expect("annotated");
    let mut cycles_by_cap = Vec::new();
    for cap in [0usize, 1, 2, 8] {
        let mut p = program.clone();
        p.annotations = Some(full.capped(cap));
        let mut sim = levioso::uarch::Simulator::new(&p, CoreConfig::default());
        w.apply_memory(&mut sim);
        let stats = sim.run(Scheme::Levioso.policy().as_ref()).unwrap();
        assert_eq!(sim.mem.read_i64(w.checksum_addr), expected, "cap {cap} broke results");
        cycles_by_cap.push(stats.cycles);
    }
    // cap 0 (everything AllOlder) must cost at least as much as cap 8.
    assert!(
        cycles_by_cap[0] >= cycles_by_cap[3],
        "tighter caps cannot be faster: {cycles_by_cap:?}"
    );
}
