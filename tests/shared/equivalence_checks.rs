//! The architectural-equivalence check shared between the random property
//! test (`tests/arch_equivalence.rs`) and the named regression tests
//! (`tests/regressions.rs`): for one Levi source and one input image, the
//! out-of-order core must commit exactly the architectural state the
//! reference interpreter produces — under **every** secure-speculation
//! scheme. Defenses restrict timing, never semantics.

use levioso::compiler::levi;
use levioso::core::Scheme;
use levioso::isa::Machine;
use levioso::uarch::{CoreConfig, Simulator};

/// The array base every generated program indexes from.
pub const ARRAY: u64 = 0x10_0000;

/// Compiles `source`, runs it on the interpreter with `data` preloaded at
/// [`ARRAY`], then asserts every scheme's simulator commits the same
/// architectural fingerprint.
pub fn check_every_scheme_commits_interpreter_state(source: &str, data: &[i64]) {
    let program = levi::compile("prop", source).expect("generated programs compile");

    let mut machine = Machine::new();
    for (i, &v) in data.iter().enumerate() {
        machine.mem.write_i64(ARRAY + 8 * i as u64, v);
    }
    machine.run(&program, 5_000_000).expect("generated programs halt");
    let golden = machine.arch_fingerprint();

    for scheme in Scheme::ALL {
        let mut prepared = program.clone();
        scheme.prepare(&mut prepared);
        let mut sim = Simulator::new(&prepared, CoreConfig::default());
        for (i, &v) in data.iter().enumerate() {
            sim.mem.write_i64(ARRAY + 8 * i as u64, v);
        }
        sim.run(scheme.policy().as_ref())
            .unwrap_or_else(|e| panic!("{scheme} failed: {e}\nsource:\n{source}"));
        assert_eq!(
            sim.arch_fingerprint(),
            golden,
            "{scheme} diverged from the interpreter on:\n{source}"
        );
    }
}
