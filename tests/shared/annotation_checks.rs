//! Annotation-pass invariants shared between the random property tests
//! (`tests/annotation_props.rs`) and the named deterministic regression
//! tests (`tests/regressions.rs`). Each function takes a Levi source
//! string and panics if the invariant is violated.

use levioso::compiler::{annotate_with, AnnotateConfig};
use levioso::isa::DepSet;

/// Both annotation flavours validate structurally, and the static
/// (dataflow-closed) sets are supersets of the control-only sets.
pub fn check_static_superset_of_control(source: &str) {
    let base = levioso::compiler::levi::compile_unannotated("prop", source)
        .expect("generated programs compile");

    let mut ctrl = base.clone();
    annotate_with(&mut ctrl, &AnnotateConfig { static_dataflow: false });
    ctrl.validate().expect("control-only annotations validate");

    let mut full = base.clone();
    annotate_with(&mut full, &AnnotateConfig { static_dataflow: true });
    full.validate().expect("static annotations validate");

    let ca = ctrl.annotations.as_ref().unwrap();
    let fa = full.annotations.as_ref().unwrap();
    for i in 0..base.len() {
        match (ca.deps_of(i), fa.deps_of(i)) {
            (DepSet::Exact(c), DepSet::Exact(f)) => {
                for d in c {
                    assert!(
                        f.binary_search(d).is_ok(),
                        "instr {i}: control dep {d} missing from static set {f:?}\n{source}"
                    );
                }
            }
            (DepSet::AllOlder, DepSet::AllOlder) => {}
            (c, f) => panic!("instr {i}: flavours disagree on conservatism: {c:?} vs {f:?}"),
        }
    }
}

/// Capping to any budget monotonically coarsens: kept sets are unchanged
/// and within the cap, and `AllOlder` is never refined.
pub fn check_capping_coarsens(source: &str) {
    let mut p = levioso::compiler::levi::compile_unannotated("prop", source).expect("compiles");
    annotate_with(&mut p, &AnnotateConfig { static_dataflow: true });
    let a = p.annotations.as_ref().unwrap();
    for cap in [0usize, 1, 2, 4] {
        let capped = a.capped(cap);
        for i in 0..p.len() {
            match (a.deps_of(i), capped.deps_of(i)) {
                (DepSet::Exact(orig), DepSet::Exact(kept)) => {
                    assert!(
                        orig.len() <= cap || orig == kept && orig.len() <= cap,
                        "sets larger than the cap must coarsen"
                    );
                    assert_eq!(orig, kept);
                }
                (_, DepSet::AllOlder) => {} // coarsened or already conservative
                (DepSet::AllOlder, DepSet::Exact(_)) => {
                    panic!("capping must never refine AllOlder");
                }
            }
        }
        assert!(capped.cost().all_older >= a.cost().all_older);
    }
}

/// Real program annotations survive the binary sidecar round trip (after
/// the documented 14-dependency capping).
pub fn check_sidecar_round_trip(source: &str) {
    let mut p = levioso::compiler::levi::compile_unannotated("prop", source).expect("compiles");
    annotate_with(&mut p, &AnnotateConfig { static_dataflow: true });
    let capped = p.annotations.as_ref().unwrap().capped(14);
    let bytes = capped.to_bytes();
    let back = levioso::isa::Annotations::from_bytes(p.len(), &bytes).expect("sidecar decodes");
    assert_eq!(back, capped);
}

/// Every exact dependency references a conditional branch, the entry
/// instruction is dependency-free, and all dependency sets are sorted and
/// duplicate-free.
pub fn check_deps_reference_branches_only(source: &str) {
    let mut p = levioso::compiler::levi::compile_unannotated("prop", source).expect("compiles");
    annotate_with(&mut p, &AnnotateConfig::default());
    let a = p.annotations.as_ref().unwrap();
    for (i, set) in a.iter() {
        if let DepSet::Exact(v) = set {
            for &d in v {
                assert!(p.instrs[d as usize].is_branch());
            }
            assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            if i == 0 {
                assert!(v.is_empty(), "entry instruction has no dependencies");
            }
        }
    }
}
