//! The flagship property test: for *random* Levi programs, the out-of-order
//! core commits exactly the architectural state the reference interpreter
//! produces — under **every** secure-speculation scheme. Defenses restrict
//! timing, never semantics.

use levioso::compiler::levi;
use levioso::core::Scheme;
use levioso::isa::Machine;
use levioso::uarch::{CoreConfig, Simulator};
use proptest::prelude::*;

const ARRAY: u64 = 0x10_0000;

/// Random arithmetic/comparison expression over declared variables and the
/// array, with bounded nesting (the codegen temp pool allows depth ≤ 4).
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|v| v.to_string()),
        (0usize..4).prop_map(|v| format!("v{v}")),
        (0i64..64).prop_map(|i| format!("a[{i}]")),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => (sub.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^"),
                Just("<"), Just(">"), Just("=="), Just("!="), Just("<="), Just(">="),
            ], sub.clone())
            .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
        1 => (sub.clone(), prop_oneof![Just("/"), Just("%")], sub.clone())
            .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
        1 => sub.prop_map(|e| format!("(-{e})")),
    ]
    .boxed()
}

/// Random statement. `v3` is reserved as the loop counter: ordinary
/// assignments never target it and loops are never nested, so every
/// generated `while` terminates.
fn arb_stmt(depth: u32, allow_loop: bool) -> BoxedStrategy<String> {
    let assign = (0usize..3, arb_expr(2)).prop_map(|(v, e)| format!("v{v} = {e};"));
    let store = (0i64..64, arb_expr(2)).prop_map(|(i, e)| format!("a[{i}] = {e};"));
    if depth == 0 {
        return prop_oneof![assign, store].boxed();
    }
    let body = proptest::collection::vec(arb_stmt(depth - 1, false), 1..4)
        .prop_map(|stmts| stmts.join("\n"));
    let base = prop_oneof![
        3 => assign,
        3 => store,
        2 => (arb_expr(2), body.clone(), body.clone()).prop_map(|(c, t, e)| {
            format!("if ({c}) {{ {t} }} else {{ {e} }}")
        }),
    ];
    if !allow_loop {
        return base.boxed();
    }
    prop_oneof![
        6 => base,
        1 => (1i64..12, body).prop_map(|(bound, b)| {
            format!("v3 = 0; while (v3 < {bound}) {{ {b} v3 = v3 + 1; }}")
        }),
    ]
    .boxed()
}

fn arb_program() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(-50i64..50, 4),
        proptest::collection::vec(arb_stmt(2, true), 1..6),
    )
        .prop_map(|(inits, stmts)| {
            let mut src = format!("arr a @ {ARRAY};\nfn main() {{\n");
            for (i, v) in inits.iter().enumerate() {
                src.push_str(&format!("let v{i} = {v};\n"));
            }
            src.push_str(&stmts.join("\n"));
            // Make every variable observable.
            src.push_str("\na[100] = v0; a[101] = v1; a[102] = v2; a[103] = v3;\n}\n");
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_scheme_commits_interpreter_state(
        source in arb_program(),
        data in proptest::collection::vec(-1000i64..1000, 64),
    ) {
        let program = levi::compile("prop", &source).expect("generated programs compile");

        let mut machine = Machine::new();
        for (i, &v) in data.iter().enumerate() {
            machine.mem.write_i64(ARRAY + 8 * i as u64, v);
        }
        machine.run(&program, 5_000_000).expect("generated programs halt");
        let golden = machine.arch_fingerprint();

        for scheme in Scheme::ALL {
            let mut prepared = program.clone();
            scheme.prepare(&mut prepared);
            let mut sim = Simulator::new(&prepared, CoreConfig::default());
            for (i, &v) in data.iter().enumerate() {
                sim.mem.write_i64(ARRAY + 8 * i as u64, v);
            }
            sim.run(scheme.policy().as_ref())
                .unwrap_or_else(|e| panic!("{scheme} failed: {e}\nsource:\n{source}"));
            prop_assert_eq!(
                sim.arch_fingerprint(),
                golden,
                "{} diverged from the interpreter on:\n{}",
                scheme,
                source
            );
        }
    }
}
