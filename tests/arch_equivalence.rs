//! The flagship property test: for *random* Levi programs, the out-of-order
//! core commits exactly the architectural state the reference interpreter
//! produces — under **every** secure-speculation scheme. Random programs
//! come from the seeded `levioso-support` harness; the check body is shared
//! with `tests/regressions.rs`.

use levioso_support::{Gen, Rng};

#[path = "shared/equivalence_checks.rs"]
mod body;
use body::ARRAY;

/// Random arithmetic/comparison expression over declared variables and the
/// array, with bounded nesting (the codegen temp pool allows depth ≤ 4).
fn arb_expr(g: &mut Gen, depth: u32) -> String {
    fn leaf(g: &mut Gen) -> String {
        match g.usize_in(0..3) {
            0 => g.i64_in(-100..100).to_string(),
            1 => format!("v{}", g.usize_in(0..4)),
            _ => format!("a[{}]", g.i64_in(0..64)),
        }
    }
    if depth == 0 {
        return leaf(g);
    }
    const BINOPS: [&str; 12] = ["+", "-", "*", "&", "|", "^", "<", ">", "==", "!=", "<=", ">="];
    const DIVOPS: [&str; 2] = ["/", "%"];
    match g.weighted(&[3, 2, 1, 1]) {
        0 => leaf(g),
        1 => {
            let (l, r) = (arb_expr(g, depth - 1), arb_expr(g, depth - 1));
            format!("({l} {} {r})", g.pick(&BINOPS))
        }
        2 => {
            let (l, r) = (arb_expr(g, depth - 1), arb_expr(g, depth - 1));
            format!("({l} {} {r})", g.pick(&DIVOPS))
        }
        _ => format!("(-{})", arb_expr(g, depth - 1)),
    }
}

/// Random statement. `v3` is reserved as the loop counter: ordinary
/// assignments never target it and loops are never nested, so every
/// generated `while` terminates.
fn arb_stmt(g: &mut Gen, depth: u32, allow_loop: bool) -> String {
    let assign = |g: &mut Gen| format!("v{} = {};", g.usize_in(0..3), arb_expr(g, 2));
    let store = |g: &mut Gen| format!("a[{}] = {};", g.i64_in(0..64), arb_expr(g, 2));
    if depth == 0 {
        return if g.bool_any() { assign(g) } else { store(g) };
    }
    let body = |g: &mut Gen| {
        let count = g.usize_in(1..4);
        (0..count).map(|_| arb_stmt(g, depth - 1, false)).collect::<Vec<_>>().join("\n")
    };
    let base = |g: &mut Gen| match g.weighted(&[3, 3, 2]) {
        0 => assign(g),
        1 => store(g),
        _ => {
            let (c, t, e) = (arb_expr(g, 2), body(g), body(g));
            format!("if ({c}) {{ {t} }} else {{ {e} }}")
        }
    };
    if !allow_loop {
        return base(g);
    }
    match g.weighted(&[6, 1]) {
        0 => base(g),
        _ => {
            let (bound, b) = (g.i64_in(1..12), body(g));
            format!("v3 = 0; while (v3 < {bound}) {{ {b} v3 = v3 + 1; }}")
        }
    }
}

fn arb_program(g: &mut Gen) -> String {
    let mut src = format!("arr a @ {ARRAY};\nfn main() {{\n");
    for i in 0..4 {
        src.push_str(&format!("let v{i} = {};\n", g.i64_in(-50..50)));
    }
    let count = g.usize_in(1..6);
    let stmts: Vec<String> = (0..count).map(|_| arb_stmt(g, 2, true)).collect();
    src.push_str(&stmts.join("\n"));
    // Make every variable observable.
    src.push_str("\na[100] = v0; a[101] = v1; a[102] = v2; a[103] = v3;\n}\n");
    src
}

levioso_support::props! {
    cases = 64;

    fn every_scheme_commits_interpreter_state(g) {
        let source = arb_program(g);
        let data: Vec<i64> = (0..64).map(|_| g.i64_in(-1000..1000)).collect();
        g.note("source", &source);
        g.note("data", &data);
        body::check_every_scheme_commits_interpreter_state(&source, &data);
    }
}
