//! Named deterministic regression tests.
//!
//! These inputs were discovered by the property tests (they were checked
//! in as proptest `.proptest-regressions` seed files before the workspace
//! went hermetic). Each one is now an explicit test so the known-bad
//! inputs stay covered forever, with the failure history documented next
//! to the input instead of hidden behind an opaque seed hash.

use levioso::compiler::levi;
use levioso::core::Scheme;
use levioso::isa::{ExecError, Machine};
use levioso::uarch::{CoreConfig, SimError, Simulator};

#[path = "shared/annotation_checks.rs"]
mod annotation_checks;
#[path = "shared/equivalence_checks.rs"]
mod equivalence_checks;

/// Historical shrink from `tests/annotation_props.rs` (proptest seed
/// `09fce406…`): a single-iteration `while` whose body redefines a
/// variable initialized before the loop. The loop back-edge makes the
/// branch *younger* in program order than the body it controls, which
/// once tripped the dependency-direction assumptions in the annotation
/// checks. All four annotation invariants must hold on it.
const LOOP_REDEFINES_PREHEADER_VAR: &str = "arr a @ 0x10000;\nfn main() {\nlet v0 = 1;\nlet v1 = 2;\nlet v2 = 3;\nlet v3 = 0;\nv3 = 0; while (v3 < 1) { v0 = 0; v3 = v3 + 1; }\n}\n";

#[test]
fn annotation_regression_single_iteration_loop() {
    let source = LOOP_REDEFINES_PREHEADER_VAR;
    annotation_checks::check_static_superset_of_control(source);
    annotation_checks::check_capping_coarsens(source);
    annotation_checks::check_sidecar_round_trip(source);
    annotation_checks::check_deps_reference_branches_only(source);
}

/// Historical shrink from `tests/arch_equivalence.rs` (proptest seed
/// `696ed937…`): nested `while` loops both using `v3` as their counter.
/// The inner loop resets `v3` to 0, so the outer loop's condition
/// `v3 < 10` can never fail — the program **does not halt**. The
/// generator was fixed to never nest loops; this input stays covered to
/// pin down the contract for non-halting programs: the interpreter must
/// stop with a clean step-budget error (not hang, not corrupt state) and
/// every scheme's simulator must stop with a clean cycle-budget error.
const NESTED_LOOPS_SHARING_COUNTER: &str = "arr a @ 1048576;\nfn main() {\nlet v0 = 0;\nlet v1 = 0;\nlet v2 = 0;\nlet v3 = 0;\nv3 = 0; while (v3 < 10) { v3 = 0; while (v3 < 1) { v0 = 0; v3 = v3 + 1; } v3 = v3 + 1; }\na[100] = v0; a[101] = v1; a[102] = v2; a[103] = v3;\n}\n";

/// The preloaded input image the shrink carried (only `a[15..]` nonzero).
const NESTED_LOOPS_DATA: [i64; 64] = [
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, -4, 614, 443, -294, 582, -86, 800, -516, -878,
    550, 179, 974, 786, -897, -49, 550, 724, 157, 745, -27, -499, 267, 28, -908, -318, 142, 363,
    -685, -395, -923, 504, -645, 614, -839, -22, -871, 295, -845, -263, 598, -444, -203, 289, 883,
    704, -880, 892, -614, -651,
];

#[test]
fn arch_equivalence_regression_nonhalting_program_fails_cleanly() {
    let program = levi::compile("regression", NESTED_LOOPS_SHARING_COUNTER).expect("compiles");

    // The interpreter hits its step budget and says so.
    let mut machine = Machine::new();
    for (i, &v) in NESTED_LOOPS_DATA.iter().enumerate() {
        machine.mem.write_i64(equivalence_checks::ARRAY + 8 * i as u64, v);
    }
    let budget = 100_000;
    assert_eq!(
        machine.run(&program, budget),
        Err(ExecError::StepLimit { max_steps: budget }),
        "non-halting program must exhaust the step budget"
    );

    // Every scheme's simulator hits its cycle budget and says so — no
    // hangs, no panics, no scheme-dependent divergence in failure mode.
    for scheme in Scheme::ALL {
        let mut prepared = program.clone();
        scheme.prepare(&mut prepared);
        let config = CoreConfig { max_cycles: 60_000, ..CoreConfig::default() };
        let mut sim = Simulator::new(&prepared, config);
        for (i, &v) in NESTED_LOOPS_DATA.iter().enumerate() {
            sim.mem.write_i64(equivalence_checks::ARRAY + 8 * i as u64, v);
        }
        match sim.run(scheme.policy().as_ref()) {
            Err(SimError::CycleLimit { max_cycles }) => assert_eq!(max_cycles, 60_000),
            other => panic!("{scheme}: expected CycleLimit, got {other:?}"),
        }
    }
}

/// The halting prefix of the nested-loop shrink (outer loop removed): the
/// same statements must still satisfy full interpreter/simulator
/// equivalence under every scheme, so the non-halting regression above
/// is pinned to the *termination* problem, not to these statement shapes.
#[test]
fn arch_equivalence_regression_inner_loop_alone_is_equivalent() {
    let source = "arr a @ 1048576;\nfn main() {\nlet v0 = 0;\nlet v1 = 0;\nlet v2 = 0;\nlet v3 = 0;\nv3 = 0; while (v3 < 1) { v0 = 0; v3 = v3 + 1; }\na[100] = v0; a[101] = v1; a[102] = v2; a[103] = v3;\n}\n";
    equivalence_checks::check_every_scheme_commits_interpreter_state(source, &NESTED_LOOPS_DATA);
}
