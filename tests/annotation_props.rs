//! Property tests on the annotation pass itself: structural validity,
//! monotonicity between flavours, and soundness-preserving coarsening, over
//! random Levi programs.

use levioso::compiler::{annotate_with, AnnotateConfig};
use levioso::isa::DepSet;
use proptest::prelude::*;

/// Small random structured programs (a lighter generator than the
/// equivalence test's: no data needed, just shapes).
fn arb_source() -> impl Strategy<Value = String> {
    let expr = prop_oneof![
        (-20i64..20).prop_map(|v| v.to_string()),
        (0usize..3).prop_map(|v| format!("v{v}")),
        (0i64..16).prop_map(|i| format!("a[{i}]")),
        ((0usize..3), (0i64..16)).prop_map(|(v, i)| format!("(v{v} + a[{i}])")),
    ];
    let stmt = prop_oneof![
        (0usize..3, expr.clone()).prop_map(|(v, e)| format!("v{v} = {e};")),
        (0i64..16, expr.clone()).prop_map(|(i, e)| format!("a[{i}] = {e};")),
        (expr.clone(), 0usize..3, expr.clone())
            .prop_map(|(c, v, e)| format!("if ({c}) {{ v{v} = {e}; }}")),
        (expr.clone(), 0usize..3, expr.clone()).prop_map(|(c, v, e)| {
            format!("if ({c}) {{ v{v} = {e}; }} else {{ v{v} = 0 - {e}; }}")
        }),
        (1i64..8, 0usize..3, expr).prop_map(|(n, v, e)| {
            format!("v3 = 0; while (v3 < {n}) {{ v{v} = {e}; v3 = v3 + 1; }}")
        }),
    ];
    proptest::collection::vec(stmt, 1..8).prop_map(|stmts| {
        format!(
            "arr a @ 0x10000;\nfn main() {{\nlet v0 = 1;\nlet v1 = 2;\nlet v2 = 3;\nlet v3 = 0;\n{}\n}}\n",
            stmts.join("\n")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Both annotation flavours validate structurally, and the static
    /// (dataflow-closed) sets are supersets of the control-only sets.
    #[test]
    fn static_flavour_is_a_superset_of_control_only(source in arb_source()) {
        let base = levioso::compiler::levi::compile_unannotated("prop", &source)
            .expect("generated programs compile");

        let mut ctrl = base.clone();
        annotate_with(&mut ctrl, &AnnotateConfig { static_dataflow: false });
        ctrl.validate().expect("control-only annotations validate");

        let mut full = base.clone();
        annotate_with(&mut full, &AnnotateConfig { static_dataflow: true });
        full.validate().expect("static annotations validate");

        let ca = ctrl.annotations.as_ref().unwrap();
        let fa = full.annotations.as_ref().unwrap();
        for i in 0..base.len() {
            match (ca.deps_of(i), fa.deps_of(i)) {
                (DepSet::Exact(c), DepSet::Exact(f)) => {
                    for d in c {
                        prop_assert!(
                            f.binary_search(d).is_ok(),
                            "instr {i}: control dep {d} missing from static set {f:?}\n{source}"
                        );
                    }
                }
                (DepSet::AllOlder, DepSet::AllOlder) => {}
                (c, f) => prop_assert!(
                    false,
                    "instr {i}: flavours disagree on conservatism: {c:?} vs {f:?}"
                ),
            }
        }
    }

    /// Exact dependency sets only ever reference *older* conditional
    /// branches in straight-line-ordered programs? No — branches may be
    /// younger in program order (loop back-edges). What must hold: every
    /// dep is a conditional branch, and capping monotonically coarsens.
    #[test]
    fn capping_never_invents_precision(source in arb_source()) {
        let mut p = levioso::compiler::levi::compile_unannotated("prop", &source)
            .expect("compiles");
        annotate_with(&mut p, &AnnotateConfig { static_dataflow: true });
        let a = p.annotations.as_ref().unwrap();
        for cap in [0usize, 1, 2, 4] {
            let capped = a.capped(cap);
            for i in 0..p.len() {
                match (a.deps_of(i), capped.deps_of(i)) {
                    (DepSet::Exact(orig), DepSet::Exact(kept)) => {
                        prop_assert!(orig.len() <= cap || orig == kept && orig.len() <= cap,
                            "sets larger than the cap must coarsen");
                        prop_assert_eq!(orig, kept);
                    }
                    (_, DepSet::AllOlder) => {} // coarsened or already conservative
                    (DepSet::AllOlder, DepSet::Exact(_)) => {
                        prop_assert!(false, "capping must never refine AllOlder");
                    }
                }
            }
            prop_assert!(capped.cost().all_older >= a.cost().all_older);
        }
    }

    /// Real program annotations survive the binary sidecar round trip
    /// (after the documented 14-dependency capping).
    #[test]
    fn sidecar_round_trips_for_real_programs(source in arb_source()) {
        let mut p = levioso::compiler::levi::compile_unannotated("prop", &source)
            .expect("compiles");
        annotate_with(&mut p, &AnnotateConfig { static_dataflow: true });
        let capped = p.annotations.as_ref().unwrap().capped(14);
        let bytes = capped.to_bytes();
        let back = levioso::isa::Annotations::from_bytes(p.len(), &bytes)
            .expect("sidecar decodes");
        prop_assert_eq!(back, capped);
    }

    /// Every exact dependency references a conditional branch, the entry
    /// instruction is dependency-free (it executes unconditionally exactly
    /// once), and all dependency sets are sorted and duplicate-free.
    ///
    /// (Note what is deliberately *not* asserted: instructions preceding
    /// the first branch in index order may still carry dependencies —
    /// loop-header condition code sits before its own back-edge branch.)
    #[test]
    fn deps_reference_branches_only(source in arb_source()) {
        let mut p = levioso::compiler::levi::compile_unannotated("prop", &source)
            .expect("compiles");
        annotate_with(&mut p, &AnnotateConfig::default());
        let a = p.annotations.as_ref().unwrap();
        for (i, set) in a.iter() {
            if let DepSet::Exact(v) = set {
                for &d in v {
                    prop_assert!(p.instrs[d as usize].is_branch());
                }
                prop_assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
                if i == 0 {
                    prop_assert!(v.is_empty(), "entry instruction has no dependencies");
                }
            }
        }
    }
}
