//! Quickstart: compile a Levi program, inspect its Levioso annotations,
//! and compare protected vs. unprotected execution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use levioso::compiler::levi;
use levioso::core::{run_scheme, Scheme};
use levioso::uarch::CoreConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a kernel with a data-dependent branch: the classic case
    //    where hardware-only defenses over-restrict.
    let program = levi::compile(
        "sum_positive",
        r"
        arr data @ 0x100000;
        const N = 2048;
        fn main() {
            let i = 0;
            let sum = 0;
            while (i < N) {
                if (data[i] > 0) { sum = sum + data[i]; }
                i = i + 1;
            }
            data[N] = sum;
        }
        ",
    )?;

    // 2. The compiler has already annotated it: every instruction carries
    //    its true branch dependencies.
    let cost = program.annotations.as_ref().expect("compile() annotates").cost();
    println!("program: {} instructions", program.len());
    println!(
        "annotations: {:.2} deps/instruction, {:.2} hint bits/instruction, max set {}",
        cost.deps_per_instr(),
        cost.bits_per_instr(),
        cost.max_deps
    );

    // 3. Run it on the out-of-order core, unprotected and under Levioso.
    let config = CoreConfig::default();
    let fill = |sim: &mut levioso::uarch::Simulator<'_>| {
        for i in 0..2048u64 {
            let v = (i as i64).wrapping_mul(2654435761) % 101 - 50;
            sim.mem.write_i64(0x10_0000 + 8 * i, v);
        }
    };
    let unprotected = run_scheme(&program, Scheme::Unsafe, &config, fill)?;
    let levioso = run_scheme(&program, Scheme::Levioso, &config, fill)?;
    let execute_delay = run_scheme(&program, Scheme::ExecuteDelay, &config, fill)?;

    println!();
    println!("{:<16} {:>10} {:>8} {:>14}", "scheme", "cycles", "IPC", "slowdown");
    for (name, s) in
        [("unsafe", &unprotected), ("levioso", &levioso), ("execute-delay", &execute_delay)]
    {
        println!(
            "{:<16} {:>10} {:>8.2} {:>13.2}x",
            name,
            s.cycles,
            s.ipc(),
            s.cycles as f64 / unprotected.cycles as f64
        );
    }
    println!();
    println!(
        "levioso recovers {:.0}% of the conservative scheme's overhead on this kernel",
        100.0
            * (1.0
                - (levioso.cycles - unprotected.cycles) as f64
                    / (execute_delay.cycles - unprotected.cycles).max(1) as f64)
    );
    Ok(())
}
