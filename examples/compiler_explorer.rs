//! Compiler explorer: show what the Levioso analysis computes for a small
//! program — reconvergence points and per-instruction true branch
//! dependencies, side by side with the generated assembly.
//!
//! ```sh
//! cargo run --release --example compiler_explorer
//! ```

use levioso::compiler::{levi, Analysis};
use levioso::isa::DepSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r"
    arr a @ 0x10000;
    const N = 64;
    fn main() {
        let i = 0;
        let sum = 0;
        while (i < N) {
            if (a[i] > 0) { sum = sum + a[i]; }
            i = i + 1;
        }
        a[N] = sum;
    }
    ";
    println!("--- Levi source ---{source}");

    let program = levi::compile("explorer", source)?;
    let analysis = Analysis::of(&program);
    let annotations = program.annotations.as_ref().expect("compile() annotates");

    println!("--- lev64 + true branch dependencies ---");
    for (i, instr) in program.instrs.iter().enumerate() {
        let deps = match annotations.deps_of(i) {
            DepSet::Exact(v) if v.is_empty() => "-".to_string(),
            DepSet::Exact(v) => v.iter().map(|d| format!("@{d}")).collect::<Vec<_>>().join(","),
            DepSet::AllOlder => "ALL-OLDER".to_string(),
        };
        let reconv = if instr.is_branch() {
            match analysis.reconvergence_point(&program, i as u32) {
                Some(r) => format!("   ; reconverges at @{r}"),
                None => "   ; no reconvergence".to_string(),
            }
        } else {
            String::new()
        };
        println!("@{i:<3} {instr:<28} deps: {deps}{reconv}");
    }

    let cost = annotations.cost();
    println!("\n--- annotation cost ---");
    println!("instructions:        {}", cost.instructions);
    println!("deps/instruction:    {:.2}", cost.deps_per_instr());
    println!("hint bits/instr:     {:.2}", cost.bits_per_instr());
    println!("largest set:         {}", cost.max_deps);
    println!("conservative fallbacks: {}", cost.all_older);
    Ok(())
}
