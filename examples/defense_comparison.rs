//! Compare every defense scheme on three contrasting workloads and print
//! the overhead table (a miniature of the paper's headline figure).
//!
//! ```sh
//! cargo run --release --example defense_comparison
//! ```

use levioso::core::Scheme;
use levioso::stats::Table;
use levioso::uarch::{CoreConfig, Simulator};
use levioso::workloads::{suite, Scale};

fn main() {
    let picks = ["filter_scan", "pointer_chase", "ct_mix"];
    let workloads: Vec<_> =
        suite(Scale::Smoke).into_iter().filter(|w| picks.contains(&w.name)).collect();

    let mut headers = vec!["scheme"];
    headers.extend(picks);
    let mut table = Table::new("overhead vs unsafe baseline (slowdown ×)", &headers);

    let mut baselines = Vec::new();
    for w in &workloads {
        baselines.push(run(w, Scheme::Unsafe));
    }
    for scheme in Scheme::ALL {
        let mut row = vec![scheme.name().to_string()];
        for (w, &base) in workloads.iter().zip(&baselines) {
            let cycles = run(w, scheme);
            row.push(format!("{:.3}", cycles as f64 / base as f64));
        }
        table.push_row(row);
    }
    println!("{table}");
    println!("filter_scan: data-dependent branch + independent stream — the Levioso win");
    println!("pointer_chase: serial dependent misses — nobody can help");
    println!("ct_mix: branchless constant-time code — everything is cheap to protect");
}

fn run(w: &levioso::workloads::Workload, scheme: Scheme) -> u64 {
    let mut program = w.program.clone();
    scheme.prepare(&mut program);
    let mut sim = Simulator::new(&program, CoreConfig::default());
    w.apply_memory(&mut sim);
    let stats = sim.run(scheme.policy().as_ref()).expect("workloads always run");
    assert_eq!(
        sim.mem.read_i64(w.checksum_addr),
        w.expected_checksum(),
        "{} under {scheme} diverged",
        w.name
    );
    stats.cycles
}
