//! End-to-end Spectre demonstration: run every attack against the
//! unprotected core and against Levioso, showing the receiver's actual
//! timing measurements.
//!
//! ```sh
//! cargo run --release --example spectre_demo
//! ```

use levioso::attacks::{run_attack, run_prime_probe, AttackKind};
use levioso::core::Scheme;

fn main() {
    let secret = 13usize;
    println!("planting secret value {secret} in the victim\n");
    for kind in AttackKind::ALL {
        println!("=== {kind} ===");
        for scheme in [Scheme::Unsafe, Scheme::Stt, Scheme::Levioso] {
            let run = run_attack(kind, scheme, secret);
            let verdict = match run.inferred {
                Some(v) if v == secret => format!("LEAKED secret {v}"),
                Some(v) => format!("noisy signal (inferred {v})"),
                None => "no signal".to_string(),
            };
            println!(
                "  {:<12} {:<24} reload latencies: {}",
                scheme.name(),
                verdict,
                render_latencies(&run.probe.latencies, run.inferred)
            );
        }
        println!();
    }
    println!("(‘ct-secret’ and ‘spectre-rsb’ under stt are the non-speculative-");
    println!(" secret cases the sandbox threat model does not cover — Levioso's");
    println!(" guarantee is comprehensive, so it blocks all five.)\n");

    // The flush-free channel: prime+probe over L1 sets.
    println!("=== prime+probe (no flush instruction anywhere) ===");
    for scheme in [Scheme::Unsafe, Scheme::Levioso] {
        let r = run_prime_probe(scheme, secret);
        let verdict = match r.inferred_secret() {
            Some(v) if v == secret => format!("LEAKED secret {v}"),
            Some(v) => format!("noisy signal (inferred {v})"),
            None => "no signal".to_string(),
        };
        println!(
            "  {:<12} {:<24} per-set probe totals: {:?}",
            scheme.name(),
            verdict,
            r.set_latencies
        );
    }
}

fn render_latencies(lat: &[u64], hot: Option<usize>) -> String {
    lat.iter()
        .enumerate()
        .map(|(i, &l)| if Some(i) == hot { format!("[{l}]") } else { l.to_string() })
        .collect::<Vec<_>>()
        .join(" ")
}
