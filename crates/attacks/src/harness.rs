//! Attack execution harness and the security-evaluation matrix (T2).

use crate::gadgets::{ct_secret, phi_gadget, spectre_rsb, spectre_v1, spectre_v2, Gadget};
use crate::receiver::ProbeResult;
use levioso_core::Scheme;
use levioso_uarch::{CoreConfig, SimStats, Simulator};
use std::fmt;

/// The attacks in the security evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Bounds-check bypass (speculatively loaded secret).
    SpectreV1,
    /// Indirect-target poisoning (speculatively loaded secret).
    SpectreV2,
    /// Transient transmit of a non-speculatively loaded secret.
    CtSecret,
    /// Post-reconvergence φ-value transmit (data-dependence stressor).
    PhiGadget,
    /// Return-target poisoning through a stale RAS prediction
    /// (SpectreRSB-style; transmits a non-speculatively loaded secret).
    SpectreRsb,
}

impl AttackKind {
    /// All attacks, in report order.
    pub const ALL: [AttackKind; 5] = [
        AttackKind::SpectreV1,
        AttackKind::SpectreV2,
        AttackKind::CtSecret,
        AttackKind::PhiGadget,
        AttackKind::SpectreRsb,
    ];

    /// Short name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::SpectreV1 => "spectre-v1",
            AttackKind::SpectreV2 => "spectre-v2",
            AttackKind::CtSecret => "ct-secret",
            AttackKind::PhiGadget => "phi-gadget",
            AttackKind::SpectreRsb => "spectre-rsb",
        }
    }

    /// Builds the gadget for a planted secret value.
    pub fn gadget(self, secret: usize) -> Gadget {
        match self {
            AttackKind::SpectreV1 => spectre_v1(secret),
            AttackKind::SpectreV2 => spectre_v2(secret),
            AttackKind::CtSecret => ct_secret(secret),
            AttackKind::PhiGadget => phi_gadget(secret),
            AttackKind::SpectreRsb => spectre_rsb(secret),
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one attack run.
#[derive(Debug, Clone)]
pub struct AttackRun {
    /// The receiver's measured reload latencies.
    pub probe: ProbeResult,
    /// The secret the receiver inferred, if the signal was clean.
    pub inferred: Option<usize>,
    /// Simulator statistics of the run.
    pub stats: SimStats,
}

/// Runs `kind` with a planted `secret` under `scheme` and returns what the
/// receiver saw.
///
/// # Panics
///
/// Panics if the simulation itself fails (attack programs are fixed and
/// must always run to completion under every scheme).
pub fn run_attack(kind: AttackKind, scheme: Scheme, secret: usize) -> AttackRun {
    let Gadget { mut program, memory } = kind.gadget(secret);
    scheme.prepare(&mut program);
    let mut sim = Simulator::new(&program, CoreConfig::default());
    for (a, v) in memory {
        sim.mem.write_i64(a, v);
    }
    let stats = sim
        .run(scheme.policy().as_ref())
        .unwrap_or_else(|e| panic!("{kind} under {scheme} failed to simulate: {e}"));
    let probe = ProbeResult::read_from(&sim.mem);
    let inferred = probe.inferred_secret();
    AttackRun { probe, inferred, stats }
}

/// Draws a seeded pair of *distinct* secret values for `kind` (both within
/// the oracle range). Distinctness is what makes the two-run check below
/// meaningful: a receiver that always reads back the same line — say via a
/// stuck-hot oracle entry or a probe-readout collision — can match one
/// planted secret by coincidence, but not two different ones.
pub fn seeded_secret_pair(kind: AttackKind, seed: u64) -> (usize, usize) {
    use levioso_support::{Rng, SplitMix64};
    // Mix the attack kind in so the five attacks don't share a pair.
    let kind_idx = AttackKind::ALL.iter().position(|&k| k == kind).expect("known kind") as u64;
    let mut rng = SplitMix64::new(seed ^ kind_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let lines = crate::layout::ORACLE_LINES as u64;
    let a = rng.below(lines) as usize;
    let b = (a + 1 + rng.below(lines - 1) as usize) % lines as usize;
    (a, b)
}

/// Whether `kind` successfully exfiltrates under `scheme` with a seeded
/// pair of distinct secrets: the receiver must recover *both* values, i.e.
/// actually distinguish them rather than hit one by coincidence.
pub fn attack_leaks_seeded(kind: AttackKind, scheme: Scheme, seed: u64) -> bool {
    let (a, b) = seeded_secret_pair(kind, seed);
    run_attack(kind, scheme, a).inferred == Some(a)
        && run_attack(kind, scheme, b).inferred == Some(b)
}

/// Whether `kind` successfully exfiltrates the secret under `scheme` (the
/// T2 matrix cell): [`attack_leaks_seeded`] at the default seed.
pub fn attack_leaks(kind: AttackKind, scheme: Scheme) -> bool {
    attack_leaks_seeded(kind, scheme, 0)
}

/// One row of the security matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The scheme evaluated.
    pub scheme: Scheme,
    /// Per-attack leak verdicts, in [`AttackKind::ALL`] order.
    pub leaks: Vec<bool>,
}

/// Computes the full security matrix (T2): every scheme × every attack.
pub fn security_matrix() -> Vec<MatrixRow> {
    Scheme::ALL
        .iter()
        .map(|&scheme| MatrixRow {
            scheme,
            leaks: AttackKind::ALL.iter().map(|&k| attack_leaks(k, scheme)).collect(),
        })
        .collect()
}

/// The verdicts this reproduction *expects* (encodes each scheme's
/// documented coverage); the test suite asserts the measured matrix equals
/// this.
pub fn expected_matrix() -> Vec<(Scheme, [bool; 5])> {
    use Scheme::*;
    vec![
        // scheme            v1     v2     ct     phi    rsb
        (Unsafe, [true, true, true, true, true]),
        (Fence, [false, false, false, false, false]),
        (DelayOnMiss, [false, false, false, false, false]),
        (Stt, [false, false, true, true, true]),
        (CommitDelay, [false, false, false, false, false]),
        (ExecuteDelay, [false, false, false, false, false]),
        (Levioso, [false, false, false, false, false]),
        (LeviosoStatic, [false, false, false, false, false]),
        (LeviosoCtrlOnly, [false, false, false, true, false]),
    ]
}
