//! Attack execution harness and the security-evaluation matrix (T2).

use crate::gadgets::{ct_secret, phi_gadget, spectre_rsb, spectre_v1, spectre_v2, Gadget};
use crate::receiver::ProbeResult;
use levioso_core::Scheme;
use levioso_uarch::{CoreConfig, SimStats, Simulator};
use std::fmt;

/// The attacks in the security evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Bounds-check bypass (speculatively loaded secret).
    SpectreV1,
    /// Indirect-target poisoning (speculatively loaded secret).
    SpectreV2,
    /// Transient transmit of a non-speculatively loaded secret.
    CtSecret,
    /// Post-reconvergence φ-value transmit (data-dependence stressor).
    PhiGadget,
    /// Return-target poisoning through a stale RAS prediction
    /// (SpectreRSB-style; transmits a non-speculatively loaded secret).
    SpectreRsb,
}

impl AttackKind {
    /// All attacks, in report order.
    pub const ALL: [AttackKind; 5] = [
        AttackKind::SpectreV1,
        AttackKind::SpectreV2,
        AttackKind::CtSecret,
        AttackKind::PhiGadget,
        AttackKind::SpectreRsb,
    ];

    /// Short name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::SpectreV1 => "spectre-v1",
            AttackKind::SpectreV2 => "spectre-v2",
            AttackKind::CtSecret => "ct-secret",
            AttackKind::PhiGadget => "phi-gadget",
            AttackKind::SpectreRsb => "spectre-rsb",
        }
    }

    /// Builds the gadget for a planted secret value.
    pub fn gadget(self, secret: usize) -> Gadget {
        match self {
            AttackKind::SpectreV1 => spectre_v1(secret),
            AttackKind::SpectreV2 => spectre_v2(secret),
            AttackKind::CtSecret => ct_secret(secret),
            AttackKind::PhiGadget => phi_gadget(secret),
            AttackKind::SpectreRsb => spectre_rsb(secret),
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one attack run.
#[derive(Debug, Clone)]
pub struct AttackRun {
    /// The receiver's measured reload latencies.
    pub probe: ProbeResult,
    /// The secret the receiver inferred, if the signal was clean.
    pub inferred: Option<usize>,
    /// Simulator statistics of the run.
    pub stats: SimStats,
}

/// Runs `kind` with a planted `secret` under `scheme` and returns what the
/// receiver saw.
///
/// # Panics
///
/// Panics if the simulation itself fails (attack programs are fixed and
/// must always run to completion under every scheme).
pub fn run_attack(kind: AttackKind, scheme: Scheme, secret: usize) -> AttackRun {
    let Gadget { mut program, memory } = kind.gadget(secret);
    scheme.prepare(&mut program);
    let mut sim = Simulator::new(&program, CoreConfig::default());
    for (a, v) in memory {
        sim.mem.write_i64(a, v);
    }
    let stats = sim
        .run(scheme.policy().as_ref())
        .unwrap_or_else(|e| panic!("{kind} under {scheme} failed to simulate: {e}"));
    let probe = ProbeResult::read_from(&sim.mem);
    let inferred = probe.inferred_secret();
    AttackRun { probe, inferred, stats }
}

/// Whether `kind` successfully exfiltrates the secret under `scheme`: the
/// receiver must recover two different planted secrets.
pub fn attack_leaks(kind: AttackKind, scheme: Scheme) -> bool {
    [3usize, 11].iter().all(|&s| run_attack(kind, scheme, s).inferred == Some(s))
}

/// One row of the security matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The scheme evaluated.
    pub scheme: Scheme,
    /// Per-attack leak verdicts, in [`AttackKind::ALL`] order.
    pub leaks: Vec<bool>,
}

/// Computes the full security matrix (T2): every scheme × every attack.
pub fn security_matrix() -> Vec<MatrixRow> {
    Scheme::ALL
        .iter()
        .map(|&scheme| MatrixRow {
            scheme,
            leaks: AttackKind::ALL.iter().map(|&k| attack_leaks(k, scheme)).collect(),
        })
        .collect()
}

/// The verdicts this reproduction *expects* (encodes each scheme's
/// documented coverage); the test suite asserts the measured matrix equals
/// this.
pub fn expected_matrix() -> Vec<(Scheme, [bool; 5])> {
    use Scheme::*;
    vec![
        // scheme            v1     v2     ct     phi    rsb
        (Unsafe, [true, true, true, true, true]),
        (Fence, [false, false, false, false, false]),
        (DelayOnMiss, [false, false, false, false, false]),
        (Stt, [false, false, true, true, true]),
        (CommitDelay, [false, false, false, false, false]),
        (ExecuteDelay, [false, false, false, false, false]),
        (Levioso, [false, false, false, false, false]),
        (LeviosoStatic, [false, false, false, false, false]),
        (LeviosoCtrlOnly, [false, false, false, true, false]),
    ]
}
