//! Shared memory layout of the attack programs.
//!
//! All gadgets use one fixed data-address map so receivers, gadget
//! builders, and tests agree on where everything lives.

/// Number of oracle lines probed (one per possible secret value).
pub const ORACLE_LINES: usize = 16;

/// Cache-line stride between oracle entries (one line each).
pub const LINE: u64 = 64;

/// Victim table base (Spectre-v1 in-bounds region, 8-byte entries).
pub const TABLE: u64 = 0x10_0000;

/// Where the secret byte lives: `TABLE + V1_OOB_INDEX * 8`, so the v1
/// out-of-bounds read lands exactly on it.
pub const SECRET_ADDR: u64 = TABLE + V1_OOB_INDEX * 8;

/// The out-of-bounds index used by the v1 attack iteration.
pub const V1_OOB_INDEX: u64 = 512;

/// Flush+reload oracle array base (16 lines + one spill line for the
/// training dummy).
pub const ORACLE: u64 = 0x20_0000;

/// Victim bounds variable (`len`) for Spectre-v1.
pub const LEN_ADDR: u64 = 0x30_0000;

/// Branch-condition variable for the single-shot gadgets.
pub const COND_ADDR: u64 = 0x31_0000;

/// Per-iteration attacker indices (v1) / jump targets (v2).
pub const CTRL_ARRAY: u64 = 0x32_0000;

/// Receiver output: one measured latency (u64 cycles) per oracle line.
pub const RESULT: u64 = 0x33_0000;

/// Dummy transmit value used during v2 training; deliberately one past the
/// probed lines so training pollution is invisible to the receiver.
pub const DUMMY_VALUE: i64 = ORACLE_LINES as i64;

/// In-bounds length of the v1 victim table.
pub const V1_LEN: i64 = 8;

/// Training iterations before the attack iteration.
pub const TRAIN_ITERS: i64 = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oob_index_lands_on_secret() {
        assert_eq!(TABLE + V1_OOB_INDEX * 8, SECRET_ADDR);
        assert!(V1_OOB_INDEX as i64 >= V1_LEN, "attack index must be out of bounds");
    }

    #[test]
    fn regions_do_not_overlap() {
        let regions = [
            (TABLE, TABLE + (V1_OOB_INDEX + 1) * 8),
            (ORACLE, ORACLE + (ORACLE_LINES as u64 + 1) * LINE),
            (LEN_ADDR, LEN_ADDR + 8),
            (COND_ADDR, COND_ADDR + 8),
            (CTRL_ARRAY, CTRL_ARRAY + 256),
            (RESULT, RESULT + ORACLE_LINES as u64 * 8),
        ];
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(a.1 <= b.0 || b.1 <= a.0, "{a:?} overlaps {b:?}");
            }
        }
    }
}
