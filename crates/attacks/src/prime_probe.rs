//! Prime+probe receiver: recovers the secret without ever sharing memory
//! (no `flush`), by monitoring L1 **sets** instead of lines.
//!
//! The attacker primes the 16 L1 sets the oracle lines map to with its own
//! eviction sets (8 ways × 4 KiB stride), lets the victim run, then re-times
//! each eviction set: the set the transient load touched evicts one primed
//! way, so its probe pays an L2 round-trip the others don't.
//!
//! Layout care: the victim's in-window accesses (the branch condition) and
//! the receiver's own result stores are placed in L1 sets **outside** the
//! monitored range so the only in-window disturbance is the transient load
//! itself.

use crate::layout::{ORACLE, ORACLE_LINES, SECRET_ADDR};
use levioso_isa::reg::*;
use levioso_isa::{Memory, ProgramBuilder};

/// L1 geometry assumed by the eviction sets (matches
/// `HierarchyConfig::default()`: 32 KiB, 8-way, 64 B lines → 64 sets,
/// 4 KiB way stride).
const L1_SETS: u64 = 64;
const L1_WAYS: u64 = 8;
const LINE: u64 = 64;
const WAY_STRIDE: u64 = L1_SETS * LINE;

/// Attacker's eviction-array base (set-aligned with the oracle).
const EV_BASE: u64 = 0x60_0000;

/// Branch-condition address for the prime+probe gadget: maps to L1 set 20,
/// outside the monitored sets 0..16.
pub const PP_COND_ADDR: u64 = 0x31_0000 + 20 * LINE;

/// Receiver output for prime+probe: per-set total probe latency. Placed in
/// L1 sets 32/33, outside the monitored range.
pub const PP_RESULT: u64 = 0x33_0000 + 32 * LINE;

/// The L1 set oracle line `i` maps to (the oracle base is set-aligned).
fn monitored_set(i: usize) -> u64 {
    ((ORACLE >> 6) + i as u64) % L1_SETS
}

/// Address of way `w` of the attacker's eviction set for `set`.
fn ev_addr(set: u64, way: u64) -> u64 {
    EV_BASE + set * LINE + way * WAY_STRIDE
}

/// Emits the prime phase: fill every monitored set with attacker lines.
/// Clobbers `s8`, `s9`, `t0`.
pub fn emit_prime(b: &mut ProgramBuilder) {
    for i in 0..ORACLE_LINES {
        let set = monitored_set(i);
        for way in 0..L1_WAYS {
            b.li(S8, ev_addr(set, way) as i64);
            b.ld(S9, S8, 0);
        }
    }
    b.fence();
}

/// Emits the probe phase: re-time each monitored set's eviction lines and
/// store the per-set total latency to [`PP_RESULT`]. Clobbers `s8`–`s10`,
/// `t0`–`t2`.
pub fn emit_probe(b: &mut ProgramBuilder) {
    b.fence();
    for i in 0..ORACLE_LINES {
        let set = monitored_set(i);
        b.rdcycle(T1);
        for way in 0..L1_WAYS {
            b.li(S8, ev_addr(set, way) as i64);
            b.ld(S9, S8, 0);
            // Serialize between ways so each load's latency is exposed
            // rather than overlapped away.
            b.fence();
        }
        b.rdcycle(T2);
        b.sub(T2, T2, T1);
        b.li(S10, (PP_RESULT + 8 * i as u64) as i64);
        b.sd(T2, S10, 0);
    }
}

/// Prime+probe variant of the constant-time-secret gadget: no `flush`
/// anywhere; the receiver works purely through cache contention.
pub fn pp_ct_secret(secret: usize) -> crate::Gadget {
    assert!(secret < ORACLE_LINES);
    let mut b = ProgramBuilder::new("pp_ct_secret");
    // Victim uses its secret architecturally, well before the window.
    b.li(A2, SECRET_ADDR as i64);
    b.ld(S6, A2, 0);
    b.fence();
    emit_prime(&mut b);
    // Victim trigger: slow condition (set 20), mispredicted branch,
    // transient transmit touching oracle[secret]'s set.
    b.li(A1, PP_COND_ADDR as i64);
    b.li(A3, ORACLE as i64);
    b.ld(T3, A1, 0);
    b.bnez(T3, "skip"); // predicted not-taken, actually taken
    b.slli(T4, S6, 6);
    b.add(T4, T4, A3);
    b.ld(T5, T4, 0); // transient transmit
    b.label("skip");
    emit_probe(&mut b);
    b.halt();
    crate::Gadget {
        program: b.build().expect("pp gadget builds"),
        memory: vec![(SECRET_ADDR, secret as i64), (PP_COND_ADDR, 1)],
    }
}

/// Per-set probe latencies read back from memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimeProbeResult {
    /// Total reload latency per monitored set.
    pub set_latencies: Vec<u64>,
}

impl PrimeProbeResult {
    /// Reads the receiver's output after a run.
    pub fn read_from(mem: &Memory) -> Self {
        PrimeProbeResult {
            set_latencies: (0..ORACLE_LINES as u64)
                .map(|i| mem.read_u64(PP_RESULT + 8 * i))
                .collect(),
        }
    }

    /// Infers the secret: the unique set whose probe latency clearly
    /// exceeds the quietest set (one way went to L2/DRAM). `None` when no
    /// set, or more than one, stands out.
    pub fn inferred_secret(&self) -> Option<usize> {
        let min = *self.set_latencies.iter().min()?;
        let noisy: Vec<usize> = self
            .set_latencies
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > min + 10)
            .map(|(i, _)| i)
            .collect();
        match noisy.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

/// Runs the prime+probe attack under `scheme` and returns what the
/// receiver inferred.
pub fn run_prime_probe(scheme: levioso_core::Scheme, secret: usize) -> PrimeProbeResult {
    let crate::Gadget { mut program, memory } = pp_ct_secret(secret);
    scheme.prepare(&mut program);
    let mut sim = levioso_uarch::Simulator::new(&program, levioso_uarch::CoreConfig::default());
    for (a, v) in memory {
        sim.mem.write_i64(a, v);
    }
    sim.run(scheme.policy().as_ref()).expect("pp gadget simulates");
    PrimeProbeResult::read_from(&sim.mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_core::Scheme;

    #[test]
    fn monitored_sets_are_distinct_and_avoid_infrastructure() {
        let sets: Vec<u64> = (0..ORACLE_LINES).map(monitored_set).collect();
        let mut dedup = sets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ORACLE_LINES, "each oracle line gets its own set");
        let cond_set = (PP_COND_ADDR >> 6) % L1_SETS;
        let result_set = (PP_RESULT >> 6) % L1_SETS;
        assert!(!sets.contains(&cond_set), "condition load must not alias a monitored set");
        assert!(!sets.contains(&result_set), "result stores must not alias a monitored set");
        let secret_set = (SECRET_ADDR >> 6) % L1_SETS;
        // The secret's architectural load happens before priming, so
        // aliasing is harmless — but record the fact.
        let _ = secret_set;
    }

    #[test]
    fn prime_probe_recovers_secret_on_unsafe() {
        for secret in [2usize, 9, 14] {
            let r = run_prime_probe(Scheme::Unsafe, secret);
            assert_eq!(r.inferred_secret(), Some(secret), "latencies: {:?}", r.set_latencies);
        }
    }

    #[test]
    fn prime_probe_blocked_by_comprehensive_schemes() {
        for scheme in [Scheme::Levioso, Scheme::ExecuteDelay, Scheme::Fence] {
            let r = run_prime_probe(scheme, 9);
            assert_eq!(
                r.inferred_secret(),
                None,
                "{scheme} must silence prime+probe; latencies: {:?}",
                r.set_latencies
            );
        }
    }

    #[test]
    fn prime_probe_leaks_under_stt() {
        // The transmitted value is an architectural secret: sandbox-model
        // taint tracking does not stop it, through this channel either.
        let r = run_prime_probe(Scheme::Stt, 5);
        assert_eq!(r.inferred_secret(), Some(5));
    }
}
