//! The cache side-channel receiver.
//!
//! After a gadget (transiently) touches `oracle[secret * 64]`, the receiver
//! times a load of every oracle line with serialized `rdcycle` pairs —
//! flush+reload's measurement phase, executed *inside* the simulation — and
//! stores the latencies to the `RESULT` array, where the harness reads them
//! back.

use crate::layout::{LINE, ORACLE, ORACLE_LINES, RESULT};
use levioso_isa::reg::*;
use levioso_isa::{Memory, ProgramBuilder};

/// Emits the measurement loop. Clobbers `s8`–`s11` and `t0`–`t2`; must run
/// after the gadget (it starts with a `fence` so all transient activity has
/// drained).
pub fn emit_probe_loop(b: &mut ProgramBuilder) {
    b.fence();
    b.li(S8, 0); // line index
    b.li(S9, ORACLE as i64);
    b.li(S10, RESULT as i64);
    b.label(".probe");
    // t0 = oracle + i * 64
    b.slli(T0, S8, 6);
    b.add(T0, T0, S9);
    b.rdcycle(T1);
    b.ld(T2, T0, 0);
    b.rdcycle(T2); // overwrite loaded value; we only need timing
    b.sub(T2, T2, T1);
    // result[i] = latency
    b.slli(T0, S8, 3);
    b.add(T0, T0, S10);
    b.sd(T2, T0, 0);
    b.addi(S8, S8, 1);
    b.li(T0, ORACLE_LINES as i64);
    b.blt(S8, T0, ".probe");
}

/// Latencies measured by the in-simulation receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeResult {
    /// One reload latency per oracle line.
    pub latencies: Vec<u64>,
}

impl ProbeResult {
    /// Reads the receiver's output from simulated memory after a run.
    pub fn read_from(mem: &Memory) -> Self {
        ProbeResult {
            latencies: (0..ORACLE_LINES as u64).map(|i| mem.read_u64(RESULT + 8 * i)).collect(),
        }
    }

    /// The secret the receiver infers: the unique line whose reload was an
    /// L1/L2-class hit while every other line paid a memory-class miss.
    /// `None` when zero or several lines look hot (no clean signal).
    pub fn inferred_secret(&self) -> Option<usize> {
        let hot: Vec<usize> =
            self.latencies.iter().enumerate().filter(|(_, &l)| l < 60).map(|(i, _)| i).collect();
        match hot.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Whether line `i`'s reload latency is memory-class (cold).
    pub fn is_cold(&self, i: usize) -> bool {
        self.latencies[i] >= 60
    }
}

/// The address of oracle line `i` (for direct cache-state checks).
pub fn oracle_line(i: usize) -> u64 {
    ORACLE + i as u64 * LINE
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_isa::Machine;

    #[test]
    fn probe_loop_writes_all_slots_architecturally() {
        let mut b = ProgramBuilder::new("probe");
        emit_probe_loop(&mut b);
        b.halt();
        let p = b.build().unwrap();
        // On the functional interpreter rdcycle counts retired
        // instructions, so latencies are small but *written*.
        let mut m = Machine::new();
        m.run(&p, 100_000).unwrap();
        let r = ProbeResult::read_from(&m.mem);
        assert_eq!(r.latencies.len(), ORACLE_LINES);
        assert!(r.latencies.iter().all(|&l| l > 0));
    }

    #[test]
    fn inference_requires_a_unique_hot_line() {
        let mut lat = vec![140u64; ORACLE_LINES];
        let r = ProbeResult { latencies: lat.clone() };
        assert_eq!(r.inferred_secret(), None, "all cold: no signal");
        lat[7] = 4;
        let r = ProbeResult { latencies: lat.clone() };
        assert_eq!(r.inferred_secret(), Some(7));
        lat[3] = 4;
        let r = ProbeResult { latencies: lat };
        assert_eq!(r.inferred_secret(), None, "two hot lines: ambiguous");
    }

    #[test]
    fn probe_measures_real_cache_state_in_the_simulator() {
        use levioso_uarch::{CoreConfig, Simulator, UnsafeBaseline};
        // Architecturally touch oracle line 5, then probe.
        let mut b = ProgramBuilder::new("warm5");
        b.li(A0, oracle_line(5) as i64);
        b.ld(A1, A0, 0);
        emit_probe_loop(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let mut sim = Simulator::new(&p, CoreConfig::default());
        sim.run(&UnsafeBaseline).unwrap();
        let r = ProbeResult::read_from(&sim.mem);
        assert_eq!(r.inferred_secret(), Some(5), "latencies: {:?}", r.latencies);
    }
}
