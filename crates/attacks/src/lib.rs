//! # levioso-attacks — transient-execution attacks for the evaluation
//!
//! End-to-end Spectre-style proofs of concept against the simulated core,
//! used by the security evaluation (T2) of the [Levioso (DAC '24)]
//! reproduction. Each attack is one program: victim gadget + attacker
//! training + an **in-simulation flush+reload receiver** that times a load
//! of every oracle cache line with serialized `rdcycle` pairs and writes
//! the latencies to memory, exactly like a real PoC.
//!
//! ```
//! use levioso_attacks::{run_attack, AttackKind};
//! use levioso_core::Scheme;
//! // Spectre-v1 recovers the planted secret on the unprotected core…
//! let run = run_attack(AttackKind::SpectreV1, Scheme::Unsafe, 5);
//! assert_eq!(run.inferred, Some(5));
//! // …and recovers nothing under Levioso.
//! let run = run_attack(AttackKind::SpectreV1, Scheme::Levioso, 5);
//! assert_eq!(run.inferred, None);
//! ```
//!
//! [Levioso (DAC '24)]: https://doi.org/10.1145/3649329.3655632

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gadgets;
mod harness;
pub mod layout;
pub mod prime_probe;
pub mod receiver;

pub use gadgets::Gadget;
pub use harness::{
    attack_leaks, attack_leaks_seeded, expected_matrix, run_attack, security_matrix,
    seeded_secret_pair, AttackKind, AttackRun, MatrixRow,
};
pub use prime_probe::{run_prime_probe, PrimeProbeResult};
pub use receiver::{oracle_line, ProbeResult};
