//! Attack gadget programs.
//!
//! Each builder returns a complete program (victim + attacker + receiver)
//! plus its initial memory image. All gadgets finish with the timed probe
//! loop from [`crate::receiver`], so a single simulator run produces the
//! attacker's measurement.
//!
//! A shared convention: the victim architecturally touches its secret once
//! at program start (a victim that never uses its secret has nothing to
//! steal); the *attacker* never accesses it architecturally.

use crate::layout::*;
use crate::receiver::emit_probe_loop;
use levioso_isa::reg::*;
use levioso_isa::{Program, ProgramBuilder};

/// Address holding the v2 training dummy transmit value.
pub const DUMMY_ADDR: u64 = 0x34_0000;

/// A gadget program plus its initial memory image.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// The complete attack program (gadget + receiver).
    pub program: Program,
    /// Initial memory contents (address, value) pairs.
    pub memory: Vec<(u64, i64)>,
}

/// Victim prologue: architecturally touch the secret (and fence) so the
/// transient gadget later finds it cached/ready.
fn emit_victim_uses_secret(b: &mut ProgramBuilder) {
    b.li(T3, SECRET_ADDR as i64);
    b.ld(T4, T3, 0);
    b.fence();
}

/// Spectre-v1: bounds-check bypass.
///
/// A victim loop checks `idx < len` before reading `table[idx]` and
/// transmitting `oracle[table[idx] * 64]`. The attacker supplies in-bounds
/// indices for [`TRAIN_ITERS`] iterations (training the predictor
/// not-taken and transmitting only the harmless spill line), keeps `len`
/// flushed so the check resolves slowly, then supplies [`V1_OOB_INDEX`] —
/// which points the table read at the secret.
pub fn spectre_v1(secret: usize) -> Gadget {
    assert!(secret < ORACLE_LINES, "secret must fit the oracle");
    let mut b = ProgramBuilder::new("spectre_v1");
    emit_victim_uses_secret(&mut b);
    b.li(S0, 0); // iteration
    b.li(S1, TRAIN_ITERS); // the attack iteration index
    b.li(S2, TABLE as i64);
    b.li(S3, ORACLE as i64);
    b.li(S4, LEN_ADDR as i64);
    b.li(S5, CTRL_ARRAY as i64);
    b.label("loop");
    b.slli(T3, S0, 3);
    b.add(T3, T3, S5);
    b.ld(A0, T3, 0); // this iteration's index
    b.ld(T4, S4, 0); // len — cold every iteration (flushed below)
    b.flush(S4, 0);
    b.bgeu(A0, T4, "skip"); // the bounds check
                            // --- victim gadget (architectural when in bounds) ---
    b.slli(T5, A0, 3);
    b.add(T5, T5, S2);
    b.ld(T6, T5, 0); // table[idx]
    b.slli(T6, T6, 6);
    b.add(T6, T6, S3);
    b.ld(A1, T6, 0); // transmit
    b.label("skip");
    b.addi(S0, S0, 1);
    b.bge(S1, S0, "loop"); // while iteration <= TRAIN_ITERS
    emit_probe_loop(&mut b);
    b.halt();

    let mut memory = vec![(LEN_ADDR, V1_LEN), (SECRET_ADDR, secret as i64)];
    // In-bounds table entries transmit the unprobed spill line.
    for i in 0..V1_LEN {
        memory.push((TABLE + 8 * i as u64, DUMMY_VALUE));
    }
    // Attacker-chosen indices: in-bounds during training, then the OOB hit.
    for i in 0..TRAIN_ITERS {
        memory.push((CTRL_ARRAY + 8 * i as u64, i % V1_LEN));
    }
    memory.push((CTRL_ARRAY + 8 * TRAIN_ITERS as u64, V1_OOB_INDEX as i64));
    Gadget { program: b.build().expect("v1 builds"), memory }
}

/// Spectre-v2 style: indirect-target poisoning.
///
/// An indirect jump is trained to a transmit gadget for [`TRAIN_ITERS`]
/// iterations (transmitting only the harmless dummy line). On the final
/// iteration the *architectural* target — loaded from a cold line so the
/// jump resolves slowly — is a benign block, but the target buffer still
/// predicts the gadget, which transiently transmits the secret.
pub fn spectre_v2(secret: usize) -> Gadget {
    assert!(secret < ORACLE_LINES);
    let benign_tgt_addr = CTRL_ARRAY + 0x1000; // separate, never-warmed line
    let mut b = ProgramBuilder::new("spectre_v2");
    emit_victim_uses_secret(&mut b);
    b.li(S0, 0);
    b.li(S1, TRAIN_ITERS);
    b.li(S3, ORACLE as i64);
    b.li(S5, CTRL_ARRAY as i64);
    b.label("loop");
    // Transmit-source pointer: dummy while training, the secret last.
    b.li(A3, DUMMY_ADDR as i64);
    b.blt(S0, S1, "src_ok");
    b.li(A3, SECRET_ADDR as i64);
    b.label("src_ok");
    // Target-slot address: per-iteration slot while training (warm), the
    // far cold slot on the attack iteration.
    b.slli(T3, S0, 3);
    b.add(T3, T3, S5);
    b.blt(S0, S1, "tgt_ok");
    b.li(T3, benign_tgt_addr as i64);
    b.label("tgt_ok");
    b.ld(T4, T3, 0);
    b.jr(T4); // the poisoned indirect jump
    b.label("gadget");
    b.ld(T5, A3, 0); // dummy (training) or secret (transient)
    b.slli(T5, T5, 6);
    b.add(T5, T5, S3);
    b.ld(T6, T5, 0); // transmit
    b.j("join");
    b.label("benign");
    b.nop();
    b.label("join");
    b.addi(S0, S0, 1);
    b.bge(S1, S0, "loop");
    emit_probe_loop(&mut b);
    b.halt();

    let program = b.build().expect("v2 builds");
    let gadget_pc = program.label("gadget").expect("gadget label") as i64;
    let benign_pc = program.label("benign").expect("benign label") as i64;
    let mut memory = vec![(SECRET_ADDR, secret as i64), (DUMMY_ADDR, DUMMY_VALUE)];
    for i in 0..TRAIN_ITERS {
        memory.push((CTRL_ARRAY + 8 * i as u64, gadget_pc));
    }
    memory.push((benign_tgt_addr, benign_pc));
    Gadget { program, memory }
}

/// Constant-time-victim gadget: the secret reaches a register through a
/// **non-speculative** load (the victim's normal, constant-time use of its
/// key); only the branch steering into the transmit sequence is transient.
/// This is the case sandbox-model defenses (STT) do not cover.
pub fn ct_secret(secret: usize) -> Gadget {
    assert!(secret < ORACLE_LINES);
    let mut b = ProgramBuilder::new("ct_secret");
    b.li(A2, SECRET_ADDR as i64);
    b.ld(S6, A2, 0); // architectural secret load
    b.fence(); // definitively non-speculative
    b.li(A1, COND_ADDR as i64);
    b.li(A3, ORACLE as i64);
    b.ld(T3, A1, 0); // slow (cold) condition, value 1
    b.bnez(T3, "skip"); // predicted not-taken (cold counters), actually taken
                        // --- transient path ---
    b.slli(T4, S6, 6);
    b.add(T4, T4, A3);
    b.ld(T5, T4, 0); // transmit the architectural secret
    b.label("skip");
    emit_probe_loop(&mut b);
    b.halt();
    Gadget {
        program: b.build().expect("ct builds"),
        memory: vec![(SECRET_ADDR, secret as i64), (COND_ADDR, 1)],
    }
}

/// SpectreRSB-style gadget: a function overwrites its return address with
/// a value from a **cold** load, so its `ret` resolves slowly while the
/// return-address stack still predicts the original call site — which
/// contains a transmit of the architectural secret. The correct return
/// target skips the gadget, so the transmit only ever executes
/// transiently.
pub fn spectre_rsb(secret: usize) -> Gadget {
    assert!(secret < ORACLE_LINES);
    let ret_target_addr: u64 = 0x35_0000; // cold line holding the real return target
    let mut b = ProgramBuilder::new("spectre_rsb");
    b.li(A2, SECRET_ADDR as i64);
    b.ld(S6, A2, 0); // architectural secret
    b.li(A3, ORACLE as i64);
    b.fence();
    b.call("victim");
    // --- original return site: the transmit gadget (RAS predicts here) ---
    b.slli(T4, S6, 6);
    b.add(T4, T4, A3);
    b.ld(T5, T4, 0); // transient transmit
    b.label("after_gadget");
    emit_probe_loop(&mut b);
    b.halt();
    b.label("victim");
    // Replace the return address with `after_gadget`, loaded from a cold
    // line so the ret's target resolves late.
    b.li(T3, ret_target_addr as i64);
    b.ld(RA, T3, 0);
    b.ret(); // RAS predicts the original call site; actual skips the gadget
    let program = b.build().expect("rsb builds");
    let after = program.label("after_gadget").expect("label") as i64;
    Gadget { program, memory: vec![(SECRET_ADDR, secret as i64), (ret_target_addr, after)] }
}

/// Post-reconvergence φ gadget: the transmit sits *after* the branch's
/// reconvergence point (so it is **not** control-dependent on it) but its
/// address is a φ value defined differently on the two arms. Exposes
/// control-only dependency tracking: without dataflow closure the transmit
/// looks branch-independent and leaks.
pub fn phi_gadget(secret: usize) -> Gadget {
    assert!(secret < ORACLE_LINES);
    let mut b = ProgramBuilder::new("phi_gadget");
    b.li(A2, SECRET_ADDR as i64);
    b.ld(S6, A2, 0); // architectural secret
    b.fence();
    b.li(A1, COND_ADDR as i64);
    b.li(A3, ORACLE as i64);
    b.ld(T3, A1, 0); // slow condition, value 1
    b.bnez(T3, "other"); // predicted not-taken, actually taken
    b.mv(T4, S6); // wrong path: φ = secret
    b.j("join");
    b.label("other");
    b.li(T4, DUMMY_VALUE); // correct path: φ = spill line
    b.label("join");
    b.slli(T5, T4, 6);
    b.add(T5, T5, A3);
    b.ld(T6, T5, 0); // post-reconvergence transmit
    emit_probe_loop(&mut b);
    b.halt();
    Gadget {
        program: b.build().expect("phi builds"),
        memory: vec![(SECRET_ADDR, secret as i64), (COND_ADDR, 1)],
    }
}
