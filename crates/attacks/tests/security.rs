//! The security evaluation (T2): every attack against every scheme, with
//! the receiver actually recovering (or failing to recover) planted
//! secrets through timed loads inside the simulation.

use levioso_attacks::{
    attack_leaks, attack_leaks_seeded, expected_matrix, run_attack, seeded_secret_pair, AttackKind,
};
use levioso_core::Scheme;

#[test]
fn security_matrix_matches_documented_coverage() {
    let mut failures = Vec::new();
    for (scheme, expected) in expected_matrix() {
        for (k, &want) in AttackKind::ALL.iter().zip(expected.iter()) {
            let got = attack_leaks(*k, scheme);
            if got != want {
                failures.push(format!(
                    "{scheme} × {k}: expected {}, measured {}",
                    if want { "LEAK" } else { "blocked" },
                    if got { "LEAK" } else { "blocked" },
                ));
            }
        }
    }
    assert!(failures.is_empty(), "matrix mismatches:\n{}", failures.join("\n"));
}

/// Regression pin for the seeded-pair fix: the matrix cell must require the
/// receiver to *distinguish* two distinct seeded secrets, and under that
/// stricter check the unsafe baseline still loses every attack while the
/// comprehensive schemes still block them — across several seeds, so no
/// single lucky pair carries the verdict.
#[test]
fn seeded_secret_pairs_are_distinct_and_unsafe_still_loses() {
    for seed in [0u64, 1, 7, 0xdead_beef] {
        for kind in AttackKind::ALL {
            let (a, b) = seeded_secret_pair(kind, seed);
            assert_ne!(a, b, "{kind} seed {seed}: pair must be distinct");
            assert!(a < 16 && b < 16, "{kind} seed {seed}: pair must fit the oracle");
            assert!(
                attack_leaks_seeded(kind, Scheme::Unsafe, seed),
                "{kind} seed {seed}: unsafe baseline must leak both secrets"
            );
            assert!(
                !attack_leaks_seeded(kind, Scheme::Levioso, seed),
                "{kind} seed {seed}: levioso must block"
            );
        }
    }
    // Different attacks must not all share one pair at a given seed.
    let pairs: Vec<(usize, usize)> =
        AttackKind::ALL.iter().map(|&k| seeded_secret_pair(k, 0)).collect();
    assert!(pairs.windows(2).any(|w| w[0] != w[1]), "kinds draw from distinct streams: {pairs:?}");
}

#[test]
fn receiver_recovers_every_secret_value_on_unsafe() {
    for secret in 0..16 {
        let run = run_attack(AttackKind::SpectreV1, Scheme::Unsafe, secret);
        assert_eq!(
            run.inferred,
            Some(secret),
            "v1 must recover {secret}; latencies: {:?}",
            run.probe.latencies
        );
    }
}

#[test]
fn blocked_attacks_leave_all_oracle_lines_cold() {
    for kind in AttackKind::ALL {
        let run = run_attack(kind, Scheme::Levioso, 9);
        assert_eq!(run.inferred, None, "{kind} must yield no signal under levioso");
        let hot: Vec<usize> = (0..16).filter(|&i| !run.probe.is_cold(i)).collect();
        assert!(hot.is_empty(), "{kind} left hot oracle lines {hot:?} under levioso");
    }
}

#[test]
fn attacks_exercise_real_misprediction() {
    for kind in AttackKind::ALL {
        let run = run_attack(kind, Scheme::Unsafe, 5);
        assert!(run.stats.mispredicts >= 1, "{kind} must force a misprediction");
        assert!(run.stats.squashed >= 1, "{kind} must squash transient work");
    }
}

#[test]
fn stt_taint_is_the_distinguishing_factor() {
    // STT blocks the attacks whose transmitted value came from a
    // *speculative* load, and only those.
    assert!(!attack_leaks(AttackKind::SpectreV1, Scheme::Stt));
    assert!(!attack_leaks(AttackKind::SpectreV2, Scheme::Stt));
    assert!(attack_leaks(AttackKind::CtSecret, Scheme::Stt));
}

#[test]
fn phi_gadget_separates_ctrl_only_from_full_levioso() {
    assert!(attack_leaks(AttackKind::PhiGadget, Scheme::LeviosoCtrlOnly));
    assert!(!attack_leaks(AttackKind::PhiGadget, Scheme::Levioso));
    assert!(!attack_leaks(AttackKind::PhiGadget, Scheme::LeviosoStatic));
}

#[test]
fn corrupted_annotations_reopen_the_leak() {
    // Failure injection: replace the compiler's annotations with the
    // (unsound) all-empty sets and confirm the Levioso *hardware* alone is
    // not what blocks the attack — the co-design is load-bearing.
    use levioso_attacks::{receiver::ProbeResult, AttackKind};
    use levioso_uarch::{CoreConfig, Simulator};

    let gadget = AttackKind::CtSecret.gadget(5);
    let mut program = gadget.program.clone();
    Scheme::Levioso.prepare(&mut program);
    program.annotations = Some(levioso_isa::Annotations::all_empty(program.instrs.len()));
    let mut sim = Simulator::new(&program, CoreConfig::default());
    for (a, v) in &gadget.memory {
        sim.mem.write_i64(*a, *v);
    }
    sim.run(Scheme::Levioso.policy().as_ref()).unwrap();
    let probe = ProbeResult::read_from(&sim.mem);
    assert_eq!(
        probe.inferred_secret(),
        Some(5),
        "empty annotations must reopen the leak (latencies: {:?})",
        probe.latencies
    );
}

#[test]
fn all_older_annotations_still_block() {
    // The conservative fallback annotation is always sound.
    use levioso_attacks::receiver::ProbeResult;
    use levioso_uarch::{CoreConfig, Simulator};

    let gadget = AttackKind::CtSecret.gadget(5);
    let mut program = gadget.program.clone();
    program.annotations = Some(levioso_isa::Annotations::all_older(program.instrs.len()));
    let mut sim = Simulator::new(&program, CoreConfig::default());
    for (a, v) in &gadget.memory {
        sim.mem.write_i64(*a, *v);
    }
    sim.run(Scheme::Levioso.policy().as_ref()).unwrap();
    let probe = ProbeResult::read_from(&sim.mem);
    assert_eq!(probe.inferred_secret(), None);
}
