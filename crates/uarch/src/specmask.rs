//! Compact bitmask speculation sets over in-flight instruction *slots*.
//!
//! The three per-instruction dependency sets every policy consults
//! (`shadow`, `lev_deps`, `taint_roots` — see [`crate::dyninstr::DynInstr`])
//! are sets *over the in-flight control instructions and loads*, never over
//! arbitrary sequence numbers. [`SpecMask`] represents such a set as a
//! fixed-width bitmask over **slots** handed out by [`SlotTable`]: every
//! control instruction (branch / indirect jump) and every load receives a
//! slot at dispatch and releases it when it leaves the ROB. Set union is a
//! word-wise OR, and the policy predicates (`any_unresolved`,
//! `any_uncommitted`, `any_taint_active`) become an AND against a global
//! state mask — replacing the sorted-`Vec<Seq>` merges and per-element map
//! probes of the scan-based implementation, with bit-identical semantics
//! (enforced by `results/golden/` and the differential test in
//! `tests/differential.rs`).
//!
//! # Slot reclamation and the aliasing hazard
//!
//! A slot bit stored inside a younger instruction's mask must keep meaning
//! *the same* control instruction or load until that younger instruction
//! leaves the ROB — otherwise a recycled slot would alias a new owner and
//! conjure spurious dependencies. Freeing therefore distinguishes:
//!
//! * **squash** — every instruction that can reference the slot is younger
//!   than the squashed owner and is squashed in the same event, so the slot
//!   is immediately reusable;
//! * **commit** — younger in-flight instructions may still hold the bit, so
//!   the slot is parked with a *barrier* (the `next_seq` at free time) and
//!   becomes reusable only once the ROB head's sequence number reaches the
//!   barrier, i.e. every instruction dispatched before the free has left
//!   the ROB.
//!
//! Capacity 2 × ROB size always suffices: live slots are bounded by the ROB
//! occupancy (each instruction owns at most one slot), and every
//! barrier-parked slot was freed at the commit of an instruction older than
//! the current ROB head — all such owners were in flight together with the
//! head at its dispatch, so there are at most ROB-size − 1 of them.

use crate::dyninstr::Seq;
use std::collections::VecDeque;
use std::fmt;

/// Number of `u64` words in a [`SpecMask`].
pub const SPEC_MASK_WORDS: usize = 16;
/// Number of slot bits a [`SpecMask`] can represent (1024).
pub const SPEC_MASK_BITS: usize = SPEC_MASK_WORDS * 64;

/// A fixed-width set of in-flight instruction slots.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct SpecMask {
    words: [u64; SPEC_MASK_WORDS],
}

impl SpecMask {
    /// The empty set.
    pub const EMPTY: SpecMask = SpecMask { words: [0; SPEC_MASK_WORDS] };

    /// Inserts `bit`.
    #[inline]
    pub fn set(&mut self, bit: u16) {
        self.words[(bit >> 6) as usize] |= 1u64 << (bit & 63);
    }

    /// Removes `bit`.
    #[inline]
    pub fn clear(&mut self, bit: u16) {
        self.words[(bit >> 6) as usize] &= !(1u64 << (bit & 63));
    }

    /// Whether `bit` is present.
    #[inline]
    pub fn contains(&self, bit: u16) -> bool {
        self.words[(bit >> 6) as usize] & (1u64 << (bit & 63)) != 0
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the intersection with `other` is non-empty.
    #[inline]
    pub fn intersects(&self, other: &SpecMask) -> bool {
        self.words.iter().zip(&other.words).any(|(&a, &b)| a & b != 0)
    }

    /// `self |= other`.
    #[inline]
    pub fn union_with(&mut self, other: &SpecMask) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self |= other & filter` — the filtered-inheritance primitive used
    /// at rename.
    #[inline]
    pub fn union_masked(&mut self, other: &SpecMask, filter: &SpecMask) {
        for ((a, b), f) in self.words.iter_mut().zip(&other.words).zip(&filter.words) {
            *a |= b & f;
        }
    }

    /// `self & other`.
    #[inline]
    pub fn and(&self, other: &SpecMask) -> SpecMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        out
    }

    /// `self & !other`.
    #[inline]
    pub fn and_not(&self, other: &SpecMask) -> SpecMask {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        out
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates the set bits in ascending order.
    pub fn iter(&self) -> SpecMaskIter {
        SpecMaskIter { words: self.words, word_idx: 0, current: self.words[0] }
    }
}

/// Iterator over the set bits of a [`SpecMask`], ascending.
#[derive(Debug, Clone)]
pub struct SpecMaskIter {
    words: [u64; SPEC_MASK_WORDS],
    word_idx: usize,
    current: u64,
}

impl Iterator for SpecMaskIter {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as u16;
                self.current &= self.current - 1;
                return Some((self.word_idx as u16) * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= SPEC_MASK_WORDS {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl fmt::Debug for SpecMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Per-slot bookkeeping for every in-flight control instruction and load,
/// plus the global state masks the policy predicates AND against.
///
/// Owned by the simulator; see the module docs for the reclamation rules.
#[derive(Debug, Clone)]
pub(crate) struct SlotTable {
    /// Free slots, available immediately.
    free: Vec<u16>,
    /// Slots freed at commit, reusable once the ROB head passes the
    /// barrier sequence number (monotone, so a `VecDeque` pops in order).
    pending: VecDeque<(u16, Seq)>,
    /// Sequence number of each slot's owner.
    seq: Vec<Seq>,
    /// Program counter of each control slot's owner.
    pc: Vec<u32>,
    /// Cycle each control slot's owner resolved at (valid once resolved,
    /// until the slot is reused) — replaces the old unbounded
    /// `resolve_cycle: HashMap<Seq, u64>`.
    resolve_cycle: Vec<u64>,
    /// For load slots: the owner's speculation shadow at dispatch (drives
    /// the STT taint-liveness predicate).
    shadow: Vec<SpecMask>,

    /// Control slots whose owner has not yet resolved.
    pub(crate) unresolved: SpecMask,
    /// Control slots whose owner is an indirect jump.
    pub(crate) indirect: SpecMask,
    /// Control slots whose owner is still in the ROB (not committed or
    /// squashed).
    pub(crate) live_ctrl: SpecMask,
    /// Load slots whose owner is still in the ROB.
    pub(crate) live_load: SpecMask,
    /// Load slots whose owner has finished executing (stage `Done`).
    pub(crate) load_done: SpecMask,

    /// High-water mark of simultaneously allocated slots (bounded-state
    /// test hook).
    max_in_use: usize,
}

impl SlotTable {
    /// A table sized for `rob_size` in-flight instructions.
    ///
    /// # Panics
    ///
    /// Panics if `2 * rob_size` exceeds [`SPEC_MASK_BITS`].
    pub(crate) fn new(rob_size: usize) -> Self {
        let capacity = 2 * rob_size;
        assert!(
            capacity <= SPEC_MASK_BITS,
            "ROB size {rob_size} needs {capacity} speculation slots; SpecMask holds {SPEC_MASK_BITS}"
        );
        SlotTable {
            free: (0..capacity as u16).rev().collect(),
            pending: VecDeque::new(),
            seq: vec![0; capacity],
            pc: vec![0; capacity],
            resolve_cycle: vec![0; capacity],
            shadow: vec![SpecMask::EMPTY; capacity],
            unresolved: SpecMask::EMPTY,
            indirect: SpecMask::EMPTY,
            live_ctrl: SpecMask::EMPTY,
            live_load: SpecMask::EMPTY,
            load_done: SpecMask::EMPTY,
            max_in_use: 0,
        }
    }

    /// Total slot capacity (2 × ROB size).
    pub(crate) fn capacity(&self) -> usize {
        self.seq.len()
    }

    /// High-water mark of simultaneously allocated slots.
    pub(crate) fn max_in_use(&self) -> usize {
        self.max_in_use
    }

    /// Moves barrier-cleared pending slots to the free list, then pops one.
    /// `rob_front_seq` is the current ROB head (`None` when empty; with an
    /// empty ROB nothing can reference a parked slot, so all are reusable).
    fn take_slot(&mut self, rob_front_seq: Option<Seq>) -> u16 {
        while let Some(&(slot, barrier)) = self.pending.front() {
            let reusable = match rob_front_seq {
                None => true,
                Some(front) => front >= barrier,
            };
            if !reusable {
                break;
            }
            self.pending.pop_front();
            self.free.push(slot);
        }
        let slot =
            self.free.pop().expect("slot table overflow: capacity 2x ROB size is a proven bound");
        let in_use = self.capacity() - self.free.len() - self.pending.len();
        self.max_in_use = self.max_in_use.max(in_use);
        slot
    }

    /// Allocates a slot for a control instruction dispatched at `seq`/`pc`.
    pub(crate) fn alloc_ctrl(
        &mut self,
        seq: Seq,
        pc: u32,
        is_indirect: bool,
        rob_front_seq: Option<Seq>,
    ) -> u16 {
        let slot = self.take_slot(rob_front_seq);
        self.seq[slot as usize] = seq;
        self.pc[slot as usize] = pc;
        self.unresolved.set(slot);
        self.live_ctrl.set(slot);
        if is_indirect {
            self.indirect.set(slot);
        }
        slot
    }

    /// Allocates a slot for a load dispatched at `seq` whose speculation
    /// shadow at rename is `shadow`.
    pub(crate) fn alloc_load(
        &mut self,
        seq: Seq,
        shadow: SpecMask,
        rob_front_seq: Option<Seq>,
    ) -> u16 {
        let slot = self.take_slot(rob_front_seq);
        self.seq[slot as usize] = seq;
        self.shadow[slot as usize] = shadow;
        self.live_load.set(slot);
        slot
    }

    /// Marks a control slot resolved at `cycle`.
    pub(crate) fn resolve(&mut self, slot: u16, cycle: u64) {
        self.unresolved.clear(slot);
        self.resolve_cycle[slot as usize] = cycle;
    }

    /// Marks a load slot's owner as done executing.
    pub(crate) fn mark_load_done(&mut self, slot: u16) {
        self.load_done.set(slot);
    }

    /// Clears a slot from every state mask.
    fn clear_state(&mut self, slot: u16) {
        self.unresolved.clear(slot);
        self.indirect.clear(slot);
        self.live_ctrl.clear(slot);
        self.live_load.clear(slot);
        self.load_done.clear(slot);
    }

    /// Frees a slot whose owner commits. `barrier` is the simulator's
    /// `next_seq`: the slot is parked until every instruction dispatched
    /// before this free has left the ROB.
    pub(crate) fn free_commit(&mut self, slot: u16, barrier: Seq) {
        self.clear_state(slot);
        debug_assert!(self.pending.back().is_none_or(|&(_, b)| b <= barrier));
        self.pending.push_back((slot, barrier));
    }

    /// Frees a slot whose owner is squashed: immediately reusable (every
    /// possible referencer is younger and squashed in the same event).
    pub(crate) fn free_squash(&mut self, slot: u16) {
        self.clear_state(slot);
        self.free.push(slot);
    }

    /// Sequence number of the slot's owner.
    pub(crate) fn seq_of(&self, slot: u16) -> Seq {
        self.seq[slot as usize]
    }

    /// Program counter of a control slot's owner.
    pub(crate) fn pc_of(&self, slot: u16) -> u32 {
        self.pc[slot as usize]
    }

    /// Dispatch-time shadow of a load slot's owner.
    pub(crate) fn shadow_of(&self, slot: u16) -> &SpecMask {
        &self.shadow[slot as usize]
    }

    /// Resolution cycle of a resolved control slot (valid until reuse).
    pub(crate) fn resolve_cycle_of(&self, slot: u16) -> u64 {
        debug_assert!(
            !self.unresolved.contains(slot),
            "reading the resolve cycle of an unresolved slot"
        );
        self.resolve_cycle[slot as usize]
    }

    /// Max `resolve_cycle − ready` over the control slots in `deps`
    /// (saturating per slot) — the F1 wait accounting. Every dep of a
    /// committing instruction has resolved and its slot is unreused while
    /// the instruction is in flight, so the per-slot cycles are valid.
    pub(crate) fn wait_cycles(&self, deps: &SpecMask, ready: u64) -> u64 {
        let mut max = 0;
        for slot in deps.iter() {
            debug_assert!(!self.unresolved.contains(slot), "dep of a committing instr resolved");
            max = max.max(self.resolve_cycle[slot as usize].saturating_sub(ready));
        }
        max
    }

    /// The owner sequence numbers of `mask`, ascending (differential-test
    /// hook; masks of live instructions never contain reused slots).
    pub(crate) fn mask_seqs(&self, mask: &SpecMask) -> Vec<Seq> {
        let mut seqs: Vec<Seq> = mask.iter().map(|b| self.seq_of(b)).collect();
        seqs.sort_unstable();
        seqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains_iter() {
        let mut m = SpecMask::EMPTY;
        assert!(m.is_empty());
        for b in [0u16, 1, 63, 64, 65, 511, 1023] {
            m.set(b);
        }
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 63, 64, 65, 511, 1023]);
        assert_eq!(m.count(), 7);
        assert!(m.contains(63) && m.contains(64));
        m.clear(63);
        assert!(!m.contains(63));
        assert_eq!(m.count(), 6);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = SpecMask::EMPTY;
        a.set(3);
        a.set(100);
        let mut b = SpecMask::EMPTY;
        b.set(100);
        b.set(700);
        assert!(a.intersects(&b));
        let mut u = a;
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![3, 100, 700]);
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![100]);
        assert_eq!(a.and_not(&b).iter().collect::<Vec<_>>(), vec![3]);
        let mut filtered = SpecMask::EMPTY;
        filtered.union_masked(&u, &b);
        assert_eq!(filtered.iter().collect::<Vec<_>>(), vec![100, 700]);
    }

    #[test]
    fn slot_lifecycle_and_barriers() {
        let mut t = SlotTable::new(4); // capacity 8
        let c0 = t.alloc_ctrl(10, 5, false, None);
        let l0 = t.alloc_load(11, SpecMask::EMPTY, Some(10));
        assert!(t.unresolved.contains(c0) && t.live_ctrl.contains(c0));
        assert!(t.live_load.contains(l0) && !t.live_ctrl.contains(l0));
        t.resolve(c0, 42);
        assert!(!t.unresolved.contains(c0) && t.live_ctrl.contains(c0));
        let mut deps = SpecMask::EMPTY;
        deps.set(c0);
        assert_eq!(t.wait_cycles(&deps, 40), 2);
        assert_eq!(t.wait_cycles(&deps, 50), 0);

        // Commit-free parks behind the barrier; the slot is not reused
        // while the ROB head predates the barrier.
        t.free_commit(c0, 12);
        let mut seen = vec![l0];
        for s in 0..6 {
            seen.push(t.alloc_ctrl(20 + s, 0, false, Some(11)));
        }
        assert!(!seen.contains(&c0), "parked slot must not be reused before its barrier");
        // Once the head passes the barrier the slot recycles.
        let recycled = t.alloc_ctrl(40, 0, false, Some(12));
        assert_eq!(recycled, c0);
        assert!(t.max_in_use() <= t.capacity());
    }

    #[test]
    fn squash_free_is_immediate() {
        let mut t = SlotTable::new(4);
        let c = t.alloc_ctrl(1, 0, true, None);
        assert!(t.indirect.contains(c));
        t.free_squash(c);
        assert!(!t.indirect.contains(c) && !t.unresolved.contains(c));
        assert_eq!(t.alloc_ctrl(2, 0, false, Some(1)), c, "squash-freed slots recycle immediately");
    }

    #[test]
    #[should_panic(expected = "speculation slots")]
    fn oversized_rob_is_rejected() {
        let _ = SlotTable::new(SPEC_MASK_BITS / 2 + 1);
    }
}
