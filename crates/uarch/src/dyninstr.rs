//! Dynamic (in-flight) instruction state.

use crate::specmask::SpecMask;
use levioso_isa::{Instr, Reg};
use std::ops::{Index, IndexMut};

/// Monotonic dynamic instruction sequence number (never reused within a
/// simulation; orders age).
pub type Seq = u64;

/// Pipeline stage of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Renamed into the ROB, waiting to issue.
    Dispatched,
    /// Issued; completes at `done_cycle`.
    Executing,
    /// Executed; result available, waiting to commit.
    Done,
}

/// One renamed source operand.
#[derive(Debug, Clone, Copy)]
pub struct Operand {
    /// Architectural register read.
    pub reg: Reg,
    /// Readiness.
    pub state: OpState,
}

/// Operand readiness.
#[derive(Debug, Clone, Copy)]
pub enum OpState {
    /// Value known.
    Ready(i64),
    /// Waiting for the in-flight producer with this sequence number.
    Waiting(Seq),
}

impl OpState {
    /// The value, if ready.
    pub fn value(&self) -> Option<i64> {
        match *self {
            OpState::Ready(v) => Some(v),
            OpState::Waiting(_) => None,
        }
    }
}

/// Inline storage for an instruction's 0–2 renamed source operands
/// (replaces a per-instruction `Vec<Operand>` heap allocation on the
/// hottest dispatch path).
#[derive(Clone, Copy)]
pub struct Operands {
    buf: [Operand; 2],
    len: u8,
}

impl Operands {
    const EMPTY_SLOT: Operand = Operand { reg: levioso_isa::reg::ZERO, state: OpState::Ready(0) };

    /// No operands.
    pub const fn new() -> Self {
        Operands { buf: [Self::EMPTY_SLOT; 2], len: 0 }
    }

    /// Appends an operand.
    ///
    /// # Panics
    ///
    /// Panics beyond two operands (no lev64 instruction reads more).
    pub fn push(&mut self, op: Operand) {
        self.buf[self.len as usize] = op;
        self.len += 1;
    }

    /// Number of operands.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no operands.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The operands as a slice.
    pub fn as_slice(&self) -> &[Operand] {
        &self.buf[..self.len as usize]
    }

    /// Iterates the operands.
    pub fn iter(&self) -> std::slice::Iter<'_, Operand> {
        self.as_slice().iter()
    }

    /// Iterates the operands mutably.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Operand> {
        self.buf[..self.len as usize].iter_mut()
    }
}

impl Default for Operands {
    fn default() -> Self {
        Operands::new()
    }
}

impl Index<usize> for Operands {
    type Output = Operand;

    fn index(&self, idx: usize) -> &Operand {
        &self.as_slice()[idx]
    }
}

impl IndexMut<usize> for Operands {
    fn index_mut(&mut self, idx: usize) -> &mut Operand {
        &mut self.buf[..self.len as usize][idx]
    }
}

impl std::fmt::Debug for Operands {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<'a> IntoIterator for &'a Operands {
    type Item = &'a Operand;
    type IntoIter = std::slice::Iter<'a, Operand>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A dynamic instruction in the reorder buffer.
///
/// Alongside ordinary out-of-order bookkeeping it carries the three
/// speculation-tracking sets every policy is judged on, each a
/// [`SpecMask`] over the in-flight slots of [`crate::specmask`]:
///
/// * [`shadow`](Self::shadow) — all older control instructions unresolved
///   at rename (what a hardware-only scheme must assume);
/// * [`ann_deps`](Self::ann_deps) — older unresolved instances of the
///   *statically annotated* branches (plus unresolved indirect jumps, which
///   are always barriers);
/// * [`lev_deps`](Self::lev_deps) — `ann_deps` closed over dynamic register
///   dataflow at rename and store-to-load forwarding: the full Levioso
///   dependency set;
/// * [`taint_roots`](Self::taint_roots) — in-flight loads whose values flow
///   into this instruction's operands (STT's taint).
#[derive(Debug, Clone)]
pub struct DynInstr {
    /// Age-ordering sequence number.
    pub seq: Seq,
    /// Instruction index in the program.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Current stage.
    pub stage: Stage,
    /// Cycle at which execution completes (valid while `Executing`).
    pub done_cycle: u64,
    /// Renamed source operands (0–2).
    pub srcs: Operands,
    /// Result value (valid once `Done`, for instructions with a dest).
    pub result: Option<i64>,

    /// Next PC predicted at fetch.
    pub predicted_next: u32,
    /// Whether the front end stalled for this control instruction (no
    /// target prediction was available).
    pub fetch_stalled: bool,
    /// Global history at prediction time (for trainer).
    pub history_at_predict: u64,
    /// Predictor snapshot for squash repair (control instructions only).
    pub checkpoint: Option<crate::predictor::Checkpoint>,
    /// Actual next PC (valid once a control instruction executes).
    pub actual_next: Option<u32>,

    /// Effective address (valid once a load/store/flush computes it).
    pub mem_addr: Option<u64>,
    /// Store data value (captured when the data operand becomes ready).
    pub store_data: Option<i64>,
    /// For forwarded loads: the store that supplied the data.
    pub forwarded_from: Option<Seq>,

    /// This instruction's own speculation slot (control instructions and
    /// loads only).
    pub slot: Option<u16>,
    /// All older control instructions unresolved at rename.
    pub shadow: SpecMask,
    /// Unresolved instances of statically annotated branch dependencies
    /// (plus unresolved indirect jumps).
    pub ann_deps: SpecMask,
    /// Full Levioso dependency set (annotation instances ∪ deps inherited
    /// through register dataflow and store forwarding).
    pub lev_deps: SpecMask,
    /// STT taint roots: in-flight loads whose values reach this
    /// instruction's operands.
    pub taint_roots: SpecMask,
    /// Wait-accounting carry for dependencies inherited at store-to-load
    /// forwarding that had already resolved by the merge (their slots may
    /// recycle before this instruction commits, so the contribution —
    /// `max(resolve_cycle − first_ready)` over the dropped deps — is folded
    /// into this scalar at merge time instead).
    pub fwd_true_wait: u64,

    /// Head of this producer's wakeup chain: the youngest-registered
    /// consumer waiting on this instruction's result, as
    /// `(consumer seq, operand index)`.
    pub wake_head: Option<(Seq, u8)>,
    /// Per-operand next link in the producer's wakeup chain.
    pub wake_next: [Option<(Seq, u8)>; 2],

    /// Measured at first operand-readiness: was any `shadow` branch still
    /// unresolved? (F1 motivation counter, conservative view.)
    pub ready_while_shadowed: Option<bool>,
    /// Measured at first operand-readiness: was any `lev_deps` branch still
    /// unresolved? (F1 motivation counter, true-dependency view.)
    pub ready_while_true_dep: Option<bool>,
    /// Cycles this instruction spent blocked *only* by the policy.
    pub policy_delay_cycles: u64,
    /// Cycle at which all operands first became ready.
    pub first_ready_cycle: Option<u64>,
    /// Whether this instruction performed a state-changing cache access
    /// (demand load access or flush) during execution.
    pub touched_cache: bool,
    /// Whether this in-flight load occupies a miss-status-holding register.
    pub holds_mshr: bool,
}

impl DynInstr {
    /// Creates a dispatched instruction with empty tracking sets.
    pub fn new(seq: Seq, pc: u32, instr: Instr) -> Self {
        DynInstr {
            seq,
            pc,
            instr,
            stage: Stage::Dispatched,
            done_cycle: 0,
            srcs: Operands::new(),
            result: None,
            predicted_next: pc + 1,
            fetch_stalled: false,
            history_at_predict: 0,
            checkpoint: None,
            actual_next: None,
            mem_addr: None,
            store_data: None,
            forwarded_from: None,
            slot: None,
            shadow: SpecMask::EMPTY,
            ann_deps: SpecMask::EMPTY,
            lev_deps: SpecMask::EMPTY,
            taint_roots: SpecMask::EMPTY,
            fwd_true_wait: 0,
            wake_head: None,
            wake_next: [None, None],
            ready_while_shadowed: None,
            ready_while_true_dep: None,
            policy_delay_cycles: 0,
            first_ready_cycle: None,
            touched_cache: false,
            holds_mshr: false,
        }
    }

    /// Whether every source operand is ready.
    pub fn operands_ready(&self) -> bool {
        self.srcs.iter().all(|o| matches!(o.state, OpState::Ready(_)))
    }

    /// Value of source operand `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the operand is not ready.
    pub fn src_value(&self, idx: usize) -> i64 {
        self.srcs[idx].state.value().expect("operand not ready")
    }

    /// Whether this is a control instruction that resolves at execute
    /// (conditional branch or indirect jump; direct jumps never
    /// mispredict in this front end).
    pub fn is_spec_source(&self) -> bool {
        matches!(self.instr, Instr::Branch { .. } | Instr::Jalr { .. })
    }

    /// Whether this instruction serializes the pipeline (`fence`,
    /// `rdcycle`): it issues only when all older instructions are done, and
    /// younger instructions wait for it.
    pub fn is_serializer(&self) -> bool {
        matches!(self.instr, Instr::Fence | Instr::RdCycle { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_isa::reg::*;
    use levioso_isa::{AluOp, BranchCond};

    #[test]
    fn operand_readiness() {
        let mut d = DynInstr::new(1, 0, Instr::Alu { op: AluOp::Add, rd: A0, rs1: A1, rs2: A2 });
        d.srcs.push(Operand { reg: A1, state: OpState::Ready(5) });
        d.srcs.push(Operand { reg: A2, state: OpState::Waiting(0) });
        assert!(!d.operands_ready());
        d.srcs[1].state = OpState::Ready(7);
        assert!(d.operands_ready());
        assert_eq!(d.src_value(0), 5);
        assert_eq!(d.src_value(1), 7);
    }

    #[test]
    fn classification() {
        let b = DynInstr::new(
            1,
            0,
            Instr::Branch { cond: BranchCond::Eq, rs1: A0, rs2: ZERO, target: 0 },
        );
        assert!(b.is_spec_source());
        let j = DynInstr::new(2, 0, Instr::Jal { rd: RA, target: 5 });
        assert!(!j.is_spec_source(), "direct jumps never mispredict");
        let f = DynInstr::new(3, 0, Instr::Fence);
        assert!(f.is_serializer());
        let r = DynInstr::new(4, 0, Instr::RdCycle { rd: A0 });
        assert!(r.is_serializer());
    }

    #[test]
    fn operands_inline_storage() {
        let mut ops = Operands::new();
        assert!(ops.is_empty());
        ops.push(Operand { reg: A1, state: OpState::Ready(1) });
        ops.push(Operand { reg: A2, state: OpState::Waiting(9) });
        assert_eq!(ops.len(), 2);
        assert_eq!(ops.as_slice().len(), 2);
        assert!(ops.iter().any(|o| matches!(o.state, OpState::Waiting(9))));
        ops[1].state = OpState::Ready(3);
        assert_eq!(ops[1].state.value(), Some(3));
    }
}
