//! Pipeline observability: trace hooks and delay blame.
//!
//! A [`TraceSink`] receives one callback per pipeline event — fetch,
//! dispatch, issue, policy block, store-to-load forward, control resolve,
//! squash, writeback, commit — from the hook points threaded through the
//! simulator core (see DESIGN.md §9 for the hook-point table). The core
//! stores the sink as `Option<Box<dyn TraceSink>>` and every hook is
//! behind a branch on `None`, so the disabled path does no work beyond
//! that test: golden results are bit-identical with and without the field
//! (verified by the golden gate) and throughput stays within run-to-run
//! drift (verified by `scripts/perf.sh --ab-trace`).
//!
//! The one event that is *not* free to reconstruct after the fact is the
//! policy block: when the active [`crate::SpeculationPolicy`] delays an
//! instruction, the sink is told **why** via a [`Blame`] — which rule
//! fired and which still-unresolved slot (branch / indirect / load) is the
//! oldest blocker. Policies produce this through their
//! `explain_*_delay` methods ([`DelayExplanation`]); the core converts the
//! blocking mask into a concrete slot. Consumers (the attribution sink in
//! `levioso-bench`) aggregate blames into per-rule counters and
//! histograms whose total provably equals `SimStats::policy_delay_cycles`.

use crate::dyninstr::{DynInstr, Seq};
use crate::specmask::SpecMask;
use levioso_isa::Instr;
use std::any::Any;

/// What kind of in-flight instruction owns the blamed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlamedKind {
    /// A conditional branch.
    Branch,
    /// An indirect jump (`jalr`).
    Indirect,
    /// A speculative load (STT taint roots, Levioso load dependencies).
    Load,
}

impl BlamedKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BlamedKind::Branch => "branch",
            BlamedKind::Indirect => "indirect",
            BlamedKind::Load => "load",
        }
    }
}

/// The specific in-flight instruction a blocked cycle is blamed on: the
/// *oldest* slot in the policy's blocking set, i.e. the one that must
/// resolve first before the block can lift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlamedSlot {
    /// What kind of instruction holds the slot.
    pub kind: BlamedKind,
    /// Its dynamic sequence number.
    pub seq: Seq,
    /// Its program counter.
    pub pc: u32,
}

/// One blocked cycle, attributed: the policy rule that fired plus the
/// oldest blocking slot (`None` when the rule has no single blocking
/// instruction, e.g. the hit-only cache race retry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blame {
    /// Stable rule identifier, e.g. `"levioso:true-dep"`. Always of the
    /// form `scheme:condition`.
    pub rule: &'static str,
    /// The oldest slot in the blocking set, if any.
    pub blamed: Option<BlamedSlot>,
}

/// A policy's explanation for a `Delay` verdict it just issued: the rule
/// name and the mask of slots whose resolution the instruction is waiting
/// on. Returned by the `explain_*_delay` methods on
/// [`crate::SpeculationPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayExplanation {
    /// Stable rule identifier (see [`Blame::rule`]).
    pub rule: &'static str,
    /// Slots still blocking the instruction (already intersected with the
    /// relevant liveness mask, so squashed/resolved slots are absent).
    pub blocking: SpecMask,
}

/// Receiver for pipeline events. Every hook has an empty default body, so
/// a sink implements only what it needs; `cycle` is the simulator cycle
/// the event happened in.
///
/// Hooks fire in pipeline order within a cycle (commit → writeback /
/// resolve / squash → policy-block → issue → dispatch → fetch) and in
/// program order within a stage, so sinks can rebuild per-instruction
/// lifetimes without sorting.
pub trait TraceSink: std::fmt::Debug {
    /// An instruction (possibly wrong-path) entered the fetch queue.
    fn on_fetch(&mut self, _cycle: u64, _pc: u32, _instr: &Instr) {}

    /// `instr` was renamed and appended to the ROB.
    fn on_dispatch(&mut self, _cycle: u64, _instr: &DynInstr) {}

    /// `instr` began execution this cycle (its stage just left
    /// `Dispatched`).
    fn on_issue(&mut self, _cycle: u64, _instr: &DynInstr) {}

    /// `instr` was ready but the active policy (or a hit-only cache race)
    /// blocked it for this cycle. Fires exactly once per
    /// `policy_delay_cycles` increment, so summing blamed cycles over
    /// committed instructions reproduces `SimStats::policy_delay_cycles`.
    fn on_policy_block(&mut self, _cycle: u64, _instr: &DynInstr, _blame: &Blame) {}

    /// The load `instr` received its value from the in-flight store
    /// `store_seq` instead of the cache.
    fn on_forward(&mut self, _cycle: u64, _instr: &DynInstr, _store_seq: Seq) {}

    /// The control instruction `instr` resolved its direction/target.
    fn on_resolve(&mut self, _cycle: u64, _instr: &DynInstr, _mispredicted: bool) {}

    /// The in-flight instruction `seq` was squashed by an older
    /// misprediction. Its pending delay cycles never reach `SimStats`.
    /// Fires only for ROB entries: wrong-path instructions still in the
    /// fetch queue are dropped without an event (they have no sequence
    /// number yet), so `SimStats::squashed` can exceed the event count.
    fn on_squash(&mut self, _cycle: u64, _seq: Seq, _pc: u32) {}

    /// `instr` finished execution (its stage just became `Done`).
    fn on_writeback(&mut self, _cycle: u64, _instr: &DynInstr) {}

    /// `instr` retired from the head of the ROB; its per-instruction
    /// counters were just folded into `SimStats`.
    fn on_commit(&mut self, _cycle: u64, _instr: &DynInstr) {}

    /// Recovers the concrete sink type after
    /// [`crate::Simulator::take_tracer`]:
    /// `sink.into_any().downcast::<MySink>()`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The do-nothing sink: every hook is the empty default. Attaching it is
/// how `scripts/perf.sh --ab-trace` measures the enabled-path overhead ceiling.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Fans every event out to two sinks in order (`levitrace` uses this to
/// build the Chrome trace and the attribution report in one simulation).
#[derive(Debug)]
pub struct Tee {
    /// First receiver.
    pub a: Box<dyn TraceSink>,
    /// Second receiver.
    pub b: Box<dyn TraceSink>,
}

impl Tee {
    /// Combines two sinks.
    pub fn new(a: Box<dyn TraceSink>, b: Box<dyn TraceSink>) -> Self {
        Tee { a, b }
    }
}

impl TraceSink for Tee {
    fn on_fetch(&mut self, cycle: u64, pc: u32, instr: &Instr) {
        self.a.on_fetch(cycle, pc, instr);
        self.b.on_fetch(cycle, pc, instr);
    }

    fn on_dispatch(&mut self, cycle: u64, instr: &DynInstr) {
        self.a.on_dispatch(cycle, instr);
        self.b.on_dispatch(cycle, instr);
    }

    fn on_issue(&mut self, cycle: u64, instr: &DynInstr) {
        self.a.on_issue(cycle, instr);
        self.b.on_issue(cycle, instr);
    }

    fn on_policy_block(&mut self, cycle: u64, instr: &DynInstr, blame: &Blame) {
        self.a.on_policy_block(cycle, instr, blame);
        self.b.on_policy_block(cycle, instr, blame);
    }

    fn on_forward(&mut self, cycle: u64, instr: &DynInstr, store_seq: Seq) {
        self.a.on_forward(cycle, instr, store_seq);
        self.b.on_forward(cycle, instr, store_seq);
    }

    fn on_resolve(&mut self, cycle: u64, instr: &DynInstr, mispredicted: bool) {
        self.a.on_resolve(cycle, instr, mispredicted);
        self.b.on_resolve(cycle, instr, mispredicted);
    }

    fn on_squash(&mut self, cycle: u64, seq: Seq, pc: u32) {
        self.a.on_squash(cycle, seq, pc);
        self.b.on_squash(cycle, seq, pc);
    }

    fn on_writeback(&mut self, cycle: u64, instr: &DynInstr) {
        self.a.on_writeback(cycle, instr);
        self.b.on_writeback(cycle, instr);
    }

    fn on_commit(&mut self, cycle: u64, instr: &DynInstr) {
        self.a.on_commit(cycle, instr);
        self.b.on_commit(cycle, instr);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}
