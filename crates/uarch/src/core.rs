//! The cycle-level out-of-order core.
//!
//! A deliberately explicit model of the pipeline the secure-speculation
//! literature evaluates on: per cycle the core commits, writes back (and
//! resolves/squashes control), issues, renames/dispatches, and fetches.
//! Wrong-path instructions are fully executed — including their cache side
//! effects, which persist across squash: that persistence *is* the Spectre
//! channel the defenses must close.
//!
//! Memory-ordering choices (documented in DESIGN.md): loads wait until all
//! older store addresses are known, forward on an exact address/width
//! match, and stall on partial overlap — i.e. no memory-dependence
//! speculation, so Spectre-v4 is out of scope by construction. Stores
//! write memory and fill the cache at commit only.

use crate::cache::Hierarchy;
use crate::config::CoreConfig;
use crate::dyninstr::{DynInstr, OpState, Operand, Seq, Stage};
use crate::policy::{Gate, LoadMode, SpecView, SpeculationPolicy};
use crate::predictor::Predictor;
use crate::stats::SimStats;
use levioso_isa::{read_memory, write_memory, DepSet, Instr, Memory, Program, Reg};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Register alias table entry.
#[derive(Debug, Clone, Copy)]
enum RatEntry {
    /// Architectural (or already-committed) value.
    Value(i64),
    /// Produced by the in-flight instruction with this sequence number.
    Producer(Seq),
}

/// An instruction fetched but not yet renamed.
#[derive(Debug, Clone)]
struct Fetched {
    pc: u32,
    instr: Instr,
    predicted_next: u32,
    history: u64,
    checkpoint: Option<crate::predictor::Checkpoint>,
    stalls_fetch: bool,
}

/// What an issuing instruction will do (decided in a read-only pass,
/// applied in a mutating pass).
enum IssueAction {
    /// ALU/branch/jump/serializer/nop/halt: result and (for control) the
    /// actual next PC were computed from ready operands.
    Simple { idx: usize, latency: u64, result: Option<i64>, actual_next: Option<u32> },
    /// Load served by store-to-load forwarding.
    Forward { idx: usize, store_idx: usize, addr: u64 },
    /// Load performing a cache access.
    Access { idx: usize, addr: u64, value: i64, hit_only: bool },
    /// Flush instruction evicting a line.
    Flush { idx: usize, addr: u64 },
    /// Store address generation.
    StoreAddr { idx: usize, addr: u64 },
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The policy requires compiler annotations but the program has none.
    MissingAnnotations,
    /// The program failed structural validation.
    Invalid(String),
    /// The committed path ran off the end of the program (no `halt`).
    PcOutOfRange {
        /// The runaway program counter.
        pc: u32,
    },
    /// The cycle safety limit was exceeded.
    CycleLimit {
        /// The exhausted limit.
        max_cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingAnnotations => {
                f.write_str("policy requires compiler annotations but the program has none")
            }
            SimError::Invalid(e) => write!(f, "invalid program: {e}"),
            SimError::PcOutOfRange { pc } => {
                write!(f, "committed path left the program at pc {pc}")
            }
            SimError::CycleLimit { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The out-of-order core simulator.
///
/// One `Simulator` owns the machine state (memory, caches, predictor) for
/// one program run under one policy:
///
/// ```
/// use levioso_uarch::{CoreConfig, Simulator, UnsafeBaseline};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = levioso_isa::assemble("t", "li a0, 41\naddi a0, a0, 1\nhalt")?;
/// let mut sim = Simulator::new(&program, CoreConfig::default());
/// let stats = sim.run(&UnsafeBaseline)?;
/// assert_eq!(sim.reg(levioso_isa::reg::A0), 42);
/// assert!(stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    config: CoreConfig,
    /// Functional data memory (set up inputs before `run`, inspect outputs
    /// after).
    pub mem: Memory,
    hierarchy: Hierarchy,
    predictor: Predictor,

    rob: VecDeque<DynInstr>,
    fetch_queue: VecDeque<Fetched>,
    fetch_pc: u32,
    fetch_stalled: bool,
    redirect: Option<(u64, u32)>,

    rat: [RatEntry; Reg::COUNT],
    arch_regs: [i64; Reg::COUNT],
    /// Unresolved control instructions: seq → (pc, is_indirect).
    unresolved: BTreeMap<Seq, (u32, bool)>,

    /// Resolution cycle of every resolved control instruction (for the F1
    /// wait accounting).
    resolve_cycle: std::collections::HashMap<Seq, u64>,

    next_seq: Seq,
    cycle: u64,
    /// Demand misses currently in flight (MSHR occupancy).
    outstanding_misses: usize,
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    stats: SimStats,
    halted: bool,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for `program` with the given configuration.
    pub fn new(program: &'p Program, config: CoreConfig) -> Self {
        let hierarchy = Hierarchy::new(&config.hierarchy);
        let predictor = Predictor::new(&config.predictor);
        Simulator {
            program,
            config,
            mem: Memory::new(),
            hierarchy,
            predictor,
            rob: VecDeque::new(),
            fetch_queue: VecDeque::new(),
            fetch_pc: 0,
            fetch_stalled: false,
            redirect: None,
            rat: [RatEntry::Value(0); Reg::COUNT],
            arch_regs: [0; Reg::COUNT],
            unresolved: BTreeMap::new(),
            resolve_cycle: std::collections::HashMap::new(),
            next_seq: 0,
            cycle: 0,
            outstanding_misses: 0,
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            stats: SimStats::default(),
            halted: false,
        }
    }

    /// Committed architectural value of register `r`.
    pub fn reg(&self, r: Reg) -> i64 {
        self.arch_regs[r.index()]
    }

    /// Sets the *initial* architectural value of `r` (before `run`).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.arch_regs[r.index()] = value;
            self.rat[r.index()] = RatEntry::Value(value);
        }
    }

    /// The cache hierarchy (side-channel receivers probe it after a run).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Mutable cache hierarchy (tests prepare cache states directly).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Diagnostic dump of in-flight state (for debugging the simulator
    /// itself; not a stable API).
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle={} fetch_pc={} stalled={} redirect={:?} iq={} lq={} sq={} fq={}",
            self.cycle,
            self.fetch_pc,
            self.fetch_stalled,
            self.redirect,
            self.iq_count,
            self.lq_count,
            self.sq_count,
            self.fetch_queue.len()
        );
        let _ = writeln!(out, "unresolved={:?}", self.unresolved);
        for e in &self.rob {
            let _ = writeln!(
                out,
                "  seq={} pc={} {:?} stage={:?} done={} srcs={:?} addr={:?}",
                e.seq, e.pc, e.instr, e.stage, e.done_cycle, e.srcs, e.mem_addr
            );
        }
        out
    }

    /// Fingerprint of committed architectural state (registers + memory);
    /// directly comparable with
    /// [`levioso_isa::Machine::arch_fingerprint`].
    pub fn arch_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &r in &self.arch_regs {
            for b in r.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        h ^ self.mem.fingerprint().rotate_left(17)
    }

    /// Runs the program to completion under `policy`.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingAnnotations`] if the policy needs annotations the
    /// program lacks; [`SimError::Invalid`] for malformed programs;
    /// [`SimError::PcOutOfRange`] if the committed path leaves the program;
    /// [`SimError::CycleLimit`] on runaway simulations.
    pub fn run(&mut self, policy: &dyn SpeculationPolicy) -> Result<SimStats, SimError> {
        if policy.needs_annotations() && self.program.annotations.is_none() {
            return Err(SimError::MissingAnnotations);
        }
        self.program.validate().map_err(|e| SimError::Invalid(e.to_string()))?;
        if self.program.is_empty() {
            return Err(SimError::PcOutOfRange { pc: 0 });
        }
        while !self.halted {
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::CycleLimit { max_cycles: self.config.max_cycles });
            }
            self.commit();
            if self.halted {
                break;
            }
            self.writeback();
            self.issue(policy);
            self.dispatch();
            self.fetch();
            // Starvation: nothing in flight and the front end can never
            // make progress again.
            if self.rob.is_empty()
                && self.fetch_queue.is_empty()
                && self.redirect.is_none()
                && !self.fetch_stalled
                && self.fetch_pc as usize >= self.program.len()
            {
                return Err(SimError::PcOutOfRange { pc: self.fetch_pc });
            }
            self.cycle += 1;
        }
        self.stats.cycles = self.cycle;
        self.stats.l1d = self.hierarchy.l1d.stats();
        self.stats.l2 = self.hierarchy.l2.stats();
        Ok(self.stats)
    }

    /// ROB index of the live instruction `seq`, if any. Sequence numbers
    /// are unique and ascending in the ROB but not contiguous (squashes
    /// leave gaps), so this is a binary search.
    fn rob_index(&self, seq: Seq) -> Option<usize> {
        self.rob.binary_search_by(|e| e.seq.cmp(&seq)).ok()
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.config.commit_width {
            let Some(front) = self.rob.front() else { break };
            if front.stage != Stage::Done {
                break;
            }
            // Stores also need their data before retiring.
            if front.instr.is_store() && front.srcs[1].state.value().is_none() {
                break;
            }
            let e = self.rob.pop_front().expect("checked non-empty");
            if e.instr.is_load() {
                self.lq_count -= 1;
            }
            if e.instr.is_store() {
                self.sq_count -= 1;
            }
            self.account_commit(&e);
            match e.instr {
                Instr::Store { width, .. } => {
                    let addr = e.mem_addr.expect("committed store has an address");
                    let data = e.srcs[1].state.value().expect("checked data ready");
                    write_memory(&mut self.mem, addr, width, data);
                    // The store's fill becomes architectural at commit.
                    self.hierarchy.access(addr, self.cycle);
                }
                Instr::Halt => {
                    self.halted = true;
                    return;
                }
                _ => {}
            }
            if let Some(rd) = e.instr.dest() {
                let v = e.result.expect("done instruction with dest has result");
                self.arch_regs[rd.index()] = v;
                if let RatEntry::Producer(s) = self.rat[rd.index()] {
                    if s == e.seq {
                        self.rat[rd.index()] = RatEntry::Value(v);
                    }
                }
            }
        }
    }

    fn account_commit(&mut self, e: &DynInstr) {
        self.stats.committed += 1;
        if e.instr.is_load() {
            self.stats.committed_loads += 1;
            if e.ready_while_shadowed == Some(true) {
                self.stats.loads_ready_while_shadowed += 1;
            }
            if e.ready_while_true_dep == Some(true) {
                self.stats.loads_ready_while_true_dep += 1;
            }
        }
        if e.instr.is_store() {
            self.stats.committed_stores += 1;
        }
        if e.instr.is_branch() {
            self.stats.committed_branches += 1;
        }
        if e.ready_while_shadowed == Some(true) {
            self.stats.ready_while_shadowed += 1;
        }
        if e.ready_while_true_dep == Some(true) {
            self.stats.ready_while_true_dep += 1;
        }
        self.stats.policy_delay_cycles += e.policy_delay_cycles;
        if e.policy_delay_cycles > 0 {
            self.stats.policy_delayed_instrs += 1;
        }
        // F1 headroom: how long past readiness the conservative shadow vs
        // the true dependencies stayed unresolved. (Every control
        // instruction older than a committed one has resolved, so the map
        // lookups succeed; squashed stragglers are simply skipped.)
        if let Some(ready) = e.first_ready_cycle {
            let wait = |deps: &[Seq], map: &std::collections::HashMap<Seq, u64>| {
                deps.iter()
                    .filter_map(|s| map.get(s))
                    .map(|&r| r.saturating_sub(ready))
                    .max()
                    .unwrap_or(0)
            };
            let sw = wait(&e.shadow, &self.resolve_cycle);
            let tw = wait(&e.lev_deps, &self.resolve_cycle);
            self.stats.shadow_wait_cycles += sw;
            self.stats.true_wait_cycles += tw;
            if e.instr.is_load() {
                self.stats.loads_shadow_wait_cycles += sw;
                self.stats.loads_true_wait_cycles += tw;
            }
        }
    }

    // ------------------------------------------------------------------
    // Writeback & control resolution
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        // Collect completions first; squashes during resolution may remove
        // younger completions.
        let done: Vec<Seq> = self
            .rob
            .iter()
            .filter(|e| e.stage == Stage::Executing && e.done_cycle <= self.cycle)
            .map(|e| e.seq)
            .collect();
        for seq in done {
            let Some(idx) = self.rob_index(seq) else { continue }; // squashed meanwhile
            self.rob[idx].stage = Stage::Done;
            if self.rob[idx].holds_mshr {
                self.rob[idx].holds_mshr = false;
                self.outstanding_misses -= 1;
            }
            let result = self.rob[idx].result;
            // Wake consumers.
            if self.rob[idx].instr.dest().is_some() {
                let v = result.expect("dest implies result");
                for e in self.rob.iter_mut() {
                    for op in &mut e.srcs {
                        if let OpState::Waiting(s) = op.state {
                            if s == seq {
                                op.state = OpState::Ready(v);
                            }
                        }
                    }
                }
            }
            if self.rob[idx].is_spec_source() {
                self.resolve_control(seq);
            }
        }
    }

    fn resolve_control(&mut self, seq: Seq) {
        let idx = self.rob_index(seq).expect("resolving a live instruction");
        let e = &self.rob[idx];
        let pc = e.pc;
        let actual = e.actual_next.expect("executed control has actual target");
        let predicted = e.predicted_next;
        let was_stalling = e.fetch_stalled;
        let history = e.history_at_predict;
        let checkpoint = e.checkpoint.clone();
        let instr = e.instr;

        self.unresolved.remove(&seq);
        self.resolve_cycle.insert(seq, self.cycle);

        // Train.
        match instr {
            Instr::Branch { .. } => {
                let taken = self.rob[idx].result == Some(1);
                self.predictor.train_branch(pc, history, taken);
            }
            Instr::Jalr { rd, base, offset } => {
                let is_ret = rd.is_zero() && base == levioso_isa::reg::RA && offset == 0;
                if !is_ret {
                    self.predictor.train_indirect(pc, actual);
                }
            }
            _ => unreachable!("only branches and indirect jumps resolve"),
        }

        if was_stalling {
            // The front end was waiting for this target.
            self.redirect = Some((self.cycle + 1, actual));
            self.fetch_stalled = false;
            return;
        }

        if actual != predicted {
            self.stats.mispredicts += 1;
            self.squash_younger_than(seq);
            if let Some(cp) = checkpoint {
                self.predictor.restore(&cp);
                match instr {
                    Instr::Branch { .. } => {
                        let taken = self.rob[self.rob_index(seq).expect("live")].result == Some(1);
                        self.predictor.update_history(taken);
                    }
                    // A mispredicted return still consumed its RAS entry.
                    Instr::Jalr { rd, base, offset }
                        if rd.is_zero() && base == levioso_isa::reg::RA && offset == 0 =>
                    {
                        let _ = self.predictor.pop_return();
                    }
                    _ => {}
                }
            }
            self.redirect = Some((self.cycle + self.config.redirect_penalty, actual));
            self.fetch_stalled = false;
        }
    }

    fn squash_younger_than(&mut self, seq: Seq) {
        while let Some(back) = self.rob.back() {
            if back.seq <= seq {
                break;
            }
            let e = self.rob.pop_back().expect("checked non-empty");
            self.stats.squashed += 1;
            if e.holds_mshr {
                self.outstanding_misses -= 1;
            }
            if e.touched_cache {
                self.stats.transient_fills += 1;
            }
            self.unresolved.remove(&e.seq);
            if e.stage == Stage::Dispatched {
                self.iq_count -= 1;
            }
            if e.instr.is_load() {
                self.lq_count -= 1;
            }
            if e.instr.is_store() {
                self.sq_count -= 1;
            }
        }
        self.stats.squashed += self.fetch_queue.len() as u64;
        self.fetch_queue.clear();
        // Rebuild the register alias table from surviving producers.
        for r in 1..Reg::COUNT {
            self.rat[r] = RatEntry::Value(self.arch_regs[r]);
        }
        for i in 0..self.rob.len() {
            if let Some(rd) = self.rob[i].instr.dest() {
                self.rat[rd.index()] = match (self.rob[i].stage, self.rob[i].result) {
                    (Stage::Done, Some(v)) => RatEntry::Value(v),
                    _ => RatEntry::Producer(self.rob[i].seq),
                };
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue(&mut self, policy: &dyn SpeculationPolicy) {
        // Phase A: read-only scan deciding what issues this cycle.
        let mut actions: Vec<IssueAction> = Vec::new();
        let mut first_ready: Vec<(usize, bool, bool)> = Vec::new();
        let mut delayed: Vec<usize> = Vec::new();

        {
            let view = SpecView { unresolved: &self.unresolved, rob: &self.rob };
            let mut alu = self.config.alu_count;
            let mut mul = self.config.mul_count;
            let mut div = self.config.div_count;
            let mut ld_ports = self.config.load_ports;
            let mut st_ports = self.config.store_ports;
            let mut mshrs_free = self.config.mshr_count.saturating_sub(self.outstanding_misses);
            let mut issued = 0usize;
            let mut all_older_done = true;
            let mut serializer_block = false;

            for idx in 0..self.rob.len() {
                let e = &self.rob[idx];
                if e.stage != Stage::Dispatched {
                    if e.stage != Stage::Done {
                        all_older_done = false;
                        if e.is_serializer() {
                            serializer_block = true;
                        }
                    }
                    continue;
                }
                let older_done = all_older_done;
                all_older_done = false;
                if e.is_serializer() {
                    // Serializers wait for all older instructions and block
                    // all younger ones until they complete.
                    if older_done && !serializer_block && issued < self.config.issue_width {
                        let result = match e.instr {
                            Instr::RdCycle { .. } => Some(self.cycle as i64),
                            _ => None,
                        };
                        actions.push(IssueAction::Simple {
                            idx,
                            latency: 1,
                            result,
                            actual_next: None,
                        });
                        issued += 1;
                    }
                    serializer_block = true;
                    continue;
                }
                if serializer_block {
                    continue;
                }
                if issued >= self.config.issue_width {
                    continue; // keep scanning only for serializer tracking
                }

                // Store address generation needs only the base operand.
                let is_store = e.instr.is_store();
                let base_ready = !is_store || e.srcs[0].state.value().is_some();
                if !(e.operands_ready() || (is_store && base_ready)) {
                    continue;
                }

                // Record first-readiness speculation flags (F1) once.
                if e.operands_ready() && e.ready_while_shadowed.is_none() {
                    first_ready.push((
                        idx,
                        view.any_unresolved(&e.shadow),
                        view.any_unresolved(&e.lev_deps),
                    ));
                }

                // Universal execute gate.
                if policy.may_execute(e, &view) == Gate::Delay {
                    delayed.push(idx);
                    continue;
                }

                match e.instr {
                    Instr::Alu { op, .. } | Instr::AluImm { op, .. } => {
                        let (unit, latency) = match op {
                            levioso_isa::AluOp::Mul | levioso_isa::AluOp::Mulh => {
                                (&mut mul, self.config.mul_latency)
                            }
                            levioso_isa::AluOp::Div | levioso_isa::AluOp::Rem => {
                                (&mut div, self.config.div_latency)
                            }
                            _ => (&mut alu, 1),
                        };
                        if *unit == 0 {
                            continue;
                        }
                        *unit -= 1;
                        let a = e.src_value(0);
                        let b = match e.instr {
                            Instr::Alu { .. } => e.src_value(1),
                            Instr::AluImm { imm, .. } => imm,
                            _ => unreachable!(),
                        };
                        actions.push(IssueAction::Simple {
                            idx,
                            latency,
                            result: Some(op.eval(a, b)),
                            actual_next: None,
                        });
                        issued += 1;
                    }
                    Instr::Branch { cond, target, .. } => {
                        if alu == 0 {
                            continue;
                        }
                        alu -= 1;
                        let taken = cond.eval(e.src_value(0), e.src_value(1));
                        let actual = if taken { target } else { e.pc + 1 };
                        actions.push(IssueAction::Simple {
                            idx,
                            latency: 1,
                            result: Some(i64::from(taken)),
                            actual_next: Some(actual),
                        });
                        issued += 1;
                    }
                    Instr::Jal { .. } => {
                        if alu == 0 {
                            continue;
                        }
                        alu -= 1;
                        actions.push(IssueAction::Simple {
                            idx,
                            latency: 1,
                            result: Some((e.pc + 1) as i64),
                            actual_next: None, // direct: never mispredicts
                        });
                        issued += 1;
                    }
                    Instr::Jalr { offset, .. } => {
                        if alu == 0 {
                            continue;
                        }
                        alu -= 1;
                        let target = (e.src_value(0).wrapping_add(offset)) as u64 as u32;
                        actions.push(IssueAction::Simple {
                            idx,
                            latency: 1,
                            result: Some((e.pc + 1) as i64),
                            actual_next: Some(target),
                        });
                        issued += 1;
                    }
                    Instr::Nop | Instr::Halt => {
                        actions.push(IssueAction::Simple {
                            idx,
                            latency: 1,
                            result: None,
                            actual_next: None,
                        });
                        issued += 1;
                    }
                    Instr::Fence | Instr::RdCycle { .. } => unreachable!("handled above"),
                    Instr::Flush { offset, .. } => {
                        if ld_ports == 0 {
                            continue;
                        }
                        if policy.may_transmit(e, &view) == Gate::Delay {
                            delayed.push(idx);
                            continue;
                        }
                        ld_ports -= 1;
                        let addr = (e.src_value(0) as u64).wrapping_add(offset as u64);
                        actions.push(IssueAction::Flush { idx, addr });
                        issued += 1;
                    }
                    Instr::Load { width, signed, offset, .. } => {
                        if ld_ports == 0 {
                            continue;
                        }
                        let addr = (e.src_value(0) as u64).wrapping_add(offset as u64);
                        // Memory ordering against older stores.
                        match self.lsq_check(idx, addr, width) {
                            LsqVerdict::Blocked => continue,
                            LsqVerdict::Forward(store_idx) => {
                                if policy.may_transmit(e, &view) == Gate::Delay {
                                    delayed.push(idx);
                                    continue;
                                }
                                ld_ports -= 1;
                                actions.push(IssueAction::Forward { idx, store_idx, addr });
                                issued += 1;
                            }
                            LsqVerdict::Memory => {
                                if policy.may_transmit(e, &view) == Gate::Delay {
                                    delayed.push(idx);
                                    continue;
                                }
                                let hit_only = policy.load_mode(e, &view) == LoadMode::HitOnly;
                                let is_l1_hit = self.hierarchy.l1d.contains(addr);
                                if hit_only && !is_l1_hit {
                                    // Delay-on-Miss: must wait instead of
                                    // filling speculatively.
                                    delayed.push(idx);
                                    continue;
                                }
                                if !is_l1_hit {
                                    // A demand miss needs an MSHR.
                                    if mshrs_free == 0 {
                                        continue; // structural stall
                                    }
                                    mshrs_free -= 1;
                                }
                                ld_ports -= 1;
                                let value = read_memory(&self.mem, addr, width, signed);
                                actions.push(IssueAction::Access { idx, addr, value, hit_only });
                                issued += 1;
                            }
                        }
                    }
                    Instr::Store { .. } => {
                        if e.mem_addr.is_some() {
                            continue; // address already generated
                        }
                        if st_ports == 0 {
                            continue;
                        }
                        st_ports -= 1;
                        let offset = match e.instr {
                            Instr::Store { offset, .. } => offset,
                            _ => unreachable!(),
                        };
                        let base = e.srcs[0].state.value().expect("base checked ready");
                        let addr = (base as u64).wrapping_add(offset as u64);
                        actions.push(IssueAction::StoreAddr { idx, addr });
                        issued += 1;
                    }
                }
            }
        }

        // Phase B: apply.
        for (idx, sh, td) in first_ready {
            self.rob[idx].ready_while_shadowed = Some(sh);
            self.rob[idx].ready_while_true_dep = Some(td);
            self.rob[idx].first_ready_cycle = Some(self.cycle);
        }
        for idx in delayed {
            self.rob[idx].policy_delay_cycles += 1;
        }
        for action in actions {
            match action {
                IssueAction::Simple { idx, latency, result, actual_next } => {
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + latency;
                    e.result = result;
                    e.actual_next = actual_next;
                    self.iq_count -= 1;
                }
                IssueAction::Forward { idx, store_idx, addr } => {
                    let store_seq = self.rob[store_idx].seq;
                    let value = self.rob[store_idx].srcs[1]
                        .state
                        .value()
                        .expect("forwarding store has data");
                    let (extra_lev, extra_taint) = {
                        let s = &self.rob[store_idx];
                        (s.lev_deps.clone(), s.taint_roots.clone())
                    };
                    let width_signed = match self.rob[idx].instr {
                        Instr::Load { width, signed, .. } => (width, signed),
                        _ => unreachable!(),
                    };
                    let e = &mut self.rob[idx];
                    // Narrowing semantics of an exact-width match: identical
                    // width, so the raw store value re-extends the same way
                    // a memory round-trip would.
                    let v = extend_like_load(value, width_signed.0, width_signed.1);
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + 2;
                    e.result = Some(v);
                    e.forwarded_from = Some(store_seq);
                    merge_sorted(&mut e.lev_deps, &extra_lev);
                    merge_sorted(&mut e.taint_roots, &extra_taint);
                    e.mem_addr = Some(addr);
                    self.iq_count -= 1;
                }
                IssueAction::Access { idx, addr, value, hit_only } => {
                    let latency = if hit_only {
                        match self.hierarchy.access_if_l1_hit(addr) {
                            Some(l) => l,
                            None => {
                                // The line phase A saw was evicted by an
                                // earlier fill applied this same cycle:
                                // behave as a policy delay and retry.
                                self.rob[idx].policy_delay_cycles += 1;
                                continue;
                            }
                        }
                    } else {
                        self.hierarchy.access(addr, self.cycle)
                    };
                    let is_miss = latency > self.config.hierarchy.l1d.hit_latency;
                    if is_miss {
                        self.outstanding_misses += 1;
                    }
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + latency;
                    e.result = Some(value);
                    e.mem_addr = Some(addr);
                    e.holds_mshr = is_miss;
                    // Invisible (hit-only) accesses change no cache state.
                    e.touched_cache = !hit_only;
                    self.iq_count -= 1;
                }
                IssueAction::Flush { idx, addr } => {
                    self.hierarchy.flush_line(addr);
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + 1;
                    e.mem_addr = Some(addr);
                    e.touched_cache = true;
                    self.iq_count -= 1;
                }
                IssueAction::StoreAddr { idx, addr } => {
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + 1;
                    e.mem_addr = Some(addr);
                    self.iq_count -= 1;
                }
            }
        }
    }

    /// Memory-ordering verdict for a load at ROB index `idx`.
    fn lsq_check(&self, idx: usize, addr: u64, width: levioso_isa::MemWidth) -> LsqVerdict {
        let lo = addr;
        let hi = addr.wrapping_add(width.bytes());
        let mut forward: Option<usize> = None;
        for j in 0..idx {
            let s = &self.rob[j];
            if !s.instr.is_store() {
                continue;
            }
            let Some(sa) = s.mem_addr else {
                return LsqVerdict::Blocked; // unknown older store address
            };
            let sw = match s.instr {
                Instr::Store { width, .. } => width.bytes(),
                _ => unreachable!(),
            };
            let s_hi = sa.wrapping_add(sw);
            let overlap = sa < hi && lo < s_hi;
            if !overlap {
                continue;
            }
            if sa == addr && sw == width.bytes() {
                forward = Some(j); // youngest exact match wins
            } else {
                // Partial overlap: wait for the store to drain at commit.
                return LsqVerdict::Blocked;
            }
        }
        match forward {
            Some(j) => {
                if self.rob[j].srcs[1].state.value().is_some() {
                    LsqVerdict::Forward(j)
                } else {
                    LsqVerdict::Blocked // data not yet available
                }
            }
            None => LsqVerdict::Memory,
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.config.dispatch_width {
            let Some(f) = self.fetch_queue.front() else { break };
            if self.rob.len() >= self.config.rob_size || self.iq_count >= self.config.iq_size {
                break;
            }
            if f.instr.is_load() && self.lq_count >= self.config.lq_size {
                break;
            }
            if f.instr.is_store() && self.sq_count >= self.config.sq_size {
                break;
            }
            let f = self.fetch_queue.pop_front().expect("checked non-empty");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.stats.dispatched += 1;

            let mut e = DynInstr::new(seq, f.pc, f.instr);
            e.predicted_next = f.predicted_next;
            e.history_at_predict = f.history;
            e.checkpoint = f.checkpoint;
            e.fetch_stalled = f.stalls_fetch;

            // Conservative shadow: every unresolved older control instr.
            e.shadow = self.unresolved.keys().copied().collect();

            // Annotation instances: unresolved dynamic instances of the
            // statically annotated branches, plus every unresolved indirect
            // jump (hardware barrier rule).
            let ann = self.program.annotations.as_ref().map(|a| a.deps_of(f.pc as usize));
            e.ann_deps = match ann {
                Some(DepSet::Exact(static_deps)) => self
                    .unresolved
                    .iter()
                    .filter(|(_, &(pc, indirect))| {
                        indirect || static_deps.binary_search(&pc).is_ok()
                    })
                    .map(|(&s, _)| s)
                    .collect(),
                Some(DepSet::AllOlder) | None => e.shadow.clone(),
            };
            e.lev_deps = e.ann_deps.clone();

            // Rename sources; inherit Levioso deps + STT taint through the
            // register dataflow.
            for reg in f.instr.sources() {
                let state = if reg.is_zero() {
                    OpState::Ready(0)
                } else {
                    match self.rat[reg.index()] {
                        RatEntry::Value(v) => OpState::Ready(v),
                        RatEntry::Producer(p) => {
                            if let Some(pidx) = self.rob_index(p) {
                                let prod = &self.rob[pidx];
                                let lev: Vec<Seq> = prod
                                    .lev_deps
                                    .iter()
                                    .copied()
                                    .filter(|s| self.unresolved.contains_key(s))
                                    .collect();
                                merge_sorted(&mut e.lev_deps, &lev);
                                merge_sorted(&mut e.taint_roots, &prod.taint_roots);
                                if prod.instr.is_load() {
                                    let root = [p];
                                    merge_sorted(&mut e.taint_roots, &root);
                                }
                                match (prod.stage, prod.result) {
                                    (Stage::Done, Some(v)) => OpState::Ready(v),
                                    _ => OpState::Waiting(p),
                                }
                            } else {
                                // Producer left the ROB: its value is
                                // architectural.
                                OpState::Ready(self.arch_regs[reg.index()])
                            }
                        }
                    }
                };
                e.srcs.push(Operand { reg, state });
            }

            if let Some(rd) = f.instr.dest() {
                self.rat[rd.index()] = RatEntry::Producer(seq);
            }
            if e.is_spec_source() {
                self.unresolved.insert(seq, (f.pc, f.instr.is_indirect()));
            }
            if f.instr.is_load() {
                self.lq_count += 1;
            }
            if f.instr.is_store() {
                self.sq_count += 1;
            }
            self.iq_count += 1;
            self.rob.push_back(e);
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if let Some((ready_at, pc)) = self.redirect {
            if self.cycle >= ready_at {
                self.fetch_pc = pc;
                self.redirect = None;
            } else {
                return;
            }
        }
        if self.fetch_stalled {
            return;
        }
        let cap = self.config.fetch_width * 2;
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= cap {
                break;
            }
            let pc = self.fetch_pc;
            let Some(&instr) = self.program.instrs.get(pc as usize) else { break };
            let mut fetched = Fetched {
                pc,
                instr,
                predicted_next: pc + 1,
                history: 0,
                checkpoint: None,
                stalls_fetch: false,
            };
            match instr {
                Instr::Branch { target, .. } => {
                    fetched.history = self.predictor.history();
                    fetched.checkpoint = Some(self.predictor.checkpoint());
                    let taken = self.predictor.predict_branch(pc);
                    fetched.predicted_next = if taken { target } else { pc + 1 };
                }
                Instr::Jal { rd, target } => {
                    if !rd.is_zero() {
                        self.predictor.push_return(pc + 1);
                    }
                    fetched.predicted_next = target;
                }
                Instr::Jalr { rd, base, offset } => {
                    fetched.history = self.predictor.history();
                    fetched.checkpoint = Some(self.predictor.checkpoint());
                    let is_ret = rd.is_zero() && base == levioso_isa::reg::RA && offset == 0;
                    let prediction = if is_ret {
                        self.predictor.pop_return()
                    } else {
                        self.predictor.predict_indirect(pc)
                    };
                    match prediction {
                        Some(t) => fetched.predicted_next = t,
                        None => {
                            fetched.predicted_next = u32::MAX;
                            fetched.stalls_fetch = true;
                        }
                    }
                }
                _ => {}
            }
            self.stats.fetched += 1;
            let next = fetched.predicted_next;
            let stall = fetched.stalls_fetch;
            self.fetch_queue.push_back(fetched);
            if stall {
                self.fetch_stalled = true;
                break;
            }
            self.fetch_pc = next;
        }
    }
}

enum LsqVerdict {
    /// Must wait (unknown older store address, partial overlap, or
    /// forwarding data not ready).
    Blocked,
    /// Forward from the store at this ROB index.
    Forward(usize),
    /// Safe to read from the memory system.
    Memory,
}

/// Re-extends a raw store value the way a load of the same width would.
fn extend_like_load(value: i64, width: levioso_isa::MemWidth, signed: bool) -> i64 {
    use levioso_isa::MemWidth::*;
    let bits = match width {
        B => 8,
        H => 16,
        W => 32,
        D => 64,
    };
    if bits == 64 {
        value
    } else if signed {
        (value << (64 - bits)) >> (64 - bits)
    } else {
        value & ((1i64 << bits) - 1)
    }
}

/// Merges sorted `extra` into sorted `dst`, deduplicating.
fn merge_sorted(dst: &mut Vec<Seq>, extra: &[Seq]) {
    if extra.is_empty() {
        return;
    }
    dst.extend_from_slice(extra);
    dst.sort_unstable();
    dst.dedup();
}
