//! The cycle-level out-of-order core.
//!
//! A deliberately explicit model of the pipeline the secure-speculation
//! literature evaluates on: per cycle the core commits, writes back (and
//! resolves/squashes control), issues, renames/dispatches, and fetches.
//! Wrong-path instructions are fully executed — including their cache side
//! effects, which persist across squash: that persistence *is* the Spectre
//! channel the defenses must close.
//!
//! Memory-ordering choices (documented in DESIGN.md): loads wait until all
//! older store addresses are known, forward on an exact address/width
//! match, and stall on partial overlap — i.e. no memory-dependence
//! speculation, so Spectre-v4 is out of scope by construction. Stores
//! write memory and fill the cache at commit only.
//!
//! # Hot-path structure
//!
//! The scheduling loop is event-driven (see DESIGN.md "Hot path &
//! performance model") with results bit-identical to the original
//! full-scan implementation:
//!
//! * speculation sets are [`SpecMask`] bitmasks over in-flight slots
//!   ([`crate::specmask`]) instead of sorted `Vec<Seq>` merges;
//! * writeback pops a completion min-heap keyed by `(done_cycle, seq)`
//!   instead of scanning the ROB (eligible completions always carry the
//!   current cycle, so heap order equals the old seq-order scan);
//! * completions wake their consumers through intrusive per-producer
//!   chains built at rename, and issue walks a sorted ready-set of
//!   operand-ready instructions in seq order (equal to the old ROB-order
//!   scan priority). While a serializer (`fence`/`rdcycle`) is in flight
//!   the core falls back to the full scan, which the serializer semantics
//!   need anyway.

use crate::cache::Hierarchy;
use crate::config::CoreConfig;
use crate::dyninstr::{DynInstr, OpState, Operand, Seq, Stage};
use crate::policy::{Gate, LoadMode, SpecView, SpeculationPolicy};
use crate::predictor::Predictor;
use crate::refsets::RefSets;
use crate::specmask::SlotTable;
use crate::stats::SimStats;
use crate::trace::{Blame, BlamedKind, BlamedSlot, DelayExplanation, TraceSink};
use levioso_isa::{read_memory, write_memory, DepSet, Instr, Memory, Program, Reg};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use std::fmt;

/// Register alias table entry.
#[derive(Debug, Clone, Copy)]
enum RatEntry {
    /// Architectural (or already-committed) value.
    Value(i64),
    /// Produced by the in-flight instruction with this sequence number.
    Producer(Seq),
}

/// An instruction fetched but not yet renamed.
#[derive(Debug, Clone)]
struct Fetched {
    pc: u32,
    instr: Instr,
    predicted_next: u32,
    history: u64,
    checkpoint: Option<crate::predictor::Checkpoint>,
    stalls_fetch: bool,
}

/// What an issuing instruction will do (decided in a read-only pass,
/// applied in a mutating pass).
#[derive(Debug)]
enum IssueAction {
    /// ALU/branch/jump/serializer/nop/halt: result and (for control) the
    /// actual next PC were computed from ready operands.
    Simple { idx: usize, latency: u64, result: Option<i64>, actual_next: Option<u32> },
    /// Load served by store-to-load forwarding.
    Forward { idx: usize, store_idx: usize, addr: u64 },
    /// Load performing a cache access.
    Access { idx: usize, addr: u64, value: i64, hit_only: bool },
    /// Flush instruction evicting a line.
    Flush { idx: usize, addr: u64 },
    /// Store address generation.
    StoreAddr { idx: usize, addr: u64 },
}

/// Which gate produced a `Delay` verdict in phase A, so the blame pass
/// can ask the policy the matching `explain_*_delay` question.
#[derive(Debug, Clone, Copy)]
enum DelayCause {
    /// `may_execute` returned `Delay`.
    Execute,
    /// `may_transmit` returned `Delay`.
    Transmit,
    /// A `LoadMode::HitOnly` load missed in the L1.
    LoadMiss,
}

/// Per-cycle execution-unit budget consumed during the issue scan.
struct IssueUnits {
    alu: usize,
    mul: usize,
    div: usize,
    ld_ports: usize,
    st_ports: usize,
    mshrs_free: usize,
    issued: usize,
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The policy requires compiler annotations but the program has none.
    MissingAnnotations,
    /// The program failed structural validation.
    Invalid(String),
    /// The committed path ran off the end of the program (no `halt`).
    PcOutOfRange {
        /// The runaway program counter.
        pc: u32,
    },
    /// The cycle safety limit was exceeded.
    CycleLimit {
        /// The exhausted limit.
        max_cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingAnnotations => {
                f.write_str("policy requires compiler annotations but the program has none")
            }
            SimError::Invalid(e) => write!(f, "invalid program: {e}"),
            SimError::PcOutOfRange { pc } => {
                write!(f, "committed path left the program at pc {pc}")
            }
            SimError::CycleLimit { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The out-of-order core simulator.
///
/// One `Simulator` owns the machine state (memory, caches, predictor) for
/// one program run under one policy:
///
/// ```
/// use levioso_uarch::{CoreConfig, Simulator, UnsafeBaseline};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = levioso_isa::assemble("t", "li a0, 41\naddi a0, a0, 1\nhalt")?;
/// let mut sim = Simulator::new(&program, CoreConfig::default());
/// let stats = sim.run(&UnsafeBaseline)?;
/// assert_eq!(sim.reg(levioso_isa::reg::A0), 42);
/// assert!(stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    config: CoreConfig,
    /// Functional data memory (set up inputs before `run`, inspect outputs
    /// after).
    pub mem: Memory,
    hierarchy: Hierarchy,
    predictor: Predictor,

    rob: VecDeque<DynInstr>,
    fetch_queue: VecDeque<Fetched>,
    fetch_pc: u32,
    fetch_stalled: bool,
    redirect: Option<(u64, u32)>,

    rat: [RatEntry; Reg::COUNT],
    arch_regs: [i64; Reg::COUNT],
    /// Speculation slots: per-control/per-load state masks (replaces the
    /// old `unresolved` map and unbounded `resolve_cycle` map).
    slots: SlotTable,

    /// Dispatched instructions whose operands are ready (stores: base
    /// ready), in seq order — the issue scan's candidate set.
    ready: BTreeSet<Seq>,
    /// Min-heap of pending completions `(done_cycle, seq)`; entries for
    /// squashed instructions are skipped at pop.
    completions: BinaryHeap<Reverse<(u64, Seq)>>,
    /// Serializers currently in the ROB; while non-zero, issue uses the
    /// full-scan path that serializer semantics require.
    serializer_count: usize,

    next_seq: Seq,
    cycle: u64,
    /// Demand misses currently in flight (MSHR occupancy).
    outstanding_misses: usize,
    iq_count: usize,
    lq_count: usize,
    sq_count: usize,
    stats: SimStats,
    halted: bool,

    // Reused per-cycle scratch buffers (no steady-state allocation).
    scratch_actions: Vec<IssueAction>,
    scratch_first_ready: Vec<(usize, bool, bool)>,
    scratch_delayed: Vec<(usize, DelayCause)>,

    /// Differential-checking oracle (old Vec-based set semantics), enabled
    /// by tests via [`Simulator::enable_reference_checking`].
    refsets: Option<Box<RefSets>>,

    /// Observability sink (see [`crate::trace`]); `None` in production
    /// runs, where every hook reduces to one branch.
    tracer: Option<Box<dyn TraceSink>>,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator for `program` with the given configuration.
    pub fn new(program: &'p Program, config: CoreConfig) -> Self {
        let hierarchy = Hierarchy::new(&config.hierarchy);
        let predictor = Predictor::new(&config.predictor);
        let slots = SlotTable::new(config.rob_size);
        Simulator {
            program,
            config,
            mem: Memory::new(),
            hierarchy,
            predictor,
            rob: VecDeque::new(),
            fetch_queue: VecDeque::new(),
            fetch_pc: 0,
            fetch_stalled: false,
            redirect: None,
            rat: [RatEntry::Value(0); Reg::COUNT],
            arch_regs: [0; Reg::COUNT],
            slots,
            ready: BTreeSet::new(),
            completions: BinaryHeap::new(),
            serializer_count: 0,
            next_seq: 0,
            cycle: 0,
            outstanding_misses: 0,
            iq_count: 0,
            lq_count: 0,
            sq_count: 0,
            stats: SimStats::default(),
            halted: false,
            scratch_actions: Vec::new(),
            scratch_first_ready: Vec::new(),
            scratch_delayed: Vec::new(),
            refsets: None,
            tracer: None,
        }
    }

    /// Attaches a trace sink; subsequent pipeline events are reported to
    /// it (call before [`Simulator::run`] to observe the whole run).
    pub fn attach_tracer(&mut self, sink: Box<dyn TraceSink>) {
        self.tracer = Some(sink);
    }

    /// Detaches and returns the trace sink, if one is attached. Recover
    /// the concrete type with [`TraceSink::into_any`].
    pub fn take_tracer(&mut self) -> Option<Box<dyn TraceSink>> {
        self.tracer.take()
    }

    /// Committed architectural value of register `r`.
    pub fn reg(&self, r: Reg) -> i64 {
        self.arch_regs[r.index()]
    }

    /// Sets the *initial* architectural value of `r` (before `run`).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.arch_regs[r.index()] = value;
            self.rat[r.index()] = RatEntry::Value(value);
        }
    }

    /// The cache hierarchy (side-channel receivers probe it after a run).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Mutable cache hierarchy (tests prepare cache states directly).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hierarchy
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Runs the old Vec-based reference set implementation side-by-side
    /// with the bitmask path, asserting equivalence at every dispatch,
    /// forward, and commit (differential-testing hook; call before `run`).
    #[doc(hidden)]
    pub fn enable_reference_checking(&mut self) {
        self.refsets = Some(Box::new(RefSets::new()));
    }

    /// Number of equivalence events the reference oracle checked (0 when
    /// checking is disabled).
    #[doc(hidden)]
    pub fn reference_events_checked(&self) -> u64 {
        self.refsets.as_ref().map_or(0, |r| r.events_checked)
    }

    /// `(high-water mark, capacity)` of the speculation slot table
    /// (bounded-state test hook; capacity is 2 × ROB size).
    #[doc(hidden)]
    pub fn spec_slot_watermark(&self) -> (usize, usize) {
        (self.slots.max_in_use(), self.slots.capacity())
    }

    /// Diagnostic dump of in-flight state (for debugging the simulator
    /// itself; not a stable API).
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle={} fetch_pc={} stalled={} redirect={:?} iq={} lq={} sq={} fq={}",
            self.cycle,
            self.fetch_pc,
            self.fetch_stalled,
            self.redirect,
            self.iq_count,
            self.lq_count,
            self.sq_count,
            self.fetch_queue.len()
        );
        let _ = writeln!(out, "unresolved={:?}", self.slots.mask_seqs(&self.slots.unresolved));
        for e in &self.rob {
            let _ = writeln!(
                out,
                "  seq={} pc={} {:?} stage={:?} done={} srcs={:?} addr={:?}",
                e.seq, e.pc, e.instr, e.stage, e.done_cycle, e.srcs, e.mem_addr
            );
        }
        out
    }

    /// Fingerprint of committed architectural state (registers + memory);
    /// directly comparable with
    /// [`levioso_isa::Machine::arch_fingerprint`].
    pub fn arch_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &r in &self.arch_regs {
            for b in r.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        h ^ self.mem.fingerprint().rotate_left(17)
    }

    /// Runs the program to completion under `policy`.
    ///
    /// # Errors
    ///
    /// [`SimError::MissingAnnotations`] if the policy needs annotations the
    /// program lacks; [`SimError::Invalid`] for malformed programs;
    /// [`SimError::PcOutOfRange`] if the committed path leaves the program;
    /// [`SimError::CycleLimit`] on runaway simulations.
    pub fn run(&mut self, policy: &dyn SpeculationPolicy) -> Result<SimStats, SimError> {
        if policy.needs_annotations() && self.program.annotations.is_none() {
            return Err(SimError::MissingAnnotations);
        }
        self.program.validate().map_err(|e| SimError::Invalid(e.to_string()))?;
        if self.program.is_empty() {
            return Err(SimError::PcOutOfRange { pc: 0 });
        }
        while !self.halted {
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::CycleLimit { max_cycles: self.config.max_cycles });
            }
            self.commit();
            if self.halted {
                break;
            }
            self.writeback();
            self.issue(policy);
            self.dispatch();
            self.fetch();
            // Starvation: nothing in flight and the front end can never
            // make progress again.
            if self.rob.is_empty()
                && self.fetch_queue.is_empty()
                && self.redirect.is_none()
                && !self.fetch_stalled
                && self.fetch_pc as usize >= self.program.len()
            {
                return Err(SimError::PcOutOfRange { pc: self.fetch_pc });
            }
            self.cycle += 1;
        }
        self.stats.cycles = self.cycle;
        self.stats.l1d = self.hierarchy.l1d.stats();
        self.stats.l2 = self.hierarchy.l2.stats();
        Ok(self.stats)
    }

    /// ROB index of the live instruction `seq`, if any. Sequence numbers
    /// are unique and ascending in the ROB but not contiguous (squashes
    /// leave gaps), so this is a binary search.
    fn rob_index(&self, seq: Seq) -> Option<usize> {
        self.rob.binary_search_by(|e| e.seq.cmp(&seq)).ok()
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.config.commit_width {
            let Some(front) = self.rob.front() else { break };
            if front.stage != Stage::Done {
                break;
            }
            // Stores also need their data before retiring.
            if front.instr.is_store() && front.srcs[1].state.value().is_none() {
                break;
            }
            let e = self.rob.pop_front().expect("checked non-empty");
            if e.instr.is_load() {
                self.lq_count -= 1;
            }
            if e.instr.is_store() {
                self.sq_count -= 1;
            }
            if e.is_serializer() {
                self.serializer_count -= 1;
            }
            self.account_commit(&e);
            // The slot outlives the owner until the ROB drains past
            // `next_seq`, so younger in-flight masks never alias it.
            if let Some(slot) = e.slot {
                self.slots.free_commit(slot, self.next_seq);
            }
            match e.instr {
                Instr::Store { width, .. } => {
                    let addr = e.mem_addr.expect("committed store has an address");
                    let data = e.srcs[1].state.value().expect("checked data ready");
                    write_memory(&mut self.mem, addr, width, data);
                    // The store's fill becomes architectural at commit.
                    self.hierarchy.access(addr, self.cycle);
                }
                Instr::Halt => {
                    self.halted = true;
                    return;
                }
                _ => {}
            }
            if let Some(rd) = e.instr.dest() {
                let v = e.result.expect("done instruction with dest has result");
                self.arch_regs[rd.index()] = v;
                if let RatEntry::Producer(s) = self.rat[rd.index()] {
                    if s == e.seq {
                        self.rat[rd.index()] = RatEntry::Value(v);
                    }
                }
            }
        }
    }

    fn account_commit(&mut self, e: &DynInstr) {
        self.stats.committed += 1;
        if e.instr.is_load() {
            self.stats.committed_loads += 1;
            if e.ready_while_shadowed == Some(true) {
                self.stats.loads_ready_while_shadowed += 1;
            }
            if e.ready_while_true_dep == Some(true) {
                self.stats.loads_ready_while_true_dep += 1;
            }
        }
        if e.instr.is_store() {
            self.stats.committed_stores += 1;
        }
        if e.instr.is_branch() {
            self.stats.committed_branches += 1;
        }
        if e.ready_while_shadowed == Some(true) {
            self.stats.ready_while_shadowed += 1;
        }
        if e.ready_while_true_dep == Some(true) {
            self.stats.ready_while_true_dep += 1;
        }
        self.stats.policy_delay_cycles += e.policy_delay_cycles;
        if e.policy_delay_cycles > 0 {
            self.stats.policy_delayed_instrs += 1;
        }
        // F1 headroom: how long past readiness the conservative shadow vs
        // the true dependencies stayed unresolved. (Every control
        // instruction older than a committed one has resolved, and its
        // slot is unreused while this instruction is in flight, so the
        // per-slot resolve cycles are valid. Dependencies whose slots were
        // dropped at store-forwarding carry their contribution in
        // `fwd_true_wait`.)
        let mut waits = None;
        if let Some(ready) = e.first_ready_cycle {
            let sw = self.slots.wait_cycles(&e.shadow, ready);
            let tw = self.slots.wait_cycles(&e.lev_deps, ready).max(e.fwd_true_wait);
            self.stats.shadow_wait_cycles += sw;
            self.stats.true_wait_cycles += tw;
            if e.instr.is_load() {
                self.stats.loads_shadow_wait_cycles += sw;
                self.stats.loads_true_wait_cycles += tw;
            }
            waits = Some((sw, tw));
        }
        if self.refsets.is_some() {
            let mut r = self.refsets.take().expect("checked");
            r.on_commit(e, waits);
            self.refsets = Some(r);
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.on_commit(self.cycle, e);
        }
    }

    // ------------------------------------------------------------------
    // Writeback & control resolution
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        // Pop due completions in (cycle, seq) order. Issue always schedules
        // completion strictly in the future and writeback runs every cycle,
        // so every due entry carries the current cycle — making heap order
        // identical to the old seq-order ROB scan. Entries whose owner was
        // squashed (including by a resolution earlier this same cycle) no
        // longer resolve through `rob_index` and are skipped.
        while let Some(&Reverse((done_cycle, seq))) = self.completions.peek() {
            if done_cycle > self.cycle {
                break;
            }
            self.completions.pop();
            let Some(idx) = self.rob_index(seq) else { continue }; // squashed meanwhile
            debug_assert_eq!(self.rob[idx].stage, Stage::Executing);
            self.rob[idx].stage = Stage::Done;
            if self.rob[idx].holds_mshr {
                self.rob[idx].holds_mshr = false;
                self.outstanding_misses -= 1;
            }
            if self.rob[idx].instr.is_load() {
                let slot = self.rob[idx].slot.expect("loads own a slot");
                self.slots.mark_load_done(slot);
                if self.refsets.is_some() {
                    let mut r = self.refsets.take().expect("checked");
                    r.on_load_done(seq);
                    self.refsets = Some(r);
                }
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                t.on_writeback(self.cycle, &self.rob[idx]);
            }
            // Wake consumers along this producer's chain.
            if self.rob[idx].instr.dest().is_some() {
                let v = self.rob[idx].result.expect("dest implies result");
                let mut cur = self.rob[idx].wake_head;
                while let Some((cseq, oi)) = cur {
                    let cidx = self
                        .rob_index(cseq)
                        .expect("squash rebuilds wake chains, so links are live");
                    let c = &mut self.rob[cidx];
                    c.srcs[oi as usize].state = OpState::Ready(v);
                    cur = c.wake_next[oi as usize];
                    if c.stage == Stage::Dispatched {
                        let eligible = c.operands_ready()
                            || (c.instr.is_store()
                                && c.srcs[0].state.value().is_some()
                                && c.mem_addr.is_none());
                        if eligible {
                            self.ready.insert(cseq);
                        }
                    }
                }
            }
            if self.rob[idx].is_spec_source() {
                self.resolve_control(seq);
            }
        }
    }

    fn resolve_control(&mut self, seq: Seq) {
        let idx = self.rob_index(seq).expect("resolving a live instruction");
        let (pc, actual, predicted, was_stalling, history, checkpoint, instr, slot, taken) = {
            let e = &mut self.rob[idx];
            (
                e.pc,
                e.actual_next.expect("executed control has actual target"),
                e.predicted_next,
                e.fetch_stalled,
                e.history_at_predict,
                e.checkpoint.take(),
                e.instr,
                e.slot.expect("control instructions own a slot"),
                e.result == Some(1),
            )
        };

        self.slots.resolve(slot, self.cycle);
        if self.refsets.is_some() {
            let mut r = self.refsets.take().expect("checked");
            r.on_resolve(seq, self.cycle);
            self.refsets = Some(r);
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            // A stalling indirect never predicted, so it cannot mispredict.
            t.on_resolve(self.cycle, &self.rob[idx], !was_stalling && actual != predicted);
        }

        // Train.
        match instr {
            Instr::Branch { .. } => {
                self.predictor.train_branch(pc, history, taken);
            }
            Instr::Jalr { rd, base, offset } => {
                let is_ret = rd.is_zero() && base == levioso_isa::reg::RA && offset == 0;
                if !is_ret {
                    self.predictor.train_indirect(pc, actual);
                }
            }
            _ => unreachable!("only branches and indirect jumps resolve"),
        }

        if was_stalling {
            // The front end was waiting for this target.
            self.redirect = Some((self.cycle + 1, actual));
            self.fetch_stalled = false;
            return;
        }

        if actual != predicted {
            self.stats.mispredicts += 1;
            self.squash_younger_than(seq);
            if let Some(cp) = checkpoint {
                self.predictor.restore(&cp);
                match instr {
                    Instr::Branch { .. } => {
                        self.predictor.update_history(taken);
                    }
                    // A mispredicted return still consumed its RAS entry.
                    Instr::Jalr { rd, base, offset }
                        if rd.is_zero() && base == levioso_isa::reg::RA && offset == 0 =>
                    {
                        let _ = self.predictor.pop_return();
                    }
                    _ => {}
                }
            }
            self.redirect = Some((self.cycle + self.config.redirect_penalty, actual));
            self.fetch_stalled = false;
        }
    }

    fn squash_younger_than(&mut self, seq: Seq) {
        while let Some(back) = self.rob.back() {
            if back.seq <= seq {
                break;
            }
            let e = self.rob.pop_back().expect("checked non-empty");
            self.stats.squashed += 1;
            if e.holds_mshr {
                self.outstanding_misses -= 1;
            }
            if e.touched_cache {
                self.stats.transient_fills += 1;
            }
            if let Some(slot) = e.slot {
                // Immediately reusable: every instruction that could hold
                // this slot's bit is younger and squashed in this event.
                self.slots.free_squash(slot);
            }
            if e.is_serializer() {
                self.serializer_count -= 1;
            }
            if e.stage == Stage::Dispatched {
                self.iq_count -= 1;
            }
            if e.instr.is_load() {
                self.lq_count -= 1;
            }
            if e.instr.is_store() {
                self.sq_count -= 1;
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                t.on_squash(self.cycle, e.seq, e.pc);
            }
        }
        // Drop squashed entries from the ready set (stale completion-heap
        // entries are skipped at pop instead).
        let _ = self.ready.split_off(&(seq + 1));
        if self.refsets.is_some() {
            let mut r = self.refsets.take().expect("checked");
            r.on_squash_younger(seq);
            self.refsets = Some(r);
        }
        self.stats.squashed += self.fetch_queue.len() as u64;
        self.fetch_queue.clear();
        // Rebuild the register alias table from surviving producers, and
        // the wakeup chains from surviving waiters (chains may pass
        // through squashed consumers).
        for r in 1..Reg::COUNT {
            self.rat[r] = RatEntry::Value(self.arch_regs[r]);
        }
        for i in 0..self.rob.len() {
            self.rob[i].wake_head = None;
        }
        for i in 0..self.rob.len() {
            if let Some(rd) = self.rob[i].instr.dest() {
                self.rat[rd.index()] = match (self.rob[i].stage, self.rob[i].result) {
                    (Stage::Done, Some(v)) => RatEntry::Value(v),
                    _ => RatEntry::Producer(self.rob[i].seq),
                };
            }
            let cseq = self.rob[i].seq;
            for oi in 0..self.rob[i].srcs.len() {
                if let OpState::Waiting(p) = self.rob[i].srcs[oi].state {
                    let pidx = self
                        .rob_index(p)
                        .expect("a surviving consumer's producer is older and survives");
                    let head = self.rob[pidx].wake_head;
                    self.rob[i].wake_next[oi] = head;
                    self.rob[pidx].wake_head = Some((cseq, oi as u8));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue(&mut self, policy: &dyn SpeculationPolicy) {
        // Phase A: read-only pass deciding what issues this cycle, into
        // scratch buffers reused across cycles.
        let mut actions = std::mem::take(&mut self.scratch_actions);
        let mut first_ready = std::mem::take(&mut self.scratch_first_ready);
        let mut delayed = std::mem::take(&mut self.scratch_delayed);
        debug_assert!(actions.is_empty() && first_ready.is_empty() && delayed.is_empty());

        {
            let view = SpecView { slots: &self.slots, rob: &self.rob };
            let mut units = IssueUnits {
                alu: self.config.alu_count,
                mul: self.config.mul_count,
                div: self.config.div_count,
                ld_ports: self.config.load_ports,
                st_ports: self.config.store_ports,
                mshrs_free: self.config.mshr_count.saturating_sub(self.outstanding_misses),
                issued: 0,
            };
            if self.serializer_count > 0 {
                self.issue_scan_serialized(
                    policy,
                    &view,
                    &mut units,
                    &mut actions,
                    &mut first_ready,
                    &mut delayed,
                );
            } else {
                // Fast path: only operand-ready dispatched instructions can
                // act, and the sorted ready-set walks them in seq order —
                // the same priority order as the full ROB scan.
                for &seq in &self.ready {
                    if units.issued >= self.config.issue_width {
                        // The full scan continues past this point only to
                        // track serializers, which are absent here.
                        break;
                    }
                    let idx = self.rob_index(seq).expect("ready entries are live");
                    debug_assert_eq!(self.rob[idx].stage, Stage::Dispatched);
                    self.consider_issue(
                        policy,
                        &view,
                        idx,
                        &mut units,
                        &mut actions,
                        &mut first_ready,
                        &mut delayed,
                    );
                }
            }
        }

        // Blame pass: with a sink attached, explain this cycle's policy
        // blocks *before* phase B mutates the state the verdicts were
        // computed from (so the blocking masks the policy reports match
        // the masks its gates actually saw).
        if self.tracer.is_some() {
            let mut t = self.tracer.take().expect("checked");
            {
                let view = SpecView { slots: &self.slots, rob: &self.rob };
                for &(idx, cause) in &delayed {
                    let e = &self.rob[idx];
                    let expl = match cause {
                        DelayCause::Execute => policy.explain_execute_delay(e, &view),
                        DelayCause::Transmit => policy.explain_transmit_delay(e, &view),
                        DelayCause::LoadMiss => policy.explain_load_mode_delay(e, &view),
                    };
                    t.on_policy_block(self.cycle, e, &self.blame_of(&expl));
                }
            }
            self.tracer = Some(t);
        }

        // Phase B: apply.
        for &(idx, sh, td) in &first_ready {
            self.rob[idx].ready_while_shadowed = Some(sh);
            self.rob[idx].ready_while_true_dep = Some(td);
            self.rob[idx].first_ready_cycle = Some(self.cycle);
        }
        for &(idx, _) in &delayed {
            self.rob[idx].policy_delay_cycles += 1;
        }
        for action in actions.drain(..) {
            match action {
                IssueAction::Simple { idx, latency, result, actual_next } => {
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + latency;
                    e.result = result;
                    e.actual_next = actual_next;
                    let seq = e.seq;
                    let done = e.done_cycle;
                    self.iq_count -= 1;
                    self.ready.remove(&seq);
                    self.completions.push(Reverse((done, seq)));
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.on_issue(self.cycle, &self.rob[idx]);
                    }
                }
                IssueAction::Forward { idx, store_idx, addr } => {
                    let store_seq = self.rob[store_idx].seq;
                    let value = self.rob[store_idx].srcs[1]
                        .state
                        .value()
                        .expect("forwarding store has data");
                    let (extra_lev, extra_taint) = {
                        let s = &self.rob[store_idx];
                        (s.lev_deps, s.taint_roots)
                    };
                    let width_signed = match self.rob[idx].instr {
                        Instr::Load { width, signed, .. } => (width, signed),
                        _ => unreachable!(),
                    };
                    // Inherit the store's sets. Still-unresolved deps merge
                    // as mask bits; deps that already resolved may see
                    // their slot recycle before this load commits, so
                    // their wait-accounting contribution is folded into a
                    // scalar now (the store is still in flight, so every
                    // bit currently maps to its original owner).
                    let kept_lev = extra_lev.and(&self.slots.unresolved);
                    let stale_lev = extra_lev.and_not(&self.slots.unresolved);
                    let kept_taint = extra_taint.and(&self.slots.live_load);
                    let ready = self.rob[idx]
                        .first_ready_cycle
                        .expect("forwarding requires ready operands");
                    let mut stale_wait = 0u64;
                    for slot in stale_lev.iter() {
                        stale_wait =
                            stale_wait.max(self.slots.resolve_cycle_of(slot).saturating_sub(ready));
                    }
                    let e = &mut self.rob[idx];
                    // Narrowing semantics of an exact-width match: identical
                    // width, so the raw store value re-extends the same way
                    // a memory round-trip would.
                    let v = extend_like_load(value, width_signed.0, width_signed.1);
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + 2;
                    e.result = Some(v);
                    e.forwarded_from = Some(store_seq);
                    e.lev_deps.union_with(&kept_lev);
                    e.taint_roots.union_with(&kept_taint);
                    e.fwd_true_wait = e.fwd_true_wait.max(stale_wait);
                    e.mem_addr = Some(addr);
                    let seq = e.seq;
                    let done = e.done_cycle;
                    self.iq_count -= 1;
                    self.ready.remove(&seq);
                    self.completions.push(Reverse((done, seq)));
                    if self.refsets.is_some() {
                        let mut r = self.refsets.take().expect("checked");
                        let view = SpecView { slots: &self.slots, rob: &self.rob };
                        let lidx = self.rob_index(seq).expect("live");
                        r.on_forward(seq, store_seq, &self.rob[lidx], &self.slots, &view);
                        self.refsets = Some(r);
                    }
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.on_forward(self.cycle, &self.rob[idx], store_seq);
                        t.on_issue(self.cycle, &self.rob[idx]);
                    }
                }
                IssueAction::Access { idx, addr, value, hit_only } => {
                    let latency = if hit_only {
                        match self.hierarchy.access_if_l1_hit(addr) {
                            Some(l) => l,
                            None => {
                                // The line phase A saw was evicted by an
                                // earlier fill applied this same cycle:
                                // behave as a policy delay and retry (the
                                // instruction stays dispatched and in the
                                // ready set).
                                self.rob[idx].policy_delay_cycles += 1;
                                if let Some(t) = self.tracer.as_deref_mut() {
                                    t.on_policy_block(
                                        self.cycle,
                                        &self.rob[idx],
                                        &Blame { rule: "core:l1-race-retry", blamed: None },
                                    );
                                }
                                continue;
                            }
                        }
                    } else {
                        self.hierarchy.access(addr, self.cycle)
                    };
                    let is_miss = latency > self.config.hierarchy.l1d.hit_latency;
                    if is_miss {
                        self.outstanding_misses += 1;
                    }
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + latency;
                    e.result = Some(value);
                    e.mem_addr = Some(addr);
                    e.holds_mshr = is_miss;
                    // Invisible (hit-only) accesses change no cache state.
                    e.touched_cache = !hit_only;
                    let seq = e.seq;
                    let done = e.done_cycle;
                    self.iq_count -= 1;
                    self.ready.remove(&seq);
                    self.completions.push(Reverse((done, seq)));
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.on_issue(self.cycle, &self.rob[idx]);
                    }
                }
                IssueAction::Flush { idx, addr } => {
                    self.hierarchy.flush_line(addr);
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + 1;
                    e.mem_addr = Some(addr);
                    e.touched_cache = true;
                    let seq = e.seq;
                    let done = e.done_cycle;
                    self.iq_count -= 1;
                    self.ready.remove(&seq);
                    self.completions.push(Reverse((done, seq)));
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.on_issue(self.cycle, &self.rob[idx]);
                    }
                }
                IssueAction::StoreAddr { idx, addr } => {
                    let e = &mut self.rob[idx];
                    e.stage = Stage::Executing;
                    e.done_cycle = self.cycle + 1;
                    e.mem_addr = Some(addr);
                    let seq = e.seq;
                    let done = e.done_cycle;
                    self.iq_count -= 1;
                    self.ready.remove(&seq);
                    self.completions.push(Reverse((done, seq)));
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.on_issue(self.cycle, &self.rob[idx]);
                    }
                }
            }
        }

        self.scratch_actions = actions;
        first_ready.clear();
        self.scratch_first_ready = first_ready;
        delayed.clear();
        self.scratch_delayed = delayed;
    }

    /// The full-ROB issue scan, used while a serializer is in flight: a
    /// serializer issues only once all older instructions are done and
    /// blocks all younger ones, which requires walking every entry.
    #[allow(clippy::too_many_arguments)]
    fn issue_scan_serialized(
        &self,
        policy: &dyn SpeculationPolicy,
        view: &SpecView<'_>,
        units: &mut IssueUnits,
        actions: &mut Vec<IssueAction>,
        first_ready: &mut Vec<(usize, bool, bool)>,
        delayed: &mut Vec<(usize, DelayCause)>,
    ) {
        let mut all_older_done = true;
        let mut serializer_block = false;
        for idx in 0..self.rob.len() {
            let e = &self.rob[idx];
            if e.stage != Stage::Dispatched {
                if e.stage != Stage::Done {
                    all_older_done = false;
                    if e.is_serializer() {
                        serializer_block = true;
                    }
                }
                continue;
            }
            let older_done = all_older_done;
            all_older_done = false;
            if e.is_serializer() {
                // Serializers wait for all older instructions and block
                // all younger ones until they complete.
                if older_done && !serializer_block && units.issued < self.config.issue_width {
                    let result = match e.instr {
                        Instr::RdCycle { .. } => Some(self.cycle as i64),
                        _ => None,
                    };
                    actions.push(IssueAction::Simple {
                        idx,
                        latency: 1,
                        result,
                        actual_next: None,
                    });
                    units.issued += 1;
                }
                serializer_block = true;
                continue;
            }
            if serializer_block {
                continue;
            }
            if units.issued >= self.config.issue_width {
                continue; // keep scanning only for serializer tracking
            }
            self.consider_issue(policy, view, idx, units, actions, first_ready, delayed);
        }
    }

    /// Issue decision for the dispatched non-serializer instruction at
    /// `idx` — shared verbatim between the fast ready-set path and the
    /// serialized full scan so the two cannot diverge.
    #[allow(clippy::too_many_arguments)]
    fn consider_issue(
        &self,
        policy: &dyn SpeculationPolicy,
        view: &SpecView<'_>,
        idx: usize,
        units: &mut IssueUnits,
        actions: &mut Vec<IssueAction>,
        first_ready: &mut Vec<(usize, bool, bool)>,
        delayed: &mut Vec<(usize, DelayCause)>,
    ) {
        let e = &self.rob[idx];
        // Store address generation needs only the base operand.
        let is_store = e.instr.is_store();
        let base_ready = !is_store || e.srcs[0].state.value().is_some();
        if !(e.operands_ready() || (is_store && base_ready)) {
            return;
        }

        // Record first-readiness speculation flags (F1) once.
        if e.operands_ready() && e.ready_while_shadowed.is_none() {
            first_ready.push((
                idx,
                view.any_unresolved(&e.shadow),
                view.any_unresolved(&e.lev_deps),
            ));
        }

        // Universal execute gate.
        if policy.may_execute(e, view) == Gate::Delay {
            delayed.push((idx, DelayCause::Execute));
            return;
        }

        match e.instr {
            Instr::Alu { op, .. } | Instr::AluImm { op, .. } => {
                let (unit, latency) = match op {
                    levioso_isa::AluOp::Mul | levioso_isa::AluOp::Mulh => {
                        (&mut units.mul, self.config.mul_latency)
                    }
                    levioso_isa::AluOp::Div | levioso_isa::AluOp::Rem => {
                        (&mut units.div, self.config.div_latency)
                    }
                    _ => (&mut units.alu, 1),
                };
                if *unit == 0 {
                    return;
                }
                *unit -= 1;
                let a = e.src_value(0);
                let b = match e.instr {
                    Instr::Alu { .. } => e.src_value(1),
                    Instr::AluImm { imm, .. } => imm,
                    _ => unreachable!(),
                };
                actions.push(IssueAction::Simple {
                    idx,
                    latency,
                    result: Some(op.eval(a, b)),
                    actual_next: None,
                });
                units.issued += 1;
            }
            Instr::Branch { cond, target, .. } => {
                if units.alu == 0 {
                    return;
                }
                units.alu -= 1;
                let taken = cond.eval(e.src_value(0), e.src_value(1));
                let actual = if taken { target } else { e.pc + 1 };
                actions.push(IssueAction::Simple {
                    idx,
                    latency: 1,
                    result: Some(i64::from(taken)),
                    actual_next: Some(actual),
                });
                units.issued += 1;
            }
            Instr::Jal { .. } => {
                if units.alu == 0 {
                    return;
                }
                units.alu -= 1;
                actions.push(IssueAction::Simple {
                    idx,
                    latency: 1,
                    result: Some((e.pc + 1) as i64),
                    actual_next: None, // direct: never mispredicts
                });
                units.issued += 1;
            }
            Instr::Jalr { offset, .. } => {
                if units.alu == 0 {
                    return;
                }
                units.alu -= 1;
                let target = (e.src_value(0).wrapping_add(offset)) as u64 as u32;
                actions.push(IssueAction::Simple {
                    idx,
                    latency: 1,
                    result: Some((e.pc + 1) as i64),
                    actual_next: Some(target),
                });
                units.issued += 1;
            }
            Instr::Nop | Instr::Halt => {
                actions.push(IssueAction::Simple {
                    idx,
                    latency: 1,
                    result: None,
                    actual_next: None,
                });
                units.issued += 1;
            }
            Instr::Fence | Instr::RdCycle { .. } => unreachable!("serializers handled by caller"),
            Instr::Flush { offset, .. } => {
                if units.ld_ports == 0 {
                    return;
                }
                if policy.may_transmit(e, view) == Gate::Delay {
                    delayed.push((idx, DelayCause::Transmit));
                    return;
                }
                units.ld_ports -= 1;
                let addr = (e.src_value(0) as u64).wrapping_add(offset as u64);
                actions.push(IssueAction::Flush { idx, addr });
                units.issued += 1;
            }
            Instr::Load { width, signed, offset, .. } => {
                if units.ld_ports == 0 {
                    return;
                }
                let addr = (e.src_value(0) as u64).wrapping_add(offset as u64);
                // Memory ordering against older stores.
                match self.lsq_check(idx, addr, width) {
                    LsqVerdict::Blocked => {}
                    LsqVerdict::Forward(store_idx) => {
                        if policy.may_transmit(e, view) == Gate::Delay {
                            delayed.push((idx, DelayCause::Transmit));
                            return;
                        }
                        units.ld_ports -= 1;
                        actions.push(IssueAction::Forward { idx, store_idx, addr });
                        units.issued += 1;
                    }
                    LsqVerdict::Memory => {
                        if policy.may_transmit(e, view) == Gate::Delay {
                            delayed.push((idx, DelayCause::Transmit));
                            return;
                        }
                        let hit_only = policy.load_mode(e, view) == LoadMode::HitOnly;
                        let is_l1_hit = self.hierarchy.l1d.contains(addr);
                        if hit_only && !is_l1_hit {
                            // Delay-on-Miss: must wait instead of filling
                            // speculatively.
                            delayed.push((idx, DelayCause::LoadMiss));
                            return;
                        }
                        if !is_l1_hit {
                            // A demand miss needs an MSHR.
                            if units.mshrs_free == 0 {
                                return; // structural stall
                            }
                            units.mshrs_free -= 1;
                        }
                        units.ld_ports -= 1;
                        let value = read_memory(&self.mem, addr, width, signed);
                        actions.push(IssueAction::Access { idx, addr, value, hit_only });
                        units.issued += 1;
                    }
                }
            }
            Instr::Store { .. } => {
                if e.mem_addr.is_some() {
                    return; // address already generated
                }
                if units.st_ports == 0 {
                    return;
                }
                units.st_ports -= 1;
                let offset = match e.instr {
                    Instr::Store { offset, .. } => offset,
                    _ => unreachable!(),
                };
                let base = e.srcs[0].state.value().expect("base checked ready");
                let addr = (base as u64).wrapping_add(offset as u64);
                actions.push(IssueAction::StoreAddr { idx, addr });
                units.issued += 1;
            }
        }
    }

    /// Converts a policy's [`DelayExplanation`] into a concrete [`Blame`]:
    /// the *oldest* slot in the blocking mask is the one whose resolution
    /// the block is actually waiting on. Control slots carry their own pc;
    /// a load slot's pc comes from its live ROB entry.
    fn blame_of(&self, expl: &DelayExplanation) -> Blame {
        let mut oldest: Option<(Seq, u16)> = None;
        for slot in expl.blocking.iter() {
            let seq = self.slots.seq_of(slot);
            if oldest.is_none_or(|(s, _)| seq < s) {
                oldest = Some((seq, slot));
            }
        }
        let blamed = oldest.map(|(seq, slot)| {
            if self.slots.live_load.contains(slot) {
                let pc = self.rob_index(seq).map_or(0, |i| self.rob[i].pc);
                BlamedSlot { kind: BlamedKind::Load, seq, pc }
            } else {
                let kind = if self.slots.indirect.contains(slot) {
                    BlamedKind::Indirect
                } else {
                    BlamedKind::Branch
                };
                BlamedSlot { kind, seq, pc: self.slots.pc_of(slot) }
            }
        });
        Blame { rule: expl.rule, blamed }
    }

    /// Memory-ordering verdict for a load at ROB index `idx`.
    fn lsq_check(&self, idx: usize, addr: u64, width: levioso_isa::MemWidth) -> LsqVerdict {
        let lo = addr;
        let hi = addr.wrapping_add(width.bytes());
        let mut forward: Option<usize> = None;
        for j in 0..idx {
            let s = &self.rob[j];
            if !s.instr.is_store() {
                continue;
            }
            let Some(sa) = s.mem_addr else {
                return LsqVerdict::Blocked; // unknown older store address
            };
            let sw = match s.instr {
                Instr::Store { width, .. } => width.bytes(),
                _ => unreachable!(),
            };
            let s_hi = sa.wrapping_add(sw);
            let overlap = sa < hi && lo < s_hi;
            if !overlap {
                continue;
            }
            if sa == addr && sw == width.bytes() {
                forward = Some(j); // youngest exact match wins
            } else {
                // Partial overlap: wait for the store to drain at commit.
                return LsqVerdict::Blocked;
            }
        }
        match forward {
            Some(j) => {
                if self.rob[j].srcs[1].state.value().is_some() {
                    LsqVerdict::Forward(j)
                } else {
                    LsqVerdict::Blocked // data not yet available
                }
            }
            None => LsqVerdict::Memory,
        }
    }

    // ------------------------------------------------------------------
    // Dispatch (rename)
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.config.dispatch_width {
            let Some(f) = self.fetch_queue.front() else { break };
            if self.rob.len() >= self.config.rob_size || self.iq_count >= self.config.iq_size {
                break;
            }
            if f.instr.is_load() && self.lq_count >= self.config.lq_size {
                break;
            }
            if f.instr.is_store() && self.sq_count >= self.config.sq_size {
                break;
            }
            let f = self.fetch_queue.pop_front().expect("checked non-empty");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.stats.dispatched += 1;
            let rob_front_seq = self.rob.front().map(|e| e.seq);

            let mut e = DynInstr::new(seq, f.pc, f.instr);
            e.predicted_next = f.predicted_next;
            e.history_at_predict = f.history;
            e.checkpoint = f.checkpoint;
            e.fetch_stalled = f.stalls_fetch;

            // Conservative shadow: every unresolved older control instr.
            e.shadow = self.slots.unresolved;

            // Annotation instances: unresolved dynamic instances of the
            // statically annotated branches, plus every unresolved indirect
            // jump (hardware barrier rule).
            let ann = self.program.annotations.as_ref().map(|a| a.deps_of(f.pc as usize));
            e.ann_deps = match ann {
                Some(DepSet::Exact(static_deps)) => {
                    let mut m = self.slots.unresolved.and(&self.slots.indirect);
                    for b in self.slots.unresolved.and_not(&self.slots.indirect).iter() {
                        if static_deps.binary_search(&self.slots.pc_of(b)).is_ok() {
                            m.set(b);
                        }
                    }
                    m
                }
                Some(DepSet::AllOlder) | None => e.shadow,
            };
            e.lev_deps = e.ann_deps;

            // Rename sources; inherit Levioso deps + STT taint through the
            // register dataflow. (Taint inheritance keeps only live-load
            // roots: a dead root can never become active again, so the
            // policy verdicts are unchanged and slot bits never outlive
            // their reclamation barrier.)
            let mut inherit: [Option<Seq>; 2] = [None, None];
            for reg in f.instr.sources() {
                let oi = e.srcs.len();
                let state = if reg.is_zero() {
                    OpState::Ready(0)
                } else {
                    match self.rat[reg.index()] {
                        RatEntry::Value(v) => OpState::Ready(v),
                        RatEntry::Producer(p) => {
                            if let Some(pidx) = self.rob_index(p) {
                                let prod = &self.rob[pidx];
                                inherit[oi] = Some(p);
                                e.lev_deps.union_masked(&prod.lev_deps, &self.slots.unresolved);
                                e.taint_roots
                                    .union_masked(&prod.taint_roots, &self.slots.live_load);
                                if prod.instr.is_load() {
                                    e.taint_roots.set(prod.slot.expect("loads own a slot"));
                                }
                                match (prod.stage, prod.result) {
                                    (Stage::Done, Some(v)) => OpState::Ready(v),
                                    _ => OpState::Waiting(p),
                                }
                            } else {
                                // Producer left the ROB: its value is
                                // architectural.
                                OpState::Ready(self.arch_regs[reg.index()])
                            }
                        }
                    }
                };
                if let OpState::Waiting(p) = state {
                    // Link into the producer's wakeup chain.
                    let pidx = self.rob_index(p).expect("waiting producer is live");
                    e.wake_next[oi] = self.rob[pidx].wake_head;
                    self.rob[pidx].wake_head = Some((seq, oi as u8));
                }
                e.srcs.push(Operand { reg, state });
            }

            if let Some(rd) = f.instr.dest() {
                self.rat[rd.index()] = RatEntry::Producer(seq);
            }
            if e.is_spec_source() {
                e.slot =
                    Some(self.slots.alloc_ctrl(seq, f.pc, f.instr.is_indirect(), rob_front_seq));
            } else if f.instr.is_load() {
                e.slot = Some(self.slots.alloc_load(seq, e.shadow, rob_front_seq));
            }
            if e.is_serializer() {
                self.serializer_count += 1;
            }
            if f.instr.is_load() {
                self.lq_count += 1;
            }
            if f.instr.is_store() {
                self.sq_count += 1;
            }
            self.iq_count += 1;

            // Initial issue eligibility.
            let eligible =
                e.operands_ready() || (e.instr.is_store() && e.srcs[0].state.value().is_some());
            if eligible {
                self.ready.insert(seq);
            }

            if self.refsets.is_some() {
                let mut r = self.refsets.take().expect("checked");
                let view = SpecView { slots: &self.slots, rob: &self.rob };
                r.on_dispatch(&e, ann, &inherit, &self.slots, &view);
                self.refsets = Some(r);
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                t.on_dispatch(self.cycle, &e);
            }
            self.rob.push_back(e);
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if let Some((ready_at, pc)) = self.redirect {
            if self.cycle >= ready_at {
                self.fetch_pc = pc;
                self.redirect = None;
            } else {
                return;
            }
        }
        if self.fetch_stalled {
            return;
        }
        let cap = self.config.fetch_width * 2;
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= cap {
                break;
            }
            let pc = self.fetch_pc;
            let Some(&instr) = self.program.instrs.get(pc as usize) else { break };
            let mut fetched = Fetched {
                pc,
                instr,
                predicted_next: pc + 1,
                history: 0,
                checkpoint: None,
                stalls_fetch: false,
            };
            match instr {
                Instr::Branch { target, .. } => {
                    fetched.history = self.predictor.history();
                    fetched.checkpoint = Some(self.predictor.checkpoint());
                    let taken = self.predictor.predict_branch(pc);
                    fetched.predicted_next = if taken { target } else { pc + 1 };
                }
                Instr::Jal { rd, target } => {
                    if !rd.is_zero() {
                        self.predictor.push_return(pc + 1);
                    }
                    fetched.predicted_next = target;
                }
                Instr::Jalr { rd, base, offset } => {
                    fetched.history = self.predictor.history();
                    fetched.checkpoint = Some(self.predictor.checkpoint());
                    let is_ret = rd.is_zero() && base == levioso_isa::reg::RA && offset == 0;
                    let prediction = if is_ret {
                        self.predictor.pop_return()
                    } else {
                        self.predictor.predict_indirect(pc)
                    };
                    match prediction {
                        Some(t) => fetched.predicted_next = t,
                        None => {
                            fetched.predicted_next = u32::MAX;
                            fetched.stalls_fetch = true;
                        }
                    }
                }
                _ => {}
            }
            self.stats.fetched += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.on_fetch(self.cycle, pc, &instr);
            }
            let next = fetched.predicted_next;
            let stall = fetched.stalls_fetch;
            self.fetch_queue.push_back(fetched);
            if stall {
                self.fetch_stalled = true;
                break;
            }
            self.fetch_pc = next;
        }
    }
}

enum LsqVerdict {
    /// Must wait (unknown older store address, partial overlap, or
    /// forwarding data not ready).
    Blocked,
    /// Forward from the store at this ROB index.
    Forward(usize),
    /// Safe to read from the memory system.
    Memory,
}

/// Re-extends a raw store value the way a load of the same width would.
fn extend_like_load(value: i64, width: levioso_isa::MemWidth, signed: bool) -> i64 {
    use levioso_isa::MemWidth::*;
    let bits = match width {
        B => 8,
        H => 16,
        W => 32,
        D => 64,
    };
    if bits == 64 {
        value
    } else if signed {
        (value << (64 - bits)) >> (64 - bits)
    } else {
        value & ((1i64 << bits) - 1)
    }
}
