//! Branch prediction: gshare direction predictor, indirect-target buffer,
//! and a return-address stack.
//!
//! Conditional-branch *targets* are static in lev64 and verified at decode,
//! so only the taken/not-taken direction is speculated for them. Indirect
//! jumps (`jalr`) speculate the full target: returns through the RAS,
//! everything else through a last-target buffer; with no prediction
//! available the front end stalls until the jump resolves.
//!
//! The predictor state that speculation corrupts (global history, RAS) is
//! checkpointed at every prediction and restored on squash.

use crate::config::PredictorConfig;
use std::sync::Arc;

/// Direction + target predictor with checkpoint/restore.
#[derive(Debug, Clone)]
pub struct Predictor {
    /// 2-bit saturating counters.
    counters: Vec<u8>,
    history_mask: u64,
    /// Speculative global history (youngest outcome in bit 0).
    history: u64,
    /// Indirect-target buffer: direct-mapped `pc -> last target`.
    itb: Vec<Option<(u32, u32)>>,
    itb_mask: usize,
    /// Return-address stack.
    ras: Vec<u32>,
    ras_limit: usize,
    /// Cached shared snapshot of `ras`, invalidated on every RAS mutation,
    /// so checkpointing between mutations is a reference bump rather than a
    /// fresh allocation per predicted branch.
    ras_snapshot: Option<Arc<[u32]>>,
}

/// Snapshot of the speculative predictor state taken at a prediction point.
///
/// The RAS image is shared (`Arc`): every checkpoint taken between two RAS
/// mutations reuses one allocation, and cloning a checkpoint into the ROB
/// is two words plus a reference bump.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    history: u64,
    ras: Arc<[u32]>,
}

impl Predictor {
    /// Builds a predictor from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `btb_entries` is not a power of two.
    pub fn new(config: &PredictorConfig) -> Self {
        assert!(config.btb_entries.is_power_of_two(), "BTB entries must be a power of two");
        Predictor {
            counters: vec![1u8; 1 << config.gshare_history_bits], // weakly not-taken
            history_mask: (1u64 << config.gshare_history_bits) - 1,
            history: 0,
            itb: vec![None; config.btb_entries],
            itb_mask: config.btb_entries - 1,
            ras: Vec::new(),
            ras_limit: config.ras_entries,
            ras_snapshot: None,
        }
    }

    #[inline]
    fn counter_index(&self, pc: u32) -> usize {
        ((pc as u64 ^ self.history) & self.history_mask) as usize
    }

    /// Snapshot the speculative state (history + RAS) for later repair.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let ras = self.ras_snapshot.get_or_insert_with(|| Arc::from(self.ras.as_slice())).clone();
        Checkpoint { history: self.history, ras }
    }

    /// Restores a snapshot taken at the (now mispredicted) branch.
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.history = cp.history;
        self.ras.clear();
        self.ras.extend_from_slice(&cp.ras);
        // The restored image is exactly the snapshot; reuse it.
        self.ras_snapshot = Some(cp.ras.clone());
    }

    /// Predicts the direction of the conditional branch at `pc` and
    /// speculatively updates history.
    pub fn predict_branch(&mut self, pc: u32) -> bool {
        let taken = self.counters[self.counter_index(pc)] >= 2;
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        taken
    }

    /// Trains the direction predictor with the actual outcome. `history` is
    /// the value captured in the branch's [`Checkpoint`] (the history the
    /// prediction was made with).
    pub fn train_branch(&mut self, pc: u32, history_at_predict: u64, taken: bool) {
        let idx = ((pc as u64 ^ history_at_predict) & self.history_mask) as usize;
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Fixes the speculative history after a direction misprediction: call
    /// [`Predictor::restore`] first, then this with the actual outcome.
    pub fn update_history(&mut self, taken: bool) {
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
    }

    /// Records a call's return address on the RAS.
    pub fn push_return(&mut self, return_pc: u32) {
        self.ras_snapshot = None;
        if self.ras.len() == self.ras_limit {
            self.ras.remove(0);
        }
        self.ras.push(return_pc);
    }

    /// Predicts a return target by popping the RAS.
    pub fn pop_return(&mut self) -> Option<u32> {
        self.ras_snapshot = None;
        self.ras.pop()
    }

    /// Predicts an indirect (non-return) jump target from the last-target
    /// buffer.
    pub fn predict_indirect(&self, pc: u32) -> Option<u32> {
        let slot = self.itb[pc as usize & self.itb_mask];
        slot.and_then(|(tag, target)| (tag == pc).then_some(target))
    }

    /// Trains the indirect-target buffer with an observed target.
    pub fn train_indirect(&mut self, pc: u32, target: u32) {
        self.itb[pc as usize & self.itb_mask] = Some((pc, target));
    }

    /// Current speculative history (captured into checkpoints by the core).
    pub fn history(&self) -> u64 {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Predictor {
        Predictor::new(&PredictorConfig { gshare_history_bits: 8, btb_entries: 16, ras_entries: 4 })
    }

    #[test]
    fn learns_an_always_taken_branch() {
        let mut pr = p();
        let mut correct_late = 0;
        for i in 0..100 {
            let h = pr.history();
            let pred = pr.predict_branch(42);
            if pred {
                if i >= 50 {
                    correct_late += 1;
                }
            } else {
                // Mispredict: repair speculative history like the core.
                let cp = Checkpoint { history: h, ras: Arc::from([]) };
                pr.restore(&cp);
                pr.update_history(true);
            }
            pr.train_branch(42, h, true);
        }
        assert!(correct_late >= 49, "always-taken should be mastered, got {correct_late}/50");
    }

    #[test]
    fn learns_alternating_pattern_with_history() {
        let mut pr = p();
        // Alternating T/N branch: gshare should learn it via history.
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..200 {
            outcome = !outcome;
            let h = pr.history();
            let pred = pr.predict_branch(7);
            if pred == outcome && i >= 100 {
                correct += 1;
            }
            if pred != outcome {
                // Mispredict: repair history like the core does.
                let cp = Checkpoint { history: h, ras: Arc::from([]) };
                pr.restore(&cp);
                pr.update_history(outcome);
            }
            pr.train_branch(7, h, outcome);
        }
        assert!(correct >= 95, "gshare should master the alternation, got {correct}/100");
    }

    #[test]
    fn ras_predicts_matched_returns() {
        let mut pr = p();
        pr.push_return(10);
        pr.push_return(20);
        assert_eq!(pr.pop_return(), Some(20));
        assert_eq!(pr.pop_return(), Some(10));
        assert_eq!(pr.pop_return(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut pr = p();
        for i in 0..6 {
            pr.push_return(i);
        }
        assert_eq!(pr.pop_return(), Some(5));
        assert_eq!(pr.pop_return(), Some(4));
        assert_eq!(pr.pop_return(), Some(3));
        assert_eq!(pr.pop_return(), Some(2));
        assert_eq!(pr.pop_return(), None, "0 and 1 were pushed out");
    }

    #[test]
    fn checkpoint_restores_history_and_ras() {
        let mut pr = p();
        pr.push_return(5);
        let cp = pr.checkpoint();
        pr.predict_branch(1);
        pr.predict_branch(2);
        pr.pop_return();
        pr.restore(&cp);
        assert_eq!(pr.history(), cp.history);
        assert_eq!(pr.pop_return(), Some(5));
    }

    #[test]
    fn indirect_buffer_tags() {
        let mut pr = p();
        assert_eq!(pr.predict_indirect(3), None);
        pr.train_indirect(3, 99);
        assert_eq!(pr.predict_indirect(3), Some(99));
        // Aliasing entry with a different tag must not hit.
        assert_eq!(pr.predict_indirect(3 + 16), None);
        pr.train_indirect(3 + 16, 7);
        assert_eq!(pr.predict_indirect(3), None, "evicted by alias");
    }
}
