//! Set-associative caches and the two-level hierarchy.
//!
//! Cache state is the side channel under study: a load executed on a
//! mis-speculated path fills real lines that remain after the squash, and
//! the attack receivers in `levioso-attacks` measure exactly this state via
//! timed loads. Latencies are modelled; data contents are not (data comes
//! from the simulator's functional memory).

use crate::config::{CacheConfig, HierarchyConfig};

/// One set-associative, true-LRU cache level (tags only).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<Line>>,
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    hit_latency: u64,
    stats: CacheStats,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    /// LRU stamp: higher = more recently used.
    stamp: u64,
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses (hits plus misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        crate::stats::ratio(self.misses, self.accesses())
    }

    /// Hit ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        crate::stats::ratio(self.hits, self.accesses())
    }
}

impl SetAssocCache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if line size or set count is not a power of two, or if the
    /// configuration is inconsistent.
    pub fn new(config: &CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        let n_lines = config.size_bytes / config.line_bytes;
        assert!(
            n_lines >= config.assoc && n_lines.is_multiple_of(config.assoc),
            "bad cache geometry"
        );
        let n_sets = n_lines / config.assoc;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        SetAssocCache {
            sets: vec![Vec::with_capacity(config.assoc); n_sets],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            assoc: config.assoc,
            hit_latency: config.hit_latency,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    /// Hit latency of this level.
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }

    /// Access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `addr`'s line is present (no state change, no stats).
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|l| l.tag == tag)
    }

    /// Accesses `addr`: returns `true` on hit. On miss the line is filled
    /// (evicting LRU if needed); on hit the LRU stamp is refreshed.
    pub fn access(&mut self, addr: u64, now: u64) -> bool {
        let (set, tag) = self.index(addr);
        let set_lines = &mut self.sets[set];
        if let Some(l) = set_lines.iter_mut().find(|l| l.tag == tag) {
            l.stamp = now;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if set_lines.len() < self.assoc {
            set_lines.push(Line { tag, stamp: now });
        } else {
            let victim = set_lines.iter_mut().min_by_key(|l| l.stamp).expect("non-empty set");
            *victim = Line { tag, stamp: now };
        }
        false
    }

    /// Accesses `addr` without disturbing *any* state on a hit (no LRU
    /// update) and without filling on a miss. Returns `true` on hit. Used
    /// by the Delay-on-Miss policy's "invisible" speculative hits. Counts
    /// toward stats.
    pub fn access_invisible(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let hit = self.sets[set].iter().any(|l| l.tag == tag);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Removes `addr`'s line if present (the `flush` instruction).
    pub fn flush_line(&mut self, addr: u64) {
        let (set, tag) = self.index(addr);
        self.sets[set].retain(|l| l.tag != tag);
    }

    /// Empties the cache (between measurement rounds).
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// L1D + L2 + DRAM hierarchy with inclusive fills.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Level-1 data cache.
    pub l1d: SetAssocCache,
    /// Unified level-2 cache.
    pub l2: SetAssocCache,
    dram_latency: u64,
}

impl Hierarchy {
    /// Builds the hierarchy from its configuration.
    pub fn new(config: &HierarchyConfig) -> Self {
        Hierarchy {
            l1d: SetAssocCache::new(&config.l1d),
            l2: SetAssocCache::new(&config.l2),
            dram_latency: config.dram_latency,
        }
    }

    /// A normal (demand) access: returns total latency and fills both
    /// levels on the way.
    pub fn access(&mut self, addr: u64, now: u64) -> u64 {
        if self.l1d.access(addr, now) {
            return self.l1d.hit_latency();
        }
        if self.l2.access(addr, now) {
            return self.l1d.hit_latency() + self.l2.hit_latency();
        }
        self.l1d.hit_latency() + self.l2.hit_latency() + self.dram_latency
    }

    /// Delay-on-Miss style access: hits in L1 are served without updating
    /// replacement state; anything else reports a miss without filling.
    /// Returns `Some(latency)` on L1 hit, `None` otherwise.
    pub fn access_if_l1_hit(&mut self, addr: u64) -> Option<u64> {
        self.l1d.access_invisible(addr).then(|| self.l1d.hit_latency())
    }

    /// The latency an access *would* observe, with no state change and no
    /// stats — the measurement primitive used by side-channel receivers and
    /// tests.
    pub fn probe_latency(&self, addr: u64) -> u64 {
        if self.l1d.contains(addr) {
            self.l1d.hit_latency()
        } else if self.l2.contains(addr) {
            self.l1d.hit_latency() + self.l2.hit_latency()
        } else {
            self.l1d.hit_latency() + self.l2.hit_latency() + self.dram_latency
        }
    }

    /// Whether `addr` is present at any level.
    pub fn contains(&self, addr: u64) -> bool {
        self.l1d.contains(addr) || self.l2.contains(addr)
    }

    /// Evicts `addr`'s line from every level (the `flush` instruction).
    pub fn flush_line(&mut self, addr: u64) {
        self.l1d.flush_line(addr);
        self.l2.flush_line(addr);
    }

    /// Empties both levels.
    pub fn clear(&mut self) {
        self.l1d.clear();
        self.l2.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B lines = 512 B
        SetAssocCache::new(&CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            hit_latency: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000, 0));
        assert!(c.access(0x1000, 1));
        assert!(c.access(0x1030, 2), "same line");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn stats_ratios_are_complementary_and_zero_safe() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() + s.miss_ratio() - 1.0).abs() < 1e-12);
        let empty = CacheStats::default();
        assert_eq!(empty.hit_ratio(), 0.0);
        assert_eq!(empty.miss_ratio(), 0.0);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 sets * 64 B).
        let a = 0x0000;
        let b = 0x0400;
        let d = 0x0800;
        c.access(a, 0);
        c.access(b, 1);
        c.access(a, 2); // refresh a
        c.access(d, 3); // evicts b (LRU)
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn invisible_access_does_not_disturb_lru() {
        let mut c = small();
        let a = 0x0000;
        let b = 0x0400;
        let d = 0x0800;
        c.access(a, 0);
        c.access(b, 1);
        assert!(c.access_invisible(a), "hit");
        // A normal access would have made `a` MRU; invisible must not, so
        // the next fill evicts `a` (oldest stamp).
        c.access(d, 2);
        assert!(!c.contains(a));
        assert!(c.contains(b));
    }

    #[test]
    fn invisible_miss_does_not_fill() {
        let mut c = small();
        assert!(!c.access_invisible(0x1000));
        assert!(!c.contains(0x1000));
    }

    #[test]
    fn flush_removes_line() {
        let mut c = small();
        c.access(0x2000, 0);
        c.flush_line(0x2010);
        assert!(!c.contains(0x2000));
    }

    #[test]
    fn hierarchy_latencies() {
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        let addr = 0x4_0000;
        assert_eq!(h.access(addr, 0), 4 + 14 + 120, "cold miss goes to DRAM");
        assert_eq!(h.access(addr, 1), 4, "now an L1 hit");
        h.l1d.flush_line(addr);
        assert_eq!(h.access(addr, 2), 4 + 14, "L2 hit after L1-only flush");
        h.flush_line(addr);
        assert_eq!(h.probe_latency(addr), 138);
        assert!(!h.contains(addr));
    }

    #[test]
    fn probe_latency_is_pure() {
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        h.access(0x8000, 0);
        let s1 = h.l1d.stats();
        assert_eq!(h.probe_latency(0x8000), 4);
        assert_eq!(h.l1d.stats(), s1, "probe does not count or fill");
    }

    #[test]
    fn dom_access_hits_only() {
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        assert_eq!(h.access_if_l1_hit(0x9000), None);
        assert!(!h.contains(0x9000), "no fill on DoM miss");
        h.access(0x9000, 0);
        assert_eq!(h.access_if_l1_hit(0x9000), Some(4));
    }
}
