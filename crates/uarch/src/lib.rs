//! # levioso-uarch — cycle-level out-of-order core simulator
//!
//! The hardware substrate of the [Levioso (DAC '24)] reproduction: an
//! explicit out-of-order pipeline (fetch → rename → issue → execute →
//! commit) with gshare + RAS + indirect-target branch prediction, a
//! two-level cache hierarchy whose state persists across squashes (the
//! Spectre side channel), store-to-load forwarding, and full wrong-path
//! execution.
//!
//! Secure-speculation schemes plug in through [`SpeculationPolicy`]: the
//! core computes, for every in-flight instruction, the conservative
//! speculation shadow, the Levioso true-dependency set (static annotation
//! instances closed over dynamic dataflow), and STT-style taint roots; a
//! policy is a set of pure predicates over that state. All schemes in
//! `levioso-core` are compared on this identical dynamic state.
//!
//! [Levioso (DAC '24)]: https://doi.org/10.1145/3649329.3655632

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
mod core;
pub mod dyninstr;
pub mod policy;
pub mod predictor;
mod refsets;
pub mod specmask;
pub mod stats;
pub mod trace;

pub use crate::core::{SimError, Simulator};

/// Semantic revision of the simulator core and its policy surface.
///
/// **Bump this whenever a change can alter simulated results** — pipeline
/// timing, cache/predictor behavior, policy predicates, stats accounting,
/// workload generation feeding the sweeps. The constant namespaces the
/// on-disk sweep cache (`target/sweep-cache/<fingerprint>/`) and is
/// recorded in `results/golden/core_rev.json` at bless time: re-blessing
/// changed golden content without bumping this is refused by the bless
/// guard and caught by the manifest consistency test, so a stale cached
/// cell can never masquerade as a current result.
///
/// Pure refactors and bench/CI plumbing do **not** need a bump — if the
/// golden content doesn't move, the old cells are still valid. Anything
/// that moves the blessed golden bytes (changed numbers, or a changed
/// figure definition) does.
pub const CORE_REV: u32 = 1;

/// The sim-core fingerprint derived from [`CORE_REV`]: the namespace
/// directory for cached sweep cells and the revision string recorded in
/// the golden manifest.
pub fn core_fingerprint() -> String {
    format!("core-v{CORE_REV}")
}
pub use cache::{CacheStats, Hierarchy, SetAssocCache};
pub use config::{CacheConfig, CoreConfig, HierarchyConfig, PredictorConfig};
pub use dyninstr::{DynInstr, OpState, Operand, Operands, Seq, Stage};
pub use policy::{Gate, LoadMode, SpecView, SpeculationPolicy, UnsafeBaseline};
pub use predictor::Predictor;
pub use specmask::SpecMask;
pub use stats::SimStats;
pub use trace::{Blame, BlamedKind, BlamedSlot, DelayExplanation, NullSink, Tee, TraceSink};
