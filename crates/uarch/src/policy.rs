//! The secure-speculation policy interface.
//!
//! The simulator computes identical speculation-tracking state for every
//! scheme (see [`DynInstr`]); a policy is a set of pure predicates over
//! that state deciding, each cycle, whether an instruction may begin
//! execution and how a load may touch the cache. Policies therefore differ
//! *only* in what they restrict — exactly the comparison the paper makes.
//!
//! Dependency sets are [`SpecMask`] bitmasks over in-flight slots (see
//! [`crate::specmask`]), so every predicate here is a handful of word-wise
//! ANDs rather than a per-element map probe.
//!
//! Concrete policies (the Levioso scheme and all baselines) live in
//! `levioso-core`; this crate only defines the contract plus the trivial
//! [`UnsafeBaseline`].

use crate::dyninstr::{DynInstr, Seq};
use crate::specmask::{SlotTable, SpecMask};
use crate::trace::DelayExplanation;
use std::collections::VecDeque;

/// Verdict for an execution attempt this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// May proceed.
    Allow,
    /// Must wait; the core retries next cycle.
    Delay,
}

/// How a permitted load may access the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Normal demand access: fills and updates replacement state.
    Normal,
    /// Delay-on-Miss style: serve L1 hits without updating replacement
    /// state; on a miss the load waits instead of filling.
    HitOnly,
}

/// Read-only view of the core's speculation state, passed to policies.
#[derive(Debug)]
pub struct SpecView<'a> {
    pub(crate) slots: &'a SlotTable,
    pub(crate) rob: &'a VecDeque<DynInstr>,
}

impl<'a> SpecView<'a> {
    /// Whether any control instruction in `deps` is still unresolved (it
    /// has not yet executed). Resolved or squashed dependencies drop out.
    pub fn any_unresolved(&self, deps: &SpecMask) -> bool {
        deps.intersects(&self.slots.unresolved)
    }

    /// Whether any control instruction in `deps` has not yet *committed*
    /// (commit-release schemes). True while the dependency is still in the
    /// ROB.
    pub fn any_uncommitted(&self, deps: &SpecMask) -> bool {
        deps.intersects(&self.slots.live_ctrl)
    }

    /// STT taint liveness: a taint root (a load) is *active* while it is
    /// still in flight and itself speculative (some older control
    /// instruction in its shadow is unresolved) — or while it has not even
    /// executed yet (its value, once produced, will be speculative).
    /// Committed or squashed roots are inactive.
    pub fn any_taint_active(&self, roots: &SpecMask) -> bool {
        let live = roots.and(&self.slots.live_load);
        if live.is_empty() {
            return false;
        }
        // A live root that has not finished executing is active.
        if !live.and_not(&self.slots.load_done).is_empty() {
            return true;
        }
        // A done root stays active while its own shadow is unresolved.
        live.iter().any(|slot| self.slots.shadow_of(slot).intersects(&self.slots.unresolved))
    }

    /// The subset of `deps` that is still unresolved — the mask behind
    /// [`SpecView::any_unresolved`], for blame reporting.
    pub fn unresolved_of(&self, deps: &SpecMask) -> SpecMask {
        deps.and(&self.slots.unresolved)
    }

    /// The subset of `deps` that has not yet committed — the mask behind
    /// [`SpecView::any_uncommitted`], for blame reporting.
    pub fn uncommitted_of(&self, deps: &SpecMask) -> SpecMask {
        deps.and(&self.slots.live_ctrl)
    }

    /// The subset of `roots` that is currently taint-active — the mask
    /// behind [`SpecView::any_taint_active`], for blame reporting.
    pub fn active_taints_of(&self, roots: &SpecMask) -> SpecMask {
        let live = roots.and(&self.slots.live_load);
        let mut out = SpecMask::EMPTY;
        for slot in live.iter() {
            if !self.slots.load_done.contains(slot)
                || self.slots.shadow_of(slot).intersects(&self.slots.unresolved)
            {
                out.set(slot);
            }
        }
        out
    }

    /// The ROB entry for `seq`, if still in flight. Sequence numbers are
    /// ascending but not contiguous in the ROB (squashes leave gaps).
    pub fn entry(&self, seq: Seq) -> Option<&DynInstr> {
        let idx = self.rob.binary_search_by(|e| e.seq.cmp(&seq)).ok()?;
        Some(&self.rob[idx])
    }
}

/// A secure-speculation scheme: pure gating predicates over per-instruction
/// speculation state.
pub trait SpeculationPolicy: std::fmt::Debug {
    /// Short scheme name used in reports (e.g. `"levioso"`).
    fn name(&self) -> &'static str;

    /// Whether the scheme requires compiler annotations on the program.
    fn needs_annotations(&self) -> bool {
        false
    }

    /// Gate applied to **every** instruction before it may begin execution.
    fn may_execute(&self, _instr: &DynInstr, _view: &SpecView<'_>) -> Gate {
        Gate::Allow
    }

    /// Additional gate applied to *transmit* instructions (loads and
    /// flushes) — the instructions whose execution perturbs
    /// microarchitectural state as a function of their operands.
    fn may_transmit(&self, _instr: &DynInstr, _view: &SpecView<'_>) -> Gate {
        Gate::Allow
    }

    /// How a transmit-permitted load may access the cache.
    fn load_mode(&self, _instr: &DynInstr, _view: &SpecView<'_>) -> LoadMode {
        LoadMode::Normal
    }

    /// Explains a `Delay` verdict [`SpeculationPolicy::may_execute`] just
    /// issued for `instr` (see [`crate::trace`]). Only called by the core
    /// when a trace sink is attached, in the same cycle as the verdict and
    /// before any state changes, so the returned mask reflects exactly
    /// the state the verdict was computed from. Policies overriding
    /// `may_execute` with a `Delay` path should override this to name
    /// their rule; the default reports the conservative shadow.
    fn explain_execute_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "policy:execute-gate",
            blocking: view.unresolved_of(&instr.shadow),
        }
    }

    /// Explains a `Delay` verdict from [`SpeculationPolicy::may_transmit`]
    /// (same contract as [`SpeculationPolicy::explain_execute_delay`]).
    fn explain_transmit_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "policy:transmit-gate",
            blocking: view.unresolved_of(&instr.shadow),
        }
    }

    /// Explains a blocked cycle caused by a `LoadMode::HitOnly` load
    /// missing in the L1 (same contract as
    /// [`SpeculationPolicy::explain_execute_delay`]). The default rule
    /// fits any hit-only scheme; the blocking set is the unresolved
    /// shadow that put the load under speculation.
    fn explain_load_mode_delay(&self, instr: &DynInstr, view: &SpecView<'_>) -> DelayExplanation {
        DelayExplanation {
            rule: "policy:miss-under-speculation",
            blocking: view.unresolved_of(&instr.shadow),
        }
    }
}

/// The unprotected out-of-order baseline: everything allowed.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnsafeBaseline;

impl UnsafeBaseline {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        UnsafeBaseline
    }
}

impl SpeculationPolicy for UnsafeBaseline {
    fn name(&self) -> &'static str {
        "unsafe"
    }
}
