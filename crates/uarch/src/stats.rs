//! Simulation statistics.

use crate::cache::CacheStats;

/// Counters collected over one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions committed (includes the final `halt`).
    pub committed: u64,
    /// Loads committed.
    pub committed_loads: u64,
    /// Stores committed.
    pub committed_stores: u64,
    /// Conditional branches committed.
    pub committed_branches: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions dispatched into the ROB (including wrong-path).
    pub dispatched: u64,
    /// Instructions squashed by mispredictions.
    pub squashed: u64,
    /// Control mispredictions (direction or target).
    pub mispredicts: u64,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
    /// Total cycles instructions spent blocked *only* by the active
    /// defense policy (summed over committed instructions).
    pub policy_delay_cycles: u64,
    /// Committed instructions that were delayed by the policy at least
    /// once.
    pub policy_delayed_instrs: u64,
    /// F1 (conservative view): committed instructions whose operands first
    /// became ready while ≥1 older control instruction was unresolved.
    pub ready_while_shadowed: u64,
    /// F1 (true-dependency view): committed instructions whose operands
    /// first became ready while ≥1 of their *true* (Levioso) dependencies
    /// was unresolved.
    pub ready_while_true_dep: u64,
    /// Same two counters restricted to loads.
    pub loads_ready_while_shadowed: u64,
    /// See [`SimStats::loads_ready_while_shadowed`].
    pub loads_ready_while_true_dep: u64,
    /// F1 headroom, conservative view: total cycles between each committed
    /// instruction's operand readiness and the resolution of its *last*
    /// older in-flight control instruction (what a hardware-only
    /// comprehensive scheme would wait).
    pub shadow_wait_cycles: u64,
    /// F1 headroom, true-dependency view: same, but only until the last
    /// *true* (Levioso) dependency resolves.
    pub true_wait_cycles: u64,
    /// The two wait counters restricted to committed loads.
    pub loads_shadow_wait_cycles: u64,
    /// See [`SimStats::loads_shadow_wait_cycles`].
    pub loads_true_wait_cycles: u64,
    /// Cache accesses performed by instructions that were later squashed —
    /// the transient side effects an attacker can observe. A scheme that
    /// claims comprehensive secure speculation must keep this at **zero**
    /// (invisible Delay-on-Miss hits do not count: they change no state).
    pub transient_fills: u64,
}

/// `num / den` as `f64`, defined as 0 when the denominator is 0 — the
/// convention every derived metric here uses for empty runs.
pub(crate) fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        ratio(self.committed, self.cycles)
    }

    /// Transient cache fills per kilo-instruction (committed) — the
    /// side-channel exposure metric (F6).
    pub fn transient_fills_pki(&self) -> f64 {
        ratio(self.transient_fills * 1000, self.committed)
    }

    /// Mispredictions per kilo-instruction (committed).
    pub fn mpki(&self) -> f64 {
        ratio(self.mispredicts * 1000, self.committed)
    }

    /// Mean conservative wait per committed instruction (F1).
    pub fn shadow_wait_per_instr(&self) -> f64 {
        ratio(self.shadow_wait_cycles, self.committed)
    }

    /// Mean true-dependency wait per committed instruction (F1).
    pub fn true_wait_per_instr(&self) -> f64 {
        ratio(self.true_wait_cycles, self.committed)
    }

    /// Fraction of committed instructions under the conservative
    /// speculation shadow at readiness (F1).
    pub fn shadowed_fraction(&self) -> f64 {
        ratio(self.ready_while_shadowed, self.committed)
    }

    /// Fraction of committed instructions with an unresolved *true*
    /// dependency at readiness (F1).
    pub fn true_dep_fraction(&self) -> f64 {
        ratio(self.ready_while_true_dep, self.committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            mispredicts: 5,
            ready_while_shadowed: 200,
            ready_while_true_dep: 50,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mpki() - 20.0).abs() < 1e-12);
        assert!((s.shadowed_fraction() - 0.8).abs() < 1e-12);
        assert!((s.true_dep_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.shadowed_fraction(), 0.0);
    }
}
