//! Core and memory-hierarchy configuration (the paper's Table 1).

/// Out-of-order core configuration.
///
/// The default mirrors the class of gem5 configuration the paper evaluates
/// on: an aggressive 8-wide core with a 224-entry reorder buffer and a
/// three-level memory hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub dispatch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries (instructions dispatched but not yet issued).
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue entries.
    pub sq_size: usize,
    /// Simple-ALU count (1-cycle ops).
    pub alu_count: usize,
    /// Multiplier count.
    pub mul_count: usize,
    /// Divider count.
    pub div_count: usize,
    /// Miss-status-holding registers: maximum outstanding demand misses.
    pub mshr_count: usize,
    /// Load ports (loads issued per cycle).
    pub load_ports: usize,
    /// Store ports (store address/data computations per cycle).
    pub store_ports: usize,
    /// Multiply latency in cycles.
    pub mul_latency: u64,
    /// Divide latency in cycles.
    pub div_latency: u64,
    /// Front-end refill penalty after a control misprediction, in cycles.
    pub redirect_penalty: u64,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// Cache hierarchy configuration.
    pub hierarchy: HierarchyConfig,
    /// Hard safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl CoreConfig {
    /// The default (Table 1) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the configuration with a different reorder-buffer size,
    /// scaling the issue/load/store queues proportionally (used by the ROB
    /// sensitivity sweep, F4).
    pub fn with_rob_size(mut self, rob: usize) -> Self {
        let scale = rob as f64 / 224.0;
        self.rob_size = rob;
        self.iq_size = ((96.0 * scale) as usize).max(8);
        self.lq_size = ((72.0 * scale) as usize).max(8);
        self.sq_size = ((56.0 * scale) as usize).max(8);
        self
    }

    /// Returns the configuration with a different DRAM latency (used by the
    /// memory-latency sensitivity sweep, F5).
    pub fn with_dram_latency(mut self, latency: u64) -> Self {
        self.hierarchy.dram_latency = latency;
        self
    }

    /// Renders the configuration as the rows of the paper's Table 1.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Pipeline width".into(), format!("{}-wide fetch/commit", self.fetch_width)),
            (
                "ROB / IQ / LQ / SQ".into(),
                format!(
                    "{} / {} / {} / {}",
                    self.rob_size, self.iq_size, self.lq_size, self.sq_size
                ),
            ),
            (
                "Functional units".into(),
                format!(
                    "{} ALU (1 cy), {} MUL ({} cy), {} DIV ({} cy), {} LD + {} ST ports, {} MSHRs",
                    self.alu_count,
                    self.mul_count,
                    self.mul_latency,
                    self.div_count,
                    self.div_latency,
                    self.load_ports,
                    self.store_ports,
                    self.mshr_count
                ),
            ),
            (
                "Branch predictor".into(),
                format!(
                    "gshare {}-bit history, {}-entry BTB, {}-entry RAS, {}-cycle redirect",
                    self.predictor.gshare_history_bits,
                    self.predictor.btb_entries,
                    self.predictor.ras_entries,
                    self.redirect_penalty
                ),
            ),
            (
                "L1D".into(),
                format!(
                    "{} KiB, {}-way, {} B lines, {} cy",
                    self.hierarchy.l1d.size_bytes / 1024,
                    self.hierarchy.l1d.assoc,
                    self.hierarchy.l1d.line_bytes,
                    self.hierarchy.l1d.hit_latency
                ),
            ),
            (
                "L2".into(),
                format!(
                    "{} KiB, {}-way, {} B lines, {} cy",
                    self.hierarchy.l2.size_bytes / 1024,
                    self.hierarchy.l2.assoc,
                    self.hierarchy.l2.line_bytes,
                    self.hierarchy.l2.hit_latency
                ),
            ),
            ("DRAM".into(), format!("{} cy", self.hierarchy.dram_latency)),
        ]
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_size: 224,
            iq_size: 96,
            lq_size: 72,
            sq_size: 56,
            alu_count: 6,
            mul_count: 2,
            div_count: 1,
            mshr_count: 16,
            load_ports: 2,
            store_ports: 1,
            mul_latency: 3,
            div_latency: 20,
            redirect_penalty: 15,
            predictor: PredictorConfig::default(),
            hierarchy: HierarchyConfig::default(),
            max_cycles: 500_000_000,
        }
    }
}

/// Branch predictor configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Bits of global history (gshare table has `2^bits` counters).
    pub gshare_history_bits: u32,
    /// Entries in the indirect-target buffer (power of two).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig { gshare_history_bits: 14, btb_entries: 4096, ras_entries: 32 }
    }
}

/// One cache level's parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

/// Cache hierarchy parameters (L1D + unified L2 + flat DRAM latency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Level-1 data cache.
    pub l1d: CacheConfig,
    /// Unified level-2 cache.
    pub l2: CacheConfig,
    /// Latency of an access that misses everywhere, in cycles.
    pub dram_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1d: CacheConfig { size_bytes: 32 * 1024, assoc: 8, line_bytes: 64, hit_latency: 4 },
            l2: CacheConfig { size_bytes: 1024 * 1024, assoc: 16, line_bytes: 64, hit_latency: 14 },
            dram_latency: 120,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_size, 224);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.hierarchy.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.table_rows().len(), 7);
    }

    #[test]
    fn rob_sweep_scales_queues() {
        let c = CoreConfig::default().with_rob_size(448);
        assert_eq!(c.rob_size, 448);
        assert_eq!(c.iq_size, 192);
        let tiny = CoreConfig::default().with_rob_size(16);
        assert!(tiny.iq_size >= 8);
    }

    #[test]
    fn dram_sweep() {
        let c = CoreConfig::default().with_dram_latency(300);
        assert_eq!(c.hierarchy.dram_latency, 300);
    }
}
