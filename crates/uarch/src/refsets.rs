//! Differential-checking oracle: the original `Vec<Seq>`/`BTreeMap`
//! implementation of the speculation-tracking sets, run side-by-side with
//! the [`crate::specmask`] bitmask path.
//!
//! Enabled by [`crate::Simulator::enable_reference_checking`] (tests only;
//! the hooks are no-ops when disabled). At every dispatch, store-to-load
//! forward, and commit the oracle recomputes what the scan-based
//! implementation would have produced and asserts the mask path agrees:
//!
//! * `shadow` and `ann_deps` must match the reference **exactly**;
//! * `lev_deps` may drop dependencies that had already *resolved* at a
//!   store-forwarding merge (their wait contribution moves to the
//!   `fwd_true_wait` scalar), so the mask set must be a subset of the
//!   reference with every dropped element resolved, and must agree exactly
//!   on the still-unresolved part — the part every policy predicate reads;
//! * `taint_roots` may drop roots that are no longer live loads (a dead
//!   root is permanently inactive), so the mask set must be a subset with
//!   every dropped element dead, and the STT activity *verdict* must agree;
//! * at commit, the F1 wait statistics (`shadow`/`true` wait cycles)
//!   computed from per-slot resolve cycles must equal the reference values
//!   computed from the unbounded seq-keyed map.

use crate::dyninstr::{DynInstr, Seq};
use crate::policy::SpecView;
use crate::specmask::SlotTable;
use levioso_isa::DepSet;
use std::collections::{BTreeMap, HashMap};

/// Reference (old-implementation) per-instruction sets.
#[derive(Debug, Clone)]
struct RefInstr {
    shadow: Vec<Seq>,
    lev_deps: Vec<Seq>,
    taint_roots: Vec<Seq>,
    is_load: bool,
    done: bool,
}

/// The oracle state: exactly the maps the scan-based simulator kept.
#[derive(Debug, Default)]
pub(crate) struct RefSets {
    /// Unresolved control instructions: seq → (pc, is_indirect).
    unresolved: BTreeMap<Seq, (u32, bool)>,
    /// Resolution cycles, never pruned (the unbounded map the slot table
    /// replaces — fine for an oracle that only lives in tests).
    resolve_cycle: HashMap<Seq, u64>,
    /// Reference sets for every in-flight instruction.
    instrs: BTreeMap<Seq, RefInstr>,
    /// Number of equivalence assertions evaluated.
    pub(crate) events_checked: u64,
}

/// Merges sorted `extra` into sorted `dst`, deduplicating (the old
/// implementation's set-union primitive).
fn merge_sorted(dst: &mut Vec<Seq>, extra: &[Seq]) {
    if extra.is_empty() {
        return;
    }
    dst.extend_from_slice(extra);
    dst.sort_unstable();
    dst.dedup();
}

impl RefSets {
    pub(crate) fn new() -> Self {
        RefSets::default()
    }

    /// Old STT root-activity predicate: a root is active while it is still
    /// in flight and either has not executed or is itself shadowed by an
    /// unresolved control instruction.
    fn taint_active(&self, root: Seq) -> bool {
        match self.instrs.get(&root) {
            Some(i) => !i.done || i.shadow.iter().any(|s| self.unresolved.contains_key(s)),
            None => false,
        }
    }

    fn assert_taint_equivalent(
        &self,
        what: &str,
        e: &DynInstr,
        ref_taint: &[Seq],
        slots: &SlotTable,
        view: &SpecView<'_>,
    ) {
        let mask_taint = slots.mask_seqs(&e.taint_roots);
        for s in &mask_taint {
            assert!(
                ref_taint.contains(s),
                "{what} seq={}: mask taint root {s} missing from reference {ref_taint:?}",
                e.seq
            );
        }
        for s in ref_taint {
            if !mask_taint.contains(s) {
                let live_load = self.instrs.get(s).is_some_and(|i| i.is_load);
                assert!(
                    !live_load,
                    "{what} seq={}: mask dropped taint root {s} which is still a live load",
                    e.seq
                );
            }
        }
        let ref_active = ref_taint.iter().any(|&r| self.taint_active(r));
        let mask_active = view.any_taint_active(&e.taint_roots);
        assert_eq!(
            ref_active, mask_active,
            "{what} seq={}: STT activity verdict diverged (ref {ref_taint:?}, mask {mask_taint:?})",
            e.seq
        );
    }

    fn assert_lev_equivalent(&self, what: &str, e: &DynInstr, ref_lev: &[Seq], slots: &SlotTable) {
        let mask_lev = slots.mask_seqs(&e.lev_deps);
        for s in &mask_lev {
            assert!(
                ref_lev.contains(s),
                "{what} seq={}: mask lev dep {s} missing from reference {ref_lev:?}",
                e.seq
            );
        }
        for s in ref_lev {
            let unresolved = self.unresolved.contains_key(s);
            if mask_lev.contains(s) {
                continue;
            }
            assert!(
                !unresolved,
                "{what} seq={}: mask dropped lev dep {s} which is still unresolved",
                e.seq
            );
            assert!(
                self.resolve_cycle.contains_key(s) || !self.instrs.contains_key(s),
                "{what} seq={}: dropped lev dep {s} neither resolved nor retired",
                e.seq
            );
        }
        // The policy-visible (unresolved) part must match exactly.
        let ref_hot: Vec<Seq> =
            ref_lev.iter().copied().filter(|s| self.unresolved.contains_key(s)).collect();
        let mask_hot: Vec<Seq> =
            mask_lev.iter().copied().filter(|s| self.unresolved.contains_key(s)).collect();
        assert_eq!(ref_hot, mask_hot, "{what} seq={}: unresolved lev deps diverged", e.seq);
    }

    /// Called after an instruction is renamed (its sets are final for
    /// dispatch). `ann` is the program's static annotation for this pc and
    /// `inherit` the producers each operand renamed through.
    pub(crate) fn on_dispatch(
        &mut self,
        e: &DynInstr,
        ann: Option<&DepSet>,
        inherit: &[Option<Seq>; 2],
        slots: &SlotTable,
        view: &SpecView<'_>,
    ) {
        // Recompute the sets the way the old implementation did.
        let shadow: Vec<Seq> = self.unresolved.keys().copied().collect();
        let ann_deps: Vec<Seq> = match ann {
            Some(DepSet::Exact(static_deps)) => self
                .unresolved
                .iter()
                .filter(|(_, &(pc, indirect))| indirect || static_deps.binary_search(&pc).is_ok())
                .map(|(&s, _)| s)
                .collect(),
            Some(DepSet::AllOlder) | None => shadow.clone(),
        };
        let mut lev_deps = ann_deps.clone();
        let mut taint_roots: Vec<Seq> = Vec::new();
        for p in inherit.iter().flatten() {
            let prod = self.instrs.get(p).expect("renamed producer is in flight");
            let lev: Vec<Seq> =
                prod.lev_deps.iter().copied().filter(|s| self.unresolved.contains_key(s)).collect();
            let prod_taint = prod.taint_roots.clone();
            let prod_is_load = prod.is_load;
            merge_sorted(&mut lev_deps, &lev);
            merge_sorted(&mut taint_roots, &prod_taint);
            if prod_is_load {
                merge_sorted(&mut taint_roots, &[*p]);
            }
        }

        assert_eq!(shadow, slots.mask_seqs(&e.shadow), "dispatch seq={}: shadow diverged", e.seq);
        assert_eq!(
            ann_deps,
            slots.mask_seqs(&e.ann_deps),
            "dispatch seq={}: ann_deps diverged",
            e.seq
        );
        // At rename both paths filter inherited deps by unresolved-ness, so
        // the full sets still agree exactly (divergence only begins at
        // store-forwarding merges).
        self.assert_lev_equivalent("dispatch", e, &lev_deps, slots);
        assert_eq!(
            lev_deps,
            slots.mask_seqs(&e.lev_deps),
            "dispatch seq={}: lev_deps diverged",
            e.seq
        );
        self.assert_taint_equivalent("dispatch", e, &taint_roots, slots, view);
        self.events_checked += 1;

        self.instrs.insert(
            e.seq,
            RefInstr { shadow, lev_deps, taint_roots, is_load: e.instr.is_load(), done: false },
        );
        if e.is_spec_source() {
            self.unresolved.insert(e.seq, (e.pc, e.instr.is_indirect()));
        }
    }

    /// Called after a store-to-load forward merged the store's sets into
    /// the load's.
    pub(crate) fn on_forward(
        &mut self,
        load_seq: Seq,
        store_seq: Seq,
        e: &DynInstr,
        slots: &SlotTable,
        view: &SpecView<'_>,
    ) {
        let (s_lev, s_taint) = {
            let s = self.instrs.get(&store_seq).expect("forwarding store is in flight");
            (s.lev_deps.clone(), s.taint_roots.clone())
        };
        let (ref_lev, ref_taint) = {
            let l = self.instrs.get_mut(&load_seq).expect("forwarded load is in flight");
            merge_sorted(&mut l.lev_deps, &s_lev);
            merge_sorted(&mut l.taint_roots, &s_taint);
            (l.lev_deps.clone(), l.taint_roots.clone())
        };
        self.assert_lev_equivalent("forward", e, &ref_lev, slots);
        self.assert_taint_equivalent("forward", e, &ref_taint, slots, view);
        self.events_checked += 1;
    }

    /// Called when a control instruction resolves.
    pub(crate) fn on_resolve(&mut self, seq: Seq, cycle: u64) {
        self.unresolved.remove(&seq);
        self.resolve_cycle.insert(seq, cycle);
    }

    /// Called when a load finishes executing.
    pub(crate) fn on_load_done(&mut self, seq: Seq) {
        if let Some(i) = self.instrs.get_mut(&seq) {
            i.done = true;
        }
    }

    /// Called after the core squashed everything younger than `seq`.
    pub(crate) fn on_squash_younger(&mut self, seq: Seq) {
        let _ = self.instrs.split_off(&(seq + 1));
        let _ = self.unresolved.split_off(&(seq + 1));
    }

    /// Called at commit, with the slot-table F1 wait statistics the core
    /// computed (`None` when the instruction never became operand-ready).
    pub(crate) fn on_commit(&mut self, e: &DynInstr, waits: Option<(u64, u64)>) {
        if let Some((sw, tw)) = waits {
            let ready = e.first_ready_cycle.expect("waits imply readiness");
            let i = self.instrs.get(&e.seq).expect("committing instruction is tracked");
            let wait = |deps: &[Seq]| {
                deps.iter()
                    .filter_map(|s| self.resolve_cycle.get(s))
                    .map(|&r| r.saturating_sub(ready))
                    .max()
                    .unwrap_or(0)
            };
            let ref_sw = wait(&i.shadow);
            let ref_tw = wait(&i.lev_deps);
            assert_eq!(ref_sw, sw, "commit seq={}: shadow wait cycles diverged", e.seq);
            assert_eq!(
                ref_tw, tw,
                "commit seq={}: true wait cycles diverged (fwd_true_wait={})",
                e.seq, e.fwd_true_wait
            );
            self.events_checked += 1;
        }
        self.instrs.remove(&e.seq);
    }
}
