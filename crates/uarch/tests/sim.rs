//! Integration tests for the out-of-order core: architectural equivalence
//! with the reference interpreter, timing sanity, and — crucially — the
//! transient-execution side-effect substrate the security study rests on.

use levioso_isa::{assemble, reg::*, Machine, Program};
use levioso_uarch::{CoreConfig, SimError, Simulator, UnsafeBaseline};

/// Runs `program` on both the interpreter and the simulator (same initial
/// memory image) and asserts identical final architectural state.
fn assert_equivalent(program: &Program, init_mem: &[(u64, i64)]) -> levioso_uarch::SimStats {
    let mut machine = Machine::new();
    for &(a, v) in init_mem {
        machine.mem.write_i64(a, v);
    }
    machine.run(program, 50_000_000).expect("interpreter run");

    let mut sim = Simulator::new(program, CoreConfig::default());
    for &(a, v) in init_mem {
        sim.mem.write_i64(a, v);
    }
    let stats = sim.run(&UnsafeBaseline).expect("simulator run");

    for r in levioso_isa::Reg::all() {
        assert_eq!(sim.reg(r), machine.reg(r), "register {r} differs");
    }
    assert_eq!(
        sim.arch_fingerprint(),
        machine.arch_fingerprint(),
        "architectural state fingerprint differs"
    );
    assert_eq!(stats.committed, machine.retired(), "retired instruction count differs");
    stats
}

#[test]
fn straight_line_equivalence() {
    let p = assemble(
        "t",
        r"
        li   a0, 7
        li   a1, 9
        mul  a2, a0, a1
        div  a3, a2, a0
        rem  a4, a2, a1
        sub  a5, a2, a3
        halt
    ",
    )
    .unwrap();
    assert_equivalent(&p, &[]);
}

#[test]
fn loop_equivalence_and_ipc() {
    let p = assemble(
        "t",
        r"
        li   a0, 1000
        li   a1, 0
    loop:
        add  a1, a1, a0
        addi a0, a0, -1
        bnez a0, loop
        halt
    ",
    )
    .unwrap();
    let stats = assert_equivalent(&p, &[]);
    // A predictable loop on an 8-wide core must exceed 1 IPC comfortably.
    assert!(stats.ipc() > 1.0, "ipc {} too low for a trivial loop", stats.ipc());
    assert!(stats.mispredicts <= 24, "trivial loop should mispredict only during gshare warmup");
}

#[test]
fn memory_and_forwarding_equivalence() {
    let p = assemble(
        "t",
        r"
        li   t0, 0x1000
        li   t1, -123
        sd   t1, 0(t0)      # store then immediately load back: forwarding
        ld   t2, 0(t0)
        sb   t1, 64(t0)     # byte store
        lbu  t3, 64(t0)
        lb   t4, 64(t0)
        sw   t2, 128(t0)    # partial-overlap pattern: word store, byte load
        lb   t5, 129(t0)
        halt
    ",
    )
    .unwrap();
    assert_equivalent(&p, &[]);
}

#[test]
fn data_dependent_branches_equivalence() {
    // Branch outcomes depend on loaded data: exercises misprediction,
    // squash, and RAT recovery.
    let data: Vec<(u64, i64)> =
        (0..64).map(|i| (0x2000 + 8 * i, ((i * 2654435761u64) % 97) as i64 - 48)).collect();
    let p = assemble(
        "t",
        r"
        li   a0, 0x2000
        li   a1, 64
        li   a2, 0          # positives
        li   a3, 0          # sum of positives
    loop:
        ld   t0, 0(a0)
        blez t0, skip
        addi a2, a2, 1
        add  a3, a3, t0
    skip:
        addi a0, a0, 8
        addi a1, a1, -1
        bnez a1, loop
        halt
    ",
    )
    .unwrap();
    let stats = assert_equivalent(&p, &data);
    assert!(stats.mispredicts > 0, "pseudo-random filter must mispredict sometimes");
    assert!(stats.squashed > 0);
}

#[test]
fn call_ret_equivalence() {
    let p = assemble(
        "t",
        r"
        li   a0, 3
        li   a1, 0
    loop:
        call bump
        addi a0, a0, -1
        bnez a0, loop
        halt
    bump:
        addi a1, a1, 10
        ret
    ",
    )
    .unwrap();
    let stats = assert_equivalent(&p, &[]);
    // RAS should make the returns essentially free.
    assert!(stats.mispredicts <= 4, "returns should be RAS-predicted");
}

#[test]
fn indirect_jump_with_no_prediction_stalls_but_completes() {
    let p = assemble(
        "t",
        r"
        li   t0, 4       # absolute instruction index of `target`
        jr   t0
        halt             # skipped
        halt             # skipped
    target:
        li   a0, 99
        halt
    ",
    )
    .unwrap();
    assert_equivalent(&p, &[]);
}

#[test]
fn rdcycle_measures_load_latency() {
    // fence; t0=rdcycle; ld; t1=rdcycle — the delta must reflect a DRAM
    // miss the first time and an L1 hit the second time.
    let p = assemble(
        "t",
        r"
        li   a1, 0x8000
        rdcycle t0
        ld   a2, 0(a1)
        rdcycle t1
        ld   a3, 0(a1)
        rdcycle t2
        sub  a4, t1, t0    # cold latency
        sub  a5, t2, t1    # warm latency
        halt
    ",
    )
    .unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.run(&UnsafeBaseline).unwrap();
    let cold = sim.reg(A4);
    let warm = sim.reg(A5);
    assert!(cold > 100, "cold access should pay DRAM latency, measured {cold}");
    assert!(warm < 20, "warm access should be an L1 hit, measured {warm}");
    assert!(cold > warm + 50, "cold {cold} vs warm {warm} must be clearly separable");
}

#[test]
fn transient_wrong_path_load_fills_cache() {
    // The Spectre substrate: a load on the mispredicted path is squashed
    // but its cache fill persists.
    const COND: u64 = 0x10_0000;
    const PROBE: u64 = 0x20_0000;
    let p = assemble(
        "t",
        r"
        li   a1, 0x100000
        li   a2, 0x200000
        ld   t0, 0(a1)       # slow (cold) condition load
        bnez t0, skip        # predicted not-taken (cold counters), actually taken
        ld   t3, 0(a2)       # transient: never commits
    skip:
        halt
    ",
    )
    .unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.mem.write_i64(COND, 1); // branch is actually taken
    sim.run(&UnsafeBaseline).unwrap();
    assert_eq!(sim.reg(T3), 0, "transient load never updates architectural state");
    assert!(sim.stats().mispredicts >= 1);
    assert!(
        sim.hierarchy().contains(PROBE),
        "squashed load's cache fill must persist (this is the side channel)"
    );

    // Control run: when the branch is correctly predicted not-taken and
    // actually not taken, the load commits and also fills the cache.
    let mut sim2 = Simulator::new(&p, CoreConfig::default());
    sim2.mem.write_i64(COND, 0);
    sim2.run(&UnsafeBaseline).unwrap();
    assert!(sim2.hierarchy().contains(PROBE));
}

#[test]
fn flush_evicts_line() {
    let p = assemble(
        "t",
        r"
        li   a1, 0x8000
        ld   a2, 0(a1)     # fill
        fence
        flush 0(a1)
        fence
        rdcycle t0
        ld   a3, 0(a1)     # must miss again
        rdcycle t1
        sub  a4, t1, t0
        halt
    ",
    )
    .unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.run(&UnsafeBaseline).unwrap();
    assert!(sim.reg(A4) > 100, "flushed line must re-miss, measured {}", sim.reg(A4));
}

#[test]
fn missing_halt_is_an_error() {
    let p = assemble("t", "li a0, 1\nli a1, 2").unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    assert!(matches!(sim.run(&UnsafeBaseline), Err(SimError::PcOutOfRange { .. })));
}

#[test]
fn infinite_loop_hits_cycle_limit() {
    let p = assemble("t", "x: j x\nhalt").unwrap();
    let config = CoreConfig { max_cycles: 10_000, ..CoreConfig::default() };
    let mut sim = Simulator::new(&p, config);
    assert_eq!(sim.run(&UnsafeBaseline), Err(SimError::CycleLimit { max_cycles: 10_000 }));
}

#[test]
fn small_rob_still_correct() {
    let mut config = CoreConfig::default().with_rob_size(16);
    config.iq_size = 8;
    let p = assemble(
        "t",
        r"
        li   a0, 200
        li   a1, 0
        li   a2, 0x4000
    loop:
        sd   a1, 0(a2)
        ld   t0, 0(a2)
        add  a1, t0, a0
        addi a0, a0, -1
        bnez a0, loop
        halt
    ",
    )
    .unwrap();
    let mut machine = Machine::new();
    machine.run(&p, 1_000_000).unwrap();
    let mut sim = Simulator::new(&p, config);
    sim.run(&UnsafeBaseline).unwrap();
    assert_eq!(sim.arch_fingerprint(), machine.arch_fingerprint());
}

#[test]
fn mlp_is_exploited_for_independent_loads() {
    // Eight independent cold loads should overlap (memory-level
    // parallelism), taking far less than 8 × DRAM latency.
    let p = assemble(
        "t",
        r"
        li   a1, 0x100000
        rdcycle t0
        ld   a2, 0(a1)
        ld   a3, 4096(a1)
        ld   a4, 8192(a1)
        ld   a5, 12288(a1)
        ld   a6, 16384(a1)
        ld   a7, 20480(a1)
        ld   s2, 24576(a1)
        ld   s3, 28672(a1)
        rdcycle t1
        sub  s4, t1, t0
        halt
    ",
    )
    .unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.run(&UnsafeBaseline).unwrap();
    let elapsed = sim.reg(S4);
    assert!(elapsed < 2 * 138, "8 independent misses must overlap; measured {elapsed} cycles");
}

#[test]
fn dependent_loads_serialize() {
    // A pointer chase cannot overlap: each load's address depends on the
    // previous load's value.
    const BASE: u64 = 0x30_0000;
    let p = assemble(
        "t",
        r"
        li   a1, 0x300000
        rdcycle t0
        ld   a1, 0(a1)
        ld   a1, 0(a1)
        ld   a1, 0(a1)
        ld   a1, 0(a1)
        rdcycle t1
        sub  a2, t1, t0
        halt
    ",
    )
    .unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    // Each node points to the next, 1 MiB apart (always cold).
    for i in 0..4u64 {
        sim.mem.write_i64(BASE + i * 0x10_0000, (BASE + (i + 1) * 0x10_0000) as i64);
    }
    sim.run(&UnsafeBaseline).unwrap();
    let elapsed = sim.reg(A2);
    assert!(elapsed > 4 * 138 - 20, "dependent misses must serialize; measured {elapsed}");
}

#[test]
fn mshr_limit_bounds_memory_level_parallelism() {
    // With a single MSHR, eight independent cold loads serialize; the
    // default 16 MSHRs let them overlap. Same program, same data — only
    // the structural limit changes.
    let p = assemble(
        "t",
        r"
        li   a1, 0x100000
        rdcycle t0
        ld   a2, 0(a1)
        ld   a3, 4096(a1)
        ld   a4, 8192(a1)
        ld   a5, 12288(a1)
        ld   a6, 16384(a1)
        ld   a7, 20480(a1)
        ld   s2, 24576(a1)
        ld   s3, 28672(a1)
        rdcycle t1
        sub  s4, t1, t0
        halt
    ",
    )
    .unwrap();
    let run = |mshrs: usize| {
        let config = CoreConfig { mshr_count: mshrs, ..CoreConfig::default() };
        let mut sim = Simulator::new(&p, config);
        sim.run(&UnsafeBaseline).unwrap();
        sim.reg(S4)
    };
    let parallel = run(16);
    let serial = run(1);
    assert!(parallel < 2 * 138, "16 MSHRs: misses overlap ({parallel})");
    assert!(serial > 8 * 120, "1 MSHR: misses serialize ({serial})");
}
