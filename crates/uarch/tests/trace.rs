//! Observer-effect tests for the trace layer: a simulation must produce
//! bit-identical results and statistics with no sink, with the no-op
//! [`NullSink`], and with a recording sink attached — tracing observes
//! the pipeline, it never steers it. A policy that actually delays
//! (uarch only ships [`UnsafeBaseline`], so the test brings its own)
//! additionally checks the policy-block stream: one blame per blocked
//! cycle, conserved against `SimStats::policy_delay_cycles`.

use levioso_isa::{assemble, Instr, Program};
use levioso_uarch::{
    Blame, CoreConfig, DynInstr, Gate, NullSink, Seq, SimStats, Simulator, SpecView,
    SpeculationPolicy, TraceSink, UnsafeBaseline,
};

/// A Fence-like in-test policy so the block/blame hooks actually fire.
#[derive(Debug)]
struct DelayUnderShadow;

impl SpeculationPolicy for DelayUnderShadow {
    fn name(&self) -> &'static str {
        "test-delay"
    }

    fn may_execute(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_unresolved(&instr.shadow) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }
}

/// Counts every hook and buffers per-instruction blame the same way the
/// core buffers `policy_delay_cycles` (fold at commit, drop at squash).
#[derive(Debug, Default)]
struct Recorder {
    fetched: u64,
    dispatched: u64,
    issued: u64,
    blocked: u64,
    resolved: u64,
    mispredicted: u64,
    squashed: u64,
    written_back: u64,
    committed: u64,
    pending: std::collections::HashMap<Seq, u64>,
    committed_blocked: u64,
}

impl TraceSink for Recorder {
    fn on_fetch(&mut self, _cycle: u64, _pc: u32, _instr: &Instr) {
        self.fetched += 1;
    }

    fn on_dispatch(&mut self, _cycle: u64, _instr: &DynInstr) {
        self.dispatched += 1;
    }

    fn on_issue(&mut self, _cycle: u64, _instr: &DynInstr) {
        self.issued += 1;
    }

    fn on_policy_block(&mut self, _cycle: u64, instr: &DynInstr, blame: &Blame) {
        assert!(!blame.rule.is_empty());
        self.blocked += 1;
        *self.pending.entry(instr.seq).or_default() += 1;
    }

    fn on_resolve(&mut self, _cycle: u64, _instr: &DynInstr, mispredicted: bool) {
        self.resolved += 1;
        self.mispredicted += u64::from(mispredicted);
    }

    fn on_squash(&mut self, _cycle: u64, seq: Seq, _pc: u32) {
        self.squashed += 1;
        self.pending.remove(&seq);
    }

    fn on_writeback(&mut self, _cycle: u64, _instr: &DynInstr) {
        self.written_back += 1;
    }

    fn on_commit(&mut self, _cycle: u64, instr: &DynInstr) {
        self.committed += 1;
        self.committed_blocked += self.pending.remove(&instr.seq).unwrap_or(0);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

fn workload() -> Program {
    assemble(
        "t",
        r"
        li   t0, 0x1000
        li   a0, 40
        li   a1, 0
    loop:
        andi t1, a0, 7
        sltiu t1, t1, 3
        beqz t1, skip
        slli t2, a0, 3
        add  t2, t2, t0
        ld   t3, 0(t2)
        add  a1, a1, t3
    skip:
        addi a0, a0, -1
        bnez a0, loop
        sd   a1, 0(t0)
        halt
    ",
    )
    .unwrap()
}

fn run(
    policy: &dyn SpeculationPolicy,
    sink: Option<Box<dyn TraceSink>>,
) -> (SimStats, u64, Option<Box<dyn TraceSink>>) {
    let program = workload();
    let mut sim = Simulator::new(&program, CoreConfig::default());
    for i in 0..64u64 {
        sim.mem.write_i64(0x1000 + 8 * i, (i as i64).wrapping_mul(37) - 11);
    }
    if let Some(s) = sink {
        sim.attach_tracer(s);
    }
    let stats = sim.run(policy).expect("simulation");
    let sink = sim.take_tracer();
    (stats, sim.arch_fingerprint(), sink)
}

#[test]
fn sinks_never_perturb_the_simulation() {
    for policy in [&UnsafeBaseline as &dyn SpeculationPolicy, &DelayUnderShadow] {
        let (bare, bare_fp, _) = run(policy, None);
        let (null, null_fp, _) = run(policy, Some(Box::new(NullSink)));
        let (rec, rec_fp, _) = run(policy, Some(Box::<Recorder>::default()));
        assert_eq!(bare, null, "{}: NullSink changed the statistics", policy.name());
        assert_eq!(bare, rec, "{}: recording sink changed the statistics", policy.name());
        assert_eq!(bare_fp, null_fp, "{}: NullSink changed architectural state", policy.name());
        assert_eq!(bare_fp, rec_fp, "{}: recorder changed architectural state", policy.name());
    }
}

#[test]
fn recorder_event_counts_match_the_statistics() {
    let (stats, _, sink) = run(&DelayUnderShadow, Some(Box::<Recorder>::default()));
    let rec = sink.unwrap().into_any().downcast::<Recorder>().unwrap();
    assert_eq!(rec.fetched, stats.fetched);
    assert_eq!(rec.dispatched, stats.dispatched);
    assert_eq!(rec.committed, stats.committed);
    // `SimStats::squashed` additionally counts wrong-path instructions
    // dropped from the fetch queue before dispatch; those have no ROB
    // entry (and no sequence number), so no `on_squash` event.
    assert!(rec.squashed <= stats.squashed);
    assert_eq!(rec.mispredicted, stats.mispredicts);
    // Every dispatched instruction commits, squashes, or is still in the
    // ROB when halt commits (never anything else).
    assert!(rec.dispatched >= rec.committed + rec.squashed);
    assert!(rec.issued >= rec.committed, "committed instructions all issued");
    // The shadow-gated policy must actually have blocked something, and
    // the blame folded at commit must conserve the simulator's counter.
    assert!(rec.blocked > 0, "the delay policy never fired — weak test workload");
    assert_eq!(rec.committed_blocked, stats.policy_delay_cycles, "blame is not conserved");
}

#[test]
fn null_and_absent_sink_are_equivalent_for_the_unsafe_baseline() {
    let (bare, fp1, _) = run(&UnsafeBaseline, None);
    let (null, fp2, sink) = run(&UnsafeBaseline, Some(Box::new(NullSink)));
    assert_eq!(bare, null);
    assert_eq!(fp1, fp2);
    // The sink comes back out and downcasts to what went in.
    assert!(sink.unwrap().into_any().downcast::<NullSink>().is_ok());
}
