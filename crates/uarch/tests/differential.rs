//! Differential test of the bitmask speculation-set fast path against the
//! original `Vec<Seq>` reference semantics.
//!
//! [`Simulator::enable_reference_checking`] runs the pre-optimization
//! implementation (per-instruction sorted `Vec<Seq>` shadow / Levioso /
//! taint sets, `resolve_cycle` map) side-by-side with the production
//! bitmask path, asserting set equivalence at every dispatch, forward,
//! resolve, and commit. This file drives that oracle with randomized
//! programs and policies that consult *every* dependency-set flavour, and
//! additionally asserts that a checked run and an unchecked run produce
//! identical statistics and architectural state — i.e. the oracle observes
//! without perturbing.
//!
//! A separate test pins the slot-table state bound: speculation bookkeeping
//! is O(ROB), never O(dynamic instructions), which is the leak the old
//! `resolve_cycle: HashMap` had.

use levioso_isa::reg::*;
use levioso_isa::{AluOp, Annotations, BranchCond, DepSet, Instr, Machine, MemWidth, Program, Reg};
use levioso_support::{Gen, Rng};
use levioso_uarch::policy::{Gate, LoadMode, SpecView, SpeculationPolicy, UnsafeBaseline};
use levioso_uarch::{CoreConfig, DynInstr, SimStats, Simulator};

/// Delays transmits on the conservative shadow (execute-delay shape).
#[derive(Debug)]
struct ShadowDelay;

impl SpeculationPolicy for ShadowDelay {
    fn name(&self) -> &'static str {
        "shadow-delay"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_unresolved(&instr.shadow) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }
}

/// Delays transmits until every shadowing control instruction *commits*
/// (commit-delay shape; exercises `any_uncommitted` and thus the live
/// control-slot mask).
#[derive(Debug)]
struct CommitShadowDelay;

impl SpeculationPolicy for CommitShadowDelay {
    fn name(&self) -> &'static str {
        "commit-shadow-delay"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_uncommitted(&instr.shadow) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }
}

/// Delays transmits with tainted operands (STT shape; exercises taint
/// roots, load-done tracking, and forwarding taint inheritance).
#[derive(Debug)]
struct TaintDelay;

impl SpeculationPolicy for TaintDelay {
    fn name(&self) -> &'static str {
        "taint-delay"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_taint_active(&instr.taint_roots) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }
}

/// Levioso shape: delays transmits on the true-dependency set
/// (annotation instances closed over dataflow), and serves speculative
/// loads hit-only while annotation dependencies are pending — together
/// touching `lev_deps`, `ann_deps`, and the hit-only issue path.
#[derive(Debug)]
struct LevDelay;

impl SpeculationPolicy for LevDelay {
    fn name(&self) -> &'static str {
        "lev-delay"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_unresolved(&instr.lev_deps) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }

    fn load_mode(&self, instr: &DynInstr, view: &SpecView<'_>) -> LoadMode {
        if view.any_unresolved(&instr.ann_deps) {
            LoadMode::HitOnly
        } else {
            LoadMode::Normal
        }
    }
}

const POOL_BASE: i64 = 0x1000;

fn small_reg(g: &mut Gen) -> Reg {
    if g.bool_any() {
        Reg::new(g.u8_in(10..18))
    } else {
        Reg::new(g.u8_in(5..8))
    }
}

const WIDTHS: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];

#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, Reg, Reg, Reg),
    Imm(AluOp, Reg, Reg, i64),
    Load(MemWidth, bool, Reg, i64),
    Store(MemWidth, Reg, i64),
    FwdBranch(BranchCond, Reg, Reg, u8),
}

fn arb_op(g: &mut Gen) -> Op {
    const ALU: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
        AluOp::Sltu,
        AluOp::Sra,
    ];
    const BRANCH: [BranchCond; 3] = [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt];
    // Branch-heavier than the LSQ stress mix: speculation sets are the
    // object under test, so keep many of them live at once.
    match g.weighted(&[3, 2, 3, 3, 3]) {
        0 => Op::Alu(*g.pick(&ALU), small_reg(g), small_reg(g), small_reg(g)),
        1 => Op::Imm(*g.pick(&ALU), small_reg(g), small_reg(g), g.i64_in(-64..64)),
        2 => Op::Load(*g.pick(&WIDTHS), g.bool_any(), small_reg(g), g.i64_in(0..40)),
        3 => Op::Store(*g.pick(&WIDTHS), small_reg(g), g.i64_in(0..40)),
        _ => Op::FwdBranch(*g.pick(&BRANCH), small_reg(g), small_reg(g), g.u8_in(1..6)),
    }
}

/// Lowers the op list into a halting program (same shape as the LSQ
/// stress generator: `gp` holds the pool base, branches only skip
/// forward).
fn lower(ops: &[Op]) -> Program {
    let mut instrs: Vec<Instr> =
        vec![Instr::AluImm { op: AluOp::Add, rd: GP, rs1: ZERO, imm: POOL_BASE }];
    let base = instrs.len() as u32;
    let n = ops.len() as u32;
    for (k, op) in ops.iter().enumerate() {
        let at = base + k as u32;
        instrs.push(match *op {
            Op::Alu(op, rd, rs1, rs2) => Instr::Alu { op, rd, rs1, rs2 },
            Op::Imm(op, rd, rs1, imm) => Instr::AluImm { op, rd, rs1, imm },
            Op::Load(width, signed, rd, offset) => {
                Instr::Load { width, signed, rd, base: GP, offset }
            }
            Op::Store(width, src, offset) => Instr::Store { width, src, base: GP, offset },
            Op::FwdBranch(cond, rs1, rs2, skip) => {
                Instr::Branch { cond, rs1, rs2, target: (at + 1 + skip as u32).min(base + n) }
            }
        });
    }
    instrs.push(Instr::Halt);
    Program::new("differential", instrs)
}

/// Random (but well-formed) annotations: exact sets drawn from the actual
/// branch indices, the conservative fallback, or empty. Soundness of the
/// annotations is irrelevant here — policies only *delay*, never change
/// dataflow — so random sets maximize coverage of the ann/lev plumbing.
fn arb_annotations(g: &mut Gen, p: &Program) -> Annotations {
    let branch_idxs: Vec<u32> = p
        .instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Instr::Branch { .. }))
        .map(|(k, _)| k as u32)
        .collect();
    let sets = (0..p.instrs.len())
        .map(|_| match g.weighted(&[3, 1, 2]) {
            0 if !branch_idxs.is_empty() => {
                let mut v: Vec<u32> =
                    (0..g.usize_in(1..4)).map(|_| *g.pick(&branch_idxs)).collect();
                v.sort_unstable();
                v.dedup();
                DepSet::Exact(v)
            }
            1 => DepSet::AllOlder,
            _ => DepSet::empty(),
        })
        .collect();
    Annotations::new(sets)
}

fn seed_regs(sim: &mut Simulator, seed: i64) {
    for r in 10..18 {
        sim.set_reg(Reg::new(r), seed.wrapping_mul(r as i64 + 3));
    }
}

fn run_once(
    p: &Program,
    seed: i64,
    policy: &dyn SpeculationPolicy,
    config: &CoreConfig,
    check: bool,
) -> (SimStats, u64, u64) {
    let mut sim = Simulator::new(p, config.clone());
    if check {
        sim.enable_reference_checking();
    }
    seed_regs(&mut sim, seed);
    let stats =
        sim.run(policy).unwrap_or_else(|e| panic!("{}: {e}\n{}", policy.name(), p.to_asm_string()));
    (stats, sim.arch_fingerprint(), sim.reference_events_checked())
}

levioso_support::props! {
    cases = 64;

    /// The bitmask fast path is equivalent to the Vec-based reference
    /// semantics: the in-simulator oracle asserts per-event set
    /// equivalence, and the checked run's observable results are
    /// bit-identical to the unchecked run's.
    fn bitmask_sets_match_vec_reference(g) {
        let count = g.usize_in(4..60);
        let ops: Vec<Op> = (0..count).map(|_| arb_op(g)).collect();
        let seed = g.i64_in(-1000..1000);
        let mut p = lower(&ops);
        p.annotations = Some(arb_annotations(g, &p));
        g.note("seed", &seed);
        g.note("asm", &p.to_asm_string());
        g.note("annotations", &p.annotations);

        // Architectural cross-check against the reference interpreter.
        let golden = {
            let mut m = Machine::new();
            for r in 10..18 {
                m.set_reg(Reg::new(r), seed.wrapping_mul(r as i64 + 3));
            }
            m.run(&p, 1_000_000).expect("forward-branch programs halt");
            m.arch_fingerprint()
        };

        let default = CoreConfig::default();
        let mut tiny = CoreConfig::default().with_rob_size(16);
        tiny.fetch_width = 2;
        tiny.dispatch_width = 2;
        tiny.issue_width = 2;
        tiny.commit_width = 2;
        tiny.iq_size = 8;
        tiny.alu_count = 1;
        tiny.load_ports = 1;
        tiny.store_ports = 1;

        let policies: [&dyn SpeculationPolicy; 5] =
            [&UnsafeBaseline, &ShadowDelay, &CommitShadowDelay, &TaintDelay, &LevDelay];
        for config in [&default, &tiny] {
            for policy in policies {
                let (plain_stats, plain_fp, _) = run_once(&p, seed, policy, config, false);
                let (ref_stats, ref_fp, events) = run_once(&p, seed, policy, config, true);
                assert!(events > 0, "{}: oracle observed no events", policy.name());
                assert_eq!(plain_fp, golden, "{}: wrong architectural state", policy.name());
                assert_eq!(ref_fp, golden, "{}: oracle perturbed results", policy.name());
                assert_eq!(
                    plain_stats,
                    ref_stats,
                    "{}: oracle perturbed statistics",
                    policy.name()
                );
            }
        }
    }
}

/// Speculation bookkeeping stays O(ROB): a branch-and-load-heavy loop
/// retires orders of magnitude more instructions than the ROB holds, yet
/// the slot table's high-water mark never exceeds its fixed 2×ROB
/// capacity (the old `resolve_cycle: HashMap<Seq, u64>` grew with every
/// control instruction ever dispatched).
#[test]
fn speculation_state_is_bounded_by_rob_size() {
    let p = levioso_isa::assemble(
        "looped",
        r"
        li   t0, 3000
        li   a1, 0x100000
    loop:
        ld   t1, 0(a1)
        bnez t1, skip
        addi a2, a2, 1
    skip:
        ld   t2, 8(a1)
        beqz t2, over
        addi a3, a3, 1
    over:
        addi t0, t0, -1
        bnez t0, loop
        halt
    ",
    )
    .expect("assembles");
    let config = CoreConfig::default();
    let rob = config.rob_size;
    let mut sim = Simulator::new(&p, config);
    sim.mem.write_i64(0x10_0000, 1);
    let stats = sim.run(&LevDelay).expect("runs");
    assert!(
        stats.committed as usize > 20 * rob,
        "loop must retire far more than one ROB of instructions (got {})",
        stats.committed
    );
    let (watermark, capacity) = sim.spec_slot_watermark();
    assert_eq!(capacity, 2 * rob);
    assert!(watermark <= capacity, "slot watermark {watermark} exceeded capacity {capacity}");
    assert!(watermark > 0, "the loop speculates, so slots must have been used");
}
