//! Randomized stress tests at the raw ISA level: mixed-width loads and
//! stores over a tiny address pool (maximum forwarding/overlap pressure)
//! plus forward-only branches (guaranteed termination), checked against the
//! reference interpreter under several policies and a deliberately tiny
//! core configuration. Random cases come from the seeded
//! `levioso-support` harness.

use levioso_isa::reg::*;
use levioso_isa::{AluOp, BranchCond, Instr, Machine, MemWidth, Program, Reg};
use levioso_support::{Gen, Rng};
use levioso_uarch::policy::{Gate, LoadMode, SpecView, SpeculationPolicy, UnsafeBaseline};
use levioso_uarch::{CoreConfig, DynInstr, Simulator};

/// A conservative hardware-only policy implemented directly against the
/// uarch crate (equivalent to levioso-core's ExecuteDelay; defined here so
/// this crate's tests stay dependency-free).
#[derive(Debug)]
struct DelayTransmit;

impl SpeculationPolicy for DelayTransmit {
    fn name(&self) -> &'static str {
        "delay-transmit"
    }

    fn may_transmit(&self, instr: &DynInstr, view: &SpecView<'_>) -> Gate {
        if view.any_unresolved(&instr.shadow) {
            Gate::Delay
        } else {
            Gate::Allow
        }
    }
}

/// Delay-on-miss implemented locally.
#[derive(Debug)]
struct HitOnlyWhileSpec;

impl SpeculationPolicy for HitOnlyWhileSpec {
    fn name(&self) -> &'static str {
        "hit-only"
    }

    fn load_mode(&self, instr: &DynInstr, view: &SpecView<'_>) -> LoadMode {
        if view.any_unresolved(&instr.shadow) {
            LoadMode::HitOnly
        } else {
            LoadMode::Normal
        }
    }
}

const POOL_BASE: i64 = 0x1000;

fn small_reg(g: &mut Gen) -> Reg {
    // a0..a7 + t0..t2: plenty of WAW/RAW collisions.
    if g.bool_any() {
        Reg::new(g.u8_in(10..18))
    } else {
        Reg::new(g.u8_in(5..8))
    }
}

const WIDTHS: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];

#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, Reg, Reg, Reg),
    Imm(AluOp, Reg, Reg, i64),
    Load(MemWidth, bool, Reg, i64),
    Store(MemWidth, Reg, i64),
    FwdBranch(BranchCond, Reg, Reg, u8),
}

fn arb_op(g: &mut Gen) -> Op {
    const ALU: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
        AluOp::Sltu,
        AluOp::Sra,
    ];
    const BRANCH: [BranchCond; 3] = [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt];
    match g.weighted(&[3, 2, 3, 3, 1]) {
        0 => Op::Alu(*g.pick(&ALU), small_reg(g), small_reg(g), small_reg(g)),
        1 => Op::Imm(*g.pick(&ALU), small_reg(g), small_reg(g), g.i64_in(-64..64)),
        // Loads/stores confined to a 48-byte window for maximal overlap.
        2 => Op::Load(*g.pick(&WIDTHS), g.bool_any(), small_reg(g), g.i64_in(0..40)),
        3 => Op::Store(*g.pick(&WIDTHS), small_reg(g), g.i64_in(0..40)),
        _ => Op::FwdBranch(*g.pick(&BRANCH), small_reg(g), small_reg(g), g.u8_in(1..6)),
    }
}

/// Lowers the op list into a halting program: `gp` holds the pool base,
/// branches only skip forward.
fn lower(ops: &[Op]) -> Program {
    let mut instrs: Vec<Instr> =
        vec![Instr::AluImm { op: AluOp::Add, rd: GP, rs1: ZERO, imm: POOL_BASE }];
    // Pre-lower to know each op's instruction index (1 instr per op).
    let base = instrs.len() as u32;
    let n = ops.len() as u32;
    for (k, op) in ops.iter().enumerate() {
        let at = base + k as u32;
        instrs.push(match *op {
            Op::Alu(op, rd, rs1, rs2) => Instr::Alu { op, rd, rs1, rs2 },
            Op::Imm(op, rd, rs1, imm) => Instr::AluImm { op, rd, rs1, imm },
            Op::Load(width, signed, rd, offset) => {
                Instr::Load { width, signed, rd, base: GP, offset }
            }
            Op::Store(width, src, offset) => Instr::Store { width, src, base: GP, offset },
            Op::FwdBranch(cond, rs1, rs2, skip) => Instr::Branch {
                cond,
                rs1,
                rs2,
                target: (at + 1 + skip as u32).min(base + n), // into range, ≥ at+1
            },
        });
    }
    instrs.push(Instr::Halt);
    Program::new("stress", instrs)
}

fn run_reference(p: &Program, seed: i64) -> (u64, Vec<i64>) {
    let mut m = Machine::new();
    for r in 10..18 {
        m.set_reg(Reg::new(r), seed.wrapping_mul(r as i64 + 3));
    }
    m.run(p, 1_000_000).expect("straight-line-ish programs halt");
    (m.arch_fingerprint(), m.regs().to_vec())
}

fn run_sim(p: &Program, seed: i64, policy: &dyn SpeculationPolicy, config: &CoreConfig) -> u64 {
    let mut sim = Simulator::new(p, config.clone());
    for r in 10..18 {
        sim.set_reg(Reg::new(r), seed.wrapping_mul(r as i64 + 3));
    }
    sim.run(policy).unwrap_or_else(|e| panic!("{}: {e}\n{}", policy.name(), p.to_asm_string()));
    sim.arch_fingerprint()
}

levioso_support::props! {
    cases = 64;

    /// Random mixed-width memory traffic + forward branches: the simulator
    /// matches the interpreter under every policy and under a starved
    /// 1-wide, 16-entry configuration.
    fn lsq_stress_equivalence(g) {
        let count = g.usize_in(1..60);
        let ops: Vec<Op> = (0..count).map(|_| arb_op(g)).collect();
        let seed = g.i64_in(-1000..1000);
        let p = lower(&ops);
        g.note("seed", &seed);
        g.note("asm", &p.to_asm_string());
        let (golden, _) = run_reference(&p, seed);

        let default = CoreConfig::default();
        let mut tiny = CoreConfig::default().with_rob_size(16);
        tiny.fetch_width = 2;
        tiny.dispatch_width = 2;
        tiny.issue_width = 2;
        tiny.commit_width = 2;
        tiny.iq_size = 8;
        tiny.alu_count = 1;
        tiny.load_ports = 1;
        tiny.store_ports = 1;

        for config in [&default, &tiny] {
            assert_eq!(run_sim(&p, seed, &UnsafeBaseline, config), golden);
            assert_eq!(run_sim(&p, seed, &DelayTransmit, config), golden);
            assert_eq!(run_sim(&p, seed, &HitOnlyWhileSpec, config), golden);
        }
    }
}

#[test]
fn deep_recursion_overflows_ras_but_stays_correct() {
    // 48 nested calls exceed the 32-entry RAS: returns mispredict, but the
    // result must still be exact.
    let mut b = levioso_isa::ProgramBuilder::new("deep");
    b.li(A0, 48);
    b.li(A1, 0);
    b.call("rec");
    b.halt();
    b.label("rec");
    b.addi(A1, A1, 1);
    b.addi(A0, A0, -1);
    b.beqz(A0, "leaf");
    // Save ra on a software stack (sp-based).
    b.addi(SP, SP, -8);
    b.sd(RA, SP, 0);
    b.call("rec");
    b.ld(RA, SP, 0);
    b.addi(SP, SP, 8);
    b.label("leaf");
    b.ret();
    let p = b.build().unwrap();

    let mut m = Machine::new();
    m.set_reg(SP, 0x9_0000);
    m.run(&p, 1_000_000).unwrap();

    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.set_reg(SP, 0x9_0000);
    sim.run(&UnsafeBaseline).unwrap();
    assert_eq!(sim.reg(A1), 48);
    assert_eq!(sim.arch_fingerprint(), m.arch_fingerprint());
}

#[test]
fn branch_to_entry_is_legal() {
    let p = levioso_isa::assemble(
        "t",
        r"
        addi a0, a0, 1
        li   t0, 3
        blt  a0, t0, @0
        halt
    ",
    )
    .unwrap();
    let mut m = Machine::new();
    m.run(&p, 1000).unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.run(&UnsafeBaseline).unwrap();
    assert_eq!(sim.reg(A0), m.reg(A0));
    assert_eq!(sim.reg(A0), 3);
}

#[test]
fn wild_wrong_path_jalr_is_contained() {
    // On the predicted-wrong path, jalr's base register holds garbage; the
    // front end stalls (no prediction) or follows a stale target, and the
    // squash must clean everything up.
    let p = levioso_isa::assemble(
        "t",
        r"
        li   a1, 0x200000
        ld   t0, 0(a1)       # slow condition, value 1
        bnez t0, good        # predicted NT (cold), actually taken
        li   t1, 999999      # wrong path: bogus jump target
        jr   t1
        halt                 # never reached
    good:
        li   a0, 42
        halt
    ",
    )
    .unwrap();
    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.mem.write_i64(0x20_0000, 1);
    sim.run(&UnsafeBaseline).unwrap();
    assert_eq!(sim.reg(A0), 42);
}
