//! Property tests for the log2-bucketed [`Histogram`]: merge forms a
//! commutative monoid, bucket indices are monotone in the sample value,
//! record_n matches repeated record, the JSON form round-trips, and the
//! whole suite replays deterministically from its seed.

use levioso_support::histogram::BUCKETS;
use levioso_support::{Gen, Histogram, Json, Rng};

fn arb_histogram(g: &mut Gen) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..g.usize_in(0..16) {
        // Bias toward small values but cover the full bucket range.
        let v = match g.usize_in(0..3) {
            0 => g.u64_in(0..8),
            1 => g.u64_in(0..1 << 20),
            _ => g.u64_any(),
        };
        h.record_n(v, g.u64_in(1..4));
    }
    h
}

levioso_support::props! {
    cases = 128;

    /// Merge is associative and commutative with `new()` as identity.
    fn merge_is_a_commutative_monoid(g) {
        let (a, b, c) = (arb_histogram(g), arb_histogram(g), arb_histogram(g));
        g.note("a.count", &a.count());
        g.note("b.count", &b.count());
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge must be commutative");
        let mut id = a.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, a, "empty histogram must be the merge identity");
    }

    /// Bucket index is monotone non-decreasing in the sample value, and
    /// every value lands inside its bucket's [lo, hi] range.
    fn bucket_index_is_monotone_and_self_consistent(g) {
        let x = g.u64_any();
        let y = g.u64_any();
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        g.note("lo", &lo);
        g.note("hi", &hi);
        let (bl, bh) = (Histogram::bucket_index(lo), Histogram::bucket_index(hi));
        assert!(bl <= bh, "bucket index must be monotone: {bl} > {bh}");
        assert!(bl < BUCKETS && bh < BUCKETS);
        assert!((Histogram::bucket_lo(bl)..=Histogram::bucket_hi(bl)).contains(&lo));
        assert!((Histogram::bucket_lo(bh)..=Histogram::bucket_hi(bh)).contains(&hi));
    }

    /// `record_n(v, n)` is exactly `n` single records, and merging a
    /// histogram built from any split of a sample list equals recording
    /// the whole list into one histogram.
    fn record_n_and_merge_agree_with_singletons(g) {
        let samples: Vec<(u64, u64)> =
            (0..g.usize_in(0..12)).map(|_| (g.u64_in(0..1 << 30), g.u64_in(1..5))).collect();
        g.note("samples", &format!("{samples:?}"));
        let mut whole = Histogram::new();
        let mut merged = Histogram::new();
        for &(v, n) in &samples {
            whole.record_n(v, n);
            let mut part = Histogram::new();
            for _ in 0..n {
                part.record(v);
            }
            merged.merge(&part);
        }
        assert_eq!(whole, merged);
        assert_eq!(whole.count(), samples.iter().map(|&(_, n)| n).sum::<u64>());
    }

    /// The JSON form round-trips exactly, including through text.
    fn json_round_trips(g) {
        let h = arb_histogram(g);
        g.note("count", &h.count());
        assert_eq!(Histogram::from_json(&h.to_json()).unwrap(), h);
        let text = h.to_json().emit();
        assert_eq!(Histogram::from_json(&Json::parse(&text).unwrap()).unwrap(), h);
    }
}

/// Edge-sample audit (zero-delay blame entries are common, and `u64::MAX`
/// is the saturating extreme): pins the *intended* bucket assignment at the
/// boundaries. In particular 0 and 1 land in different buckets — bucket 0
/// is exactly `{0}`, bucket 1 is exactly `{1}` — so zero-delay entries are
/// never conflated with one-cycle delays.
#[test]
fn bucket_assignment_at_the_edges() {
    // 0 and 1 must not share a bucket.
    assert_eq!(Histogram::bucket_index(0), 0);
    assert_eq!(Histogram::bucket_index(1), 1);
    // Each power of two opens a new bucket; its predecessor closes one.
    for k in 1..64 {
        let p = 1u64 << k;
        assert_eq!(Histogram::bucket_index(p), k + 1, "2^{k} opens bucket {}", k + 1);
        assert_eq!(Histogram::bucket_index(p - 1), k, "2^{k}-1 closes bucket {k}");
    }
    // The extremes land inside the table (no out-of-range panic).
    assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(BUCKETS, 65, "0, then one bucket per bit width");
    // Bucket bounds are self-consistent at the edges.
    assert_eq!((Histogram::bucket_lo(0), Histogram::bucket_hi(0)), (0, 0));
    assert_eq!((Histogram::bucket_lo(1), Histogram::bucket_hi(1)), (1, 1));
    assert_eq!(Histogram::bucket_hi(BUCKETS - 1), u64::MAX);
}

/// Recording the edge samples must keep every summary statistic finite and
/// exact: count, sum, max, quantile bounds, and merge all behave at 0 and
/// `u64::MAX`.
#[test]
fn edge_samples_survive_summaries_and_merge() {
    let mut h = Histogram::new();
    h.record(0);
    h.record(0);
    h.record(u64::MAX);
    assert_eq!(h.count(), 3);
    assert_eq!(h.max(), u64::MAX);
    // Sum saturates rather than wrapping (two zeros contribute nothing).
    assert_eq!(h.sum(), u64::MAX);
    // Quantiles: the lower half is exactly the zero bucket, the top lands
    // in the u64::MAX bucket whose upper bound is u64::MAX itself.
    assert_eq!(h.quantile_hi(0.5), 0);
    assert_eq!(h.quantile_hi(1.0), u64::MAX);
    // Merge with an all-zeros histogram preserves the edge buckets.
    let mut zeros = Histogram::new();
    zeros.record_n(0, 5);
    let mut merged = zeros.clone();
    merged.merge(&h);
    assert_eq!(merged.count(), 8);
    assert_eq!(merged.max(), u64::MAX);
    assert_eq!(merged.quantile_hi(0.5), 0);
}

/// The property generators above are seed-deterministic: replaying the
/// same seed reproduces the same histogram bit-for-bit (the contract the
/// failing-input reports rely on).
#[test]
fn generators_replay_from_their_seed() {
    for seed in [0u64, 1, 0xdead_beef] {
        let mut g1 = Gen::from_seed(seed);
        let mut g2 = Gen::from_seed(seed);
        assert_eq!(arb_histogram(&mut g1), arb_histogram(&mut g2), "seed {seed}");
    }
}
