//! Snapshot determinism under concurrent registration.
//!
//! The ledger digests a run's final metrics snapshot
//! (`ledger::Record::metrics_digest`), so two snapshots of the same
//! quiesced registry must be byte-identical no matter how many threads
//! raced to register and increment instruments, and identities must
//! come out sorted regardless of registration order. These tests hammer
//! a standalone `Registry` (not the process-global one, to avoid
//! cross-test interference) from N threads and then check both.

use levioso_support::metrics::Registry;
use levioso_support::Json;

const THREADS: usize = 8;
const ROUNDS: usize = 200;

/// Every thread registers the same identities in a different order and
/// increments them; afterwards two snapshots must be byte-identical and
/// every counter must have seen every increment (a registration race
/// that cloned a fresh instrument would drop counts).
#[test]
fn quiesced_snapshots_are_byte_identical_after_concurrent_hammering() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    // Rotate the registration order per thread so no two
                    // threads touch the identities in the same sequence.
                    let k = (t + i) % 4;
                    let shard = ["a", "b", "c", "d"][k];
                    registry.counter("stress_events_total", &[("shard", shard)]).inc();
                    registry.gauge("stress_depth", &[("shard", shard)]).add(1);
                    registry.timer("stress_micros", &[("shard", shard)]).record((i as u64) << k);
                    registry.counter("stress_events_total", &[]).inc();
                }
            });
        }
    });
    let first = registry.snapshot().emit_pretty();
    let second = registry.snapshot().emit_pretty();
    assert_eq!(first, second, "quiesced snapshots must be byte-identical");
    // No increment was lost to a registration race.
    assert_eq!(registry.counter_value("stress_events_total", &[]), (THREADS * ROUNDS) as u64);
    let per_shard: u64 = ["a", "b", "c", "d"]
        .iter()
        .map(|s| registry.counter_value("stress_events_total", &[("shard", s)]))
        .sum();
    assert_eq!(per_shard, (THREADS * ROUNDS) as u64);
    let timer_count: u64 = ["a", "b", "c", "d"]
        .iter()
        .map(|s| registry.timer_snapshot("stress_micros", &[("shard", s)]).unwrap().count())
        .sum();
    assert_eq!(timer_count, (THREADS * ROUNDS) as u64);
}

/// Label sets (identities) in each snapshot section come out sorted,
/// whatever order the racing threads registered them in.
#[test]
fn snapshot_identities_stay_sorted_under_racing_registration() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..ROUNDS {
                    // Thread-dependent orderings over a shared identity set.
                    let n = ((t * 31 + i * 7) % 16).to_string();
                    registry.counter("race_total", &[("bucket", &n)]).inc();
                    registry.gauge("race_gauge", &[("bucket", &n)]).set(i as i64);
                    registry.timer("race_micros", &[("bucket", &n)]).record(i as u64);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    for section in ["counters", "gauges", "timers"] {
        let Some(Json::Obj(pairs)) = snapshot.get(section) else {
            panic!("snapshot is missing the {section} object");
        };
        assert_eq!(pairs.len(), 16, "all 16 identities registered in {section}");
        let keys: Vec<&String> = pairs.iter().map(|(k, _)| k).collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "{section} identities must be strictly sorted, got {keys:?}"
        );
    }
}
