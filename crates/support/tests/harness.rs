//! Integration tests for `levioso-support` from an external crate's point
//! of view: the `props!` macro surface, PRNG determinism and stream
//! splitting, the JSON round trip on edge values, the promised
//! failing-input report from the property harness, the worker pool's
//! ordering/panic contract, and the benchmark runner's two modes.

use levioso_support::bench::Bench;
use levioso_support::check::{try_run, Config};
use levioso_support::{Gen, Json, Pool, Rng, SplitMix64, Xoshiro256pp};

levioso_support::props! {
    cases = 64;

    /// The macro surface compiles outside the crate and draws are in range.
    fn macro_surface_draws_are_in_range(g) {
        let v = g.i64_in(-7..7);
        g.note("v", &v);
        assert!((-7..7).contains(&v));
        let w = *g.pick(&[1u8, 2, 3]);
        assert!((1..=3).contains(&w));
    }

    /// JSON survives emit→parse for randomized nested documents.
    fn json_random_round_trip(g) {
        fn arb_json(g: &mut Gen, depth: u32) -> Json {
            let max = if depth == 0 { 5 } else { 7 };
            match g.usize_in(0..max) {
                0 => Json::Null,
                1 => Json::Bool(g.bool_any()),
                2 => Json::I64(g.i64_any()),
                3 => Json::F64((g.i64_in(-1_000_000..1_000_000) as f64) / 128.0),
                4 => {
                    let len = g.usize_in(0..8);
                    Json::Str((0..len).map(|_| *g.pick(&['a', '"', '\\', '\n', '🦀', '\u{1}'])).collect())
                }
                5 => {
                    let len = g.usize_in(0..4);
                    Json::Arr((0..len).map(|_| arb_json(g, depth - 1)).collect())
                }
                _ => {
                    let len = g.usize_in(0..4);
                    Json::Obj(
                        (0..len).map(|i| (format!("k{i}"), arb_json(g, depth - 1))).collect(),
                    )
                }
            }
        }
        let v = arb_json(g, 3);
        g.note("json", &v);
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
        assert_eq!(Json::parse(&v.emit_pretty()).unwrap(), v);
    }
}

#[test]
fn prng_streams_are_deterministic_across_construction() {
    let mut a = Xoshiro256pp::seed_from_u64(0xfeed);
    let first: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
    let mut b = Xoshiro256pp::seed_from_u64(0xfeed);
    assert_eq!(first, (0..32).map(|_| b.next_u64()).collect::<Vec<_>>());
}

#[test]
fn split_streams_are_independent_and_reproducible() {
    let mut parent1 = Xoshiro256pp::seed_from_u64(1);
    let mut parent2 = Xoshiro256pp::seed_from_u64(1);
    let mut child1 = parent1.split();
    let mut child2 = parent2.split();
    // Same split point → same child stream.
    let c1: Vec<u64> = (0..16).map(|_| child1.next_u64()).collect();
    let c2: Vec<u64> = (0..16).map(|_| child2.next_u64()).collect();
    assert_eq!(c1, c2);
    // Child and post-split parent streams do not collide.
    let p1: Vec<u64> = (0..16).map(|_| parent1.next_u64()).collect();
    assert!(c1.iter().zip(&p1).all(|(a, b)| a != b));
    // A split at a later stream position yields a different child.
    let mut later_child = parent2.split();
    assert_ne!(c1[0], later_child.next_u64());
}

#[test]
fn splitmix_mix_is_a_pure_function() {
    assert_eq!(SplitMix64::mix(123), SplitMix64::mix(123));
    assert_ne!(SplitMix64::mix(123), SplitMix64::mix(124));
}

#[test]
fn json_edge_values_round_trip() {
    for v in [
        Json::I64(i64::MIN),
        Json::I64(i64::MAX),
        Json::F64(f64::MIN_POSITIVE),
        Json::F64(f64::MAX),
        Json::F64(-0.0),
        Json::Str("\u{0}\u{1f}\"\\/\n\r\t".into()),
        Json::obj([("nested", Json::obj([("deeper", Json::Arr(vec![Json::Null]))]))]),
    ] {
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
    }
}

#[test]
fn known_false_property_reports_its_failing_input() {
    let report = try_run("sum_is_small", &Config::new(64), |g| {
        let xs: Vec<i64> = (0..4).map(|_| g.i64_in(0..100)).collect();
        g.note("xs", &xs);
        let sum: i64 = xs.iter().sum();
        assert!(sum < 100, "sum {sum} exceeds the bound");
    })
    .expect_err("four draws from 0..100 regularly sum past 100");
    // The report names the property, carries the noted input, the replay
    // seed, and the original assertion text.
    assert!(report.contains("property `sum_is_small` failed"), "{report}");
    assert!(report.contains("input `xs` = ["), "{report}");
    assert!(report.contains("replay: Config::new(1).with_seed(0x"), "{report}");
    assert!(report.contains("exceeds the bound"), "{report}");
}

#[test]
fn reported_replay_seed_reproduces_the_failure() {
    let config = Config::new(64);
    let prop = |g: &mut Gen| {
        let x = g.i64_in(0..1000);
        g.note("x", &x);
        assert!(x < 900, "x = {x}");
    };
    let report = try_run("x_below_900", &config, prop).expect_err("~10% of draws fail");
    // Parse the case seed back out of the report and replay just that case.
    let seed_hex = report
        .split("with_seed(0x")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .expect("report contains a replay seed");
    let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).expect("hex seed");
    let replay = try_run("x_below_900_replay", &Config::new(1).with_seed(seed), prop)
        .expect_err("replaying the failing seed fails again");
    assert!(replay.contains("case 0/1"), "{replay}");
}

#[test]
fn pool_results_are_identical_at_any_width() {
    // Do enough per-job work that wide pools genuinely interleave.
    let jobs: Vec<u64> = (0..64).collect();
    let work = |i: usize, &seed: &u64| {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..1000).fold(i as u64, |acc, _| acc.wrapping_add(rng.next_u64()))
    };
    let serial = Pool::new(1).run(&jobs, work);
    for width in [2, 4, 8, 64] {
        assert_eq!(Pool::new(width).run(&jobs, work), serial, "width {width}");
    }
}

#[test]
fn pool_handles_an_empty_job_list() {
    let jobs: Vec<i32> = Vec::new();
    assert!(Pool::new(8).run(&jobs, |_, &j| j).is_empty());
}

#[test]
fn pool_propagates_a_worker_panic_with_its_payload() {
    let jobs: Vec<usize> = (0..16).collect();
    let outcome = std::panic::catch_unwind(|| {
        Pool::new(4).run(&jobs, |_, &j| {
            if j == 9 {
                panic!("job {j} failed");
            }
            j
        })
    });
    let payload = outcome.expect_err("the worker panic must reach the caller");
    let text = payload.downcast_ref::<String>().expect("string payload");
    assert_eq!(text, "job 9 failed");
}

#[test]
fn bench_defaults_to_smoke_mode_under_cargo_test() {
    // cargo test never passes --bench, so each body runs exactly once.
    let mut bench = Bench::from_args();
    let mut calls = 0;
    let mut group = bench.group("harness");
    group.sample_size(50).bench_function("counted", |b| b.iter(|| calls += 1));
    group.finish();
    assert_eq!(calls, 1);
}

#[test]
fn bench_full_mode_collects_samples_and_reruns_setup() {
    let mut bench = Bench::full();
    let mut setups = 0;
    let mut runs = 0;
    bench.bench_function("batched", |b| {
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| {
                runs += 1;
                v.len()
            },
            levioso_support::bench::BatchSize::SmallInput,
        )
    });
    // Default sample size 20, plus one untimed warmup; every sample gets a
    // fresh setup product.
    assert_eq!(runs, 21);
    assert_eq!(setups, runs);
}
