//! Integration tests for `levioso-support` from an external crate's point
//! of view: the `props!` macro surface, PRNG determinism and stream
//! splitting, the JSON round trip on edge values, and the promised
//! failing-input report from the property harness.

use levioso_support::check::{try_run, Config};
use levioso_support::{Gen, Json, Rng, SplitMix64, Xoshiro256pp};

levioso_support::props! {
    cases = 64;

    /// The macro surface compiles outside the crate and draws are in range.
    fn macro_surface_draws_are_in_range(g) {
        let v = g.i64_in(-7..7);
        g.note("v", &v);
        assert!((-7..7).contains(&v));
        let w = *g.pick(&[1u8, 2, 3]);
        assert!((1..=3).contains(&w));
    }

    /// JSON survives emit→parse for randomized nested documents.
    fn json_random_round_trip(g) {
        fn arb_json(g: &mut Gen, depth: u32) -> Json {
            let max = if depth == 0 { 5 } else { 7 };
            match g.usize_in(0..max) {
                0 => Json::Null,
                1 => Json::Bool(g.bool_any()),
                2 => Json::I64(g.i64_any()),
                3 => Json::F64((g.i64_in(-1_000_000..1_000_000) as f64) / 128.0),
                4 => {
                    let len = g.usize_in(0..8);
                    Json::Str((0..len).map(|_| *g.pick(&['a', '"', '\\', '\n', '🦀', '\u{1}'])).collect())
                }
                5 => {
                    let len = g.usize_in(0..4);
                    Json::Arr((0..len).map(|_| arb_json(g, depth - 1)).collect())
                }
                _ => {
                    let len = g.usize_in(0..4);
                    Json::Obj(
                        (0..len).map(|i| (format!("k{i}"), arb_json(g, depth - 1))).collect(),
                    )
                }
            }
        }
        let v = arb_json(g, 3);
        g.note("json", &v);
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
        assert_eq!(Json::parse(&v.emit_pretty()).unwrap(), v);
    }
}

#[test]
fn prng_streams_are_deterministic_across_construction() {
    let mut a = Xoshiro256pp::seed_from_u64(0xfeed);
    let first: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
    let mut b = Xoshiro256pp::seed_from_u64(0xfeed);
    assert_eq!(first, (0..32).map(|_| b.next_u64()).collect::<Vec<_>>());
}

#[test]
fn split_streams_are_independent_and_reproducible() {
    let mut parent1 = Xoshiro256pp::seed_from_u64(1);
    let mut parent2 = Xoshiro256pp::seed_from_u64(1);
    let mut child1 = parent1.split();
    let mut child2 = parent2.split();
    // Same split point → same child stream.
    let c1: Vec<u64> = (0..16).map(|_| child1.next_u64()).collect();
    let c2: Vec<u64> = (0..16).map(|_| child2.next_u64()).collect();
    assert_eq!(c1, c2);
    // Child and post-split parent streams do not collide.
    let p1: Vec<u64> = (0..16).map(|_| parent1.next_u64()).collect();
    assert!(c1.iter().zip(&p1).all(|(a, b)| a != b));
    // A split at a later stream position yields a different child.
    let mut later_child = parent2.split();
    assert_ne!(c1[0], later_child.next_u64());
}

#[test]
fn splitmix_mix_is_a_pure_function() {
    assert_eq!(SplitMix64::mix(123), SplitMix64::mix(123));
    assert_ne!(SplitMix64::mix(123), SplitMix64::mix(124));
}

#[test]
fn json_edge_values_round_trip() {
    for v in [
        Json::I64(i64::MIN),
        Json::I64(i64::MAX),
        Json::F64(f64::MIN_POSITIVE),
        Json::F64(f64::MAX),
        Json::F64(-0.0),
        Json::Str("\u{0}\u{1f}\"\\/\n\r\t".into()),
        Json::obj([("nested", Json::obj([("deeper", Json::Arr(vec![Json::Null]))]))]),
    ] {
        let text = v.emit();
        assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
    }
}

#[test]
fn known_false_property_reports_its_failing_input() {
    let report = try_run("sum_is_small", &Config::new(64), |g| {
        let xs: Vec<i64> = (0..4).map(|_| g.i64_in(0..100)).collect();
        g.note("xs", &xs);
        let sum: i64 = xs.iter().sum();
        assert!(sum < 100, "sum {sum} exceeds the bound");
    })
    .expect_err("four draws from 0..100 regularly sum past 100");
    // The report names the property, carries the noted input, the replay
    // seed, and the original assertion text.
    assert!(report.contains("property `sum_is_small` failed"), "{report}");
    assert!(report.contains("input `xs` = ["), "{report}");
    assert!(report.contains("replay: Config::new(1).with_seed(0x"), "{report}");
    assert!(report.contains("exceeds the bound"), "{report}");
}

#[test]
fn reported_replay_seed_reproduces_the_failure() {
    let config = Config::new(64);
    let prop = |g: &mut Gen| {
        let x = g.i64_in(0..1000);
        g.note("x", &x);
        assert!(x < 900, "x = {x}");
    };
    let report = try_run("x_below_900", &config, prop).expect_err("~10% of draws fail");
    // Parse the case seed back out of the report and replay just that case.
    let seed_hex = report
        .split("with_seed(0x")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .expect("report contains a replay seed");
    let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).expect("hex seed");
    let replay = try_run("x_below_900_replay", &Config::new(1).with_seed(seed), prop)
        .expect_err("replaying the failing seed fails again");
    assert!(replay.contains("case 0/1"), "{replay}");
}
