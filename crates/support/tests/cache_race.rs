//! Pins the concurrent-store discipline the cache header promises:
//! stores go through a unique temp file + `rename`, so two writers
//! racing on the same key always leave one *complete* envelope — a
//! reader may observe either writer's result, but never a torn or
//! integrity-broken one.

use levioso_support::cache::{stable_hash_hex, Cache};
use levioso_support::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("levioso-cache-race-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp cache root");
    dir
}

/// A result document big enough that a torn write would be observable
/// (several kilobytes of array payload, not a one-line object).
fn result_doc(writer: i64) -> Json {
    let cells: Vec<Json> = (0..512)
        .map(|i| Json::obj([("cell", Json::I64(i)), ("writer", Json::I64(writer))]))
        .collect();
    Json::obj([("writer", Json::I64(writer)), ("cells", Json::Arr(cells))])
}

#[test]
fn racing_stores_always_leave_a_complete_envelope() {
    const ROUNDS: usize = 32;
    let cache = Cache::new(tmpdir("store"), "v1");
    let input = "shared-cell-input";
    let key_file = format!("{}.json", stable_hash_hex(input.as_bytes()));
    let docs = [result_doc(1), result_doc(2)];

    for round in 0..ROUNDS {
        // Each round: two threads store different payloads for the same
        // key at the same moment, while a third hammers lookups.
        let barrier = Arc::new(Barrier::new(3));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for doc in &docs {
                let cache = cache.clone();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    cache.store("cell", input, doc, 100);
                });
            }
            let reader = cache.clone();
            let stop_reading = Arc::clone(&stop);
            let barrier_r = Arc::clone(&barrier);
            let observed = scope.spawn(move || {
                barrier_r.wait();
                let mut hits = Vec::new();
                while !stop_reading.load(Ordering::Relaxed) {
                    if let Some(doc) = reader.lookup("cell", input) {
                        hits.push(doc);
                    }
                }
                hits
            });
            // Scope joins the two writers when this closure returns; tell
            // the reader to wind down first so the join terminates.
            std::thread::sleep(std::time::Duration::from_millis(1));
            stop.store(true, Ordering::Relaxed);
            for doc in observed.join().expect("reader thread") {
                assert!(
                    docs.contains(&doc),
                    "round {round}: lookup returned a document neither writer stored"
                );
            }
        });

        // Post-race: exactly one complete, integrity-clean envelope.
        let survivor = cache.lookup("cell", input);
        assert!(
            docs.iter().any(|d| survivor.as_ref() == Some(d)),
            "round {round}: surviving envelope is not a complete write (got {survivor:?})"
        );
        assert_eq!(cache.report().poisoned, 0, "round {round}: a racing store tore an envelope");
        let on_disk: Vec<String> = std::fs::read_dir(cache.dir())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(on_disk, vec![key_file.clone()], "round {round}: stray temp files left behind");
    }
}

#[test]
fn racing_distinct_keys_never_interfere() {
    let cache = Cache::new(tmpdir("distinct"), "v1");
    let barrier = Arc::new(Barrier::new(8));
    std::thread::scope(|scope| {
        for t in 0..8i64 {
            let cache = cache.clone();
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let input = format!("cell-input-{t}");
                barrier.wait();
                for _ in 0..16 {
                    cache.store("cell", &input, &result_doc(t), 10);
                    assert_eq!(cache.lookup("cell", &input), Some(result_doc(t)));
                }
            });
        }
    });
    assert_eq!(cache.report().poisoned, 0);
    assert_eq!(cache.cell_count(), 8);
}
