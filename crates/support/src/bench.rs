//! A criterion-free wall-clock benchmark runner.
//!
//! Mirrors the small slice of the criterion surface the workspace uses —
//! groups, `bench_function`, `iter`, `iter_batched`, per-group sample
//! sizes — measured with `std::time::Instant` and reported as a
//! min/median/mean table.
//!
//! Cargo invokes bench targets (`harness = false`) in two modes:
//!
//! * `cargo bench` passes `--bench`: full sampling with warmup;
//! * `cargo test` runs the target too (and passes `--test` on newer
//!   cargos): every benchmark body executes **once**, as a smoke test,
//!   so `cargo test -q` stays fast while still compiling and exercising
//!   every benchmark.
//!
//! ```no_run
//! use levioso_support::bench::Bench;
//!
//! let mut bench = Bench::from_args();
//! let mut group = bench.group("demo");
//! group.bench_function("noop", |b| b.iter(|| 2 + 2));
//! group.finish();
//! bench.finish();
//! ```

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup, mirroring criterion's enum. The
/// runner times each routine invocation individually, so the variants
/// only document intent; all behave identically here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup is cheap relative to the routine.
    SmallInput,
    /// Large inputs: setup allocates significantly.
    LargeInput,
    /// One setup per iteration, always.
    PerIteration,
}

/// Execution mode, decided by the command line cargo passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full sampling (under `cargo bench`).
    Bench,
    /// One shot per benchmark (under `cargo test`).
    Smoke,
}

/// The top-level runner: owns the mode and the accumulated report.
#[derive(Debug)]
pub struct Bench {
    mode: Mode,
    results: Vec<(String, Stats)>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    min: Duration,
    median: Duration,
    mean: Duration,
    samples: usize,
}

impl Bench {
    /// Builds the runner from the process arguments: full sampling only
    /// when cargo passed `--bench`, smoke mode otherwise (as under
    /// `cargo test`).
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--bench");
        Bench { mode: if full { Mode::Bench } else { Mode::Smoke }, results: Vec::new() }
    }

    /// Forces full sampling regardless of arguments.
    pub fn full() -> Self {
        Bench { mode: Mode::Bench, results: Vec::new() }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group { bench: self, name: name.into(), sample_size: 20 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut group = self.group("");
        group.bench_function(name, f);
        group.finish();
    }

    /// Prints the report table.
    pub fn finish(self) {
        if self.results.is_empty() {
            println!("no benchmarks ran");
            return;
        }
        let label = match self.mode {
            Mode::Bench => "wall-clock per iteration",
            Mode::Smoke => "smoke run (1 shot; use `cargo bench` to measure)",
        };
        println!("\n## microbenchmarks — {label}\n");
        let width = self.results.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        println!(
            "{:width$}  {:>12}  {:>12}  {:>12}  {:>7}",
            "benchmark", "min", "median", "mean", "samples"
        );
        for (name, s) in &self.results {
            println!(
                "{:width$}  {:>12}  {:>12}  {:>12}  {:>7}",
                name,
                fmt_duration(s.min),
                fmt_duration(s.median),
                fmt_duration(s.mean),
                s.samples
            );
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let samples = match self.bench.mode {
            Mode::Bench => self.sample_size,
            Mode::Smoke => 1,
        };
        let mut b =
            Bencher { samples, warmup: self.bench.mode == Mode::Bench, timings: Vec::new() };
        f(&mut b);
        let full_name =
            if self.name.is_empty() { id.to_string() } else { format!("{}/{id}", self.name) };
        assert!(
            !b.timings.is_empty(),
            "benchmark `{full_name}` never called iter()/iter_batched()"
        );
        self.bench.results.push((full_name, summarize(&mut b.timings)));
    }

    /// Closes the group (report printing happens in [`Bench::finish`]).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    warmup: bool,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample (plus one untimed warmup call in
    /// full mode).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` on a fresh `setup()` product per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        if self.warmup {
            let input = setup();
            let _ = routine(input);
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.timings.push(start.elapsed());
            drop(out);
        }
    }
}

fn summarize(timings: &mut [Duration]) -> Stats {
    timings.sort_unstable();
    let n = timings.len();
    let total: Duration = timings.iter().sum();
    Stats { min: timings[0], median: timings[n / 2], mean: total / n as u32, samples: n }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut bench = Bench { mode: Mode::Smoke, results: Vec::new() };
        let mut calls = 0;
        let mut group = bench.group("g");
        group.sample_size(50).bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert_eq!(calls, 1);
        assert_eq!(bench.results.len(), 1);
        assert_eq!(bench.results[0].0, "g/f");
    }

    #[test]
    fn full_mode_collects_requested_samples() {
        let mut bench = Bench::full();
        let mut calls = 0;
        let mut group = bench.group("g");
        group.sample_size(5).bench_function("f", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 5 samples + 1 warmup.
        assert_eq!(calls, 6);
        assert_eq!(bench.results[0].1.samples, 5);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
