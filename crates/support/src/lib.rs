//! # levioso-support — the hermetic-build substrate
//!
//! This workspace builds with **zero external crates** (the build
//! environment has no registry access; see DESIGN.md, "Hermetic build
//! policy"). Everything the repo previously pulled from crates.io lives
//! here instead, implemented from scratch and sized to exactly what the
//! workspace needs:
//!
//! | module | replaces | provides |
//! |---|---|---|
//! | [`rng`] | `rand` | SplitMix64 + xoshiro256++, seedable, stream-splittable |
//! | [`json`] | `serde`/`serde_json` | a small JSON value type with emit + parse |
//! | [`check`] | `proptest` | seeded generators, an iteration budget, failing-input reports |
//! | [`bench`] | `criterion` | a wall-clock benchmark runner with a compatible surface |
//! | [`pool`] | `rayon` | a work-stealing worker pool with order-stable, panic-transparent fan-out |
//! | [`cache`] | — | a content-addressed on-disk cell cache for incremental sweeps |
//! | [`memcache`] | — | an in-memory hot tier layered above [`cache`] for warm server processes |
//! | [`jobdir`] | — | the job-directory request/response protocol for `all --serve` |
//! | [`histogram`] | `hdrhistogram` | fixed-footprint log2-bucketed latency histograms |
//! | [`metrics`] | `prometheus` | lock-free counters/gauges/timers with deterministic JSON snapshots |
//! | [`ledger`] | — | the append-only per-run perf ledger and its regression sentinel |
//!
//! All randomness is deterministic: the same seed always reproduces the
//! same stream, on every platform, so property tests and workload inputs
//! are bit-stable across runs and machines.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod cache;
pub mod check;
pub mod histogram;
pub mod jobdir;
pub mod json;
pub mod ledger;
pub mod memcache;
pub mod metrics;
pub mod pool;
pub mod rng;

pub use bench::{BatchSize, Bench, Bencher};
pub use cache::{Cache, CacheReport};
pub use check::{Config, Gen};
pub use histogram::Histogram;
pub use json::{Json, JsonError};
pub use memcache::TieredCache;
pub use metrics::Registry;
pub use pool::Pool;
pub use rng::{Rng, SplitMix64, Xoshiro256pp};
