//! A content-addressed on-disk cache for sweep cells.
//!
//! Every bench/nisec sweep decomposes into independent cells — one
//! simulation (or simulation pair) each — whose outputs are pure functions
//! of their serialized inputs *plus the simulator's semantics*. This module
//! gives those cells a persistent identity:
//!
//! * the **key** is a stable 128-bit content hash of the cell's full input
//!   description (workload program text, memory image, scheme, config,
//!   seeds — whatever the caller serializes);
//! * the **namespace** is a sim-core *fingerprint* directory (derived from
//!   `levioso_uarch::CORE_REV`), so bumping the core revision invalidates
//!   every cell at once without deleting anything — old-fingerprint cells
//!   stay on disk and keep serving *cost estimates* for the scheduler;
//! * the **value** is a [`Json`] result document wrapped in an envelope
//!   that stores the full input text, an integrity hash over
//!   `input + result`, and the cell's measured compute cost
//!   (`busy_nanos`).
//!
//! Correctness properties (pinned by tests here and in `levioso-bench`):
//!
//! * a lookup whose stored input text differs from the requested input
//!   (hash collision, hand-edited file) is a **miss**, never a wrong hit;
//! * a lookup whose integrity hash does not match the stored
//!   `input + result` bytes (tampering, torn write, bit rot) is counted as
//!   **poisoned** and recomputed;
//! * stores write to a unique temp file and `rename` into place, so
//!   concurrent writers of the same key (two sweeps racing on a shared
//!   cell) leave one complete envelope, never a torn one;
//! * a disabled cache ([`Cache::disabled`], `LEVIOSO_SWEEP_CACHE=off`)
//!   never touches the filesystem — every lookup is a miss and every store
//!   a no-op — so cached and uncached runs of a deterministic sweep are
//!   byte-identical by construction.

use crate::json::Json;
use crate::metrics;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Envelope schema tag; bump if the on-disk layout changes.
const SCHEMA: &str = "levioso-sweep-cell/1";

/// 64-bit FNV-1a over a byte stream, from `seed` (pass [`FNV_OFFSET`] for
/// the standard offset basis). Stable across platforms and releases — the
/// on-disk cache key depends on it.
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Second seed for the independent hash lane (the offset basis of the
/// FNV-0 variant of "chongo <Landon Curt Noll>"; any fixed odd constant
/// works — it only needs to differ from [`FNV_OFFSET`]).
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;

/// 128 bits of content hash as 32 lowercase hex characters: two
/// independently seeded FNV-1a lanes. Collisions are additionally guarded
/// by the stored-input comparison in [`Cache::lookup`], so this only needs
/// to make accidental filename collisions vanishingly rare.
pub fn stable_hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}{:016x}", fnv1a64(FNV_OFFSET, bytes), fnv1a64(FNV_OFFSET_B, bytes))
}

/// Point-in-time snapshot of a cache's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheReport {
    /// Lookups served from any tier (disk, plus the in-memory hot tier
    /// when one is layered above — see [`crate::memcache`]).
    pub hits: u64,
    /// Subset of `hits` served from the in-memory hot tier without any
    /// filesystem I/O. Always zero for a plain on-disk [`Cache`].
    pub l1_hits: u64,
    /// Lookups that found nothing valid (cold, invalidated, collided).
    pub misses: u64,
    /// Subset of misses where an envelope existed but failed its
    /// integrity hash — tampering or torn data, recomputed from scratch.
    pub poisoned: u64,
    /// Envelopes written.
    pub stores: u64,
    /// Human labels of every missed cell, sorted (the "which cells did
    /// this change invalidate" report).
    pub miss_labels: Vec<String>,
}

impl CacheReport {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// One-line human summary: the hit/miss split CI logs and asserts on.
    /// The hot-tier share appears only when one served lookups, so plain
    /// disk-cache runs keep their historical summary line byte-for-byte.
    pub fn summary(&self, fingerprint: &str) -> String {
        let hot = if self.l1_hits > 0 {
            format!("{} from hot tier, ", self.l1_hits)
        } else {
            String::new()
        };
        format!(
            "sweep-cache: {} hits, {} misses, {} poisoned ({}{} lookups, fingerprint {})",
            self.hits,
            self.misses,
            self.poisoned,
            hot,
            self.lookups(),
            fingerprint
        )
    }
}

/// The cache's counters are [`metrics::Counter`] handles. A fresh cache
/// gets detached counters (private, per-instance — what every test and
/// ad-hoc cache sees); [`Cache::with_metrics`] swaps in counters
/// registered in the global telemetry registry, so the process-wide
/// caches feed [`CacheReport`] and the `levioso-metrics/1` snapshot
/// from the *same* atomics. `heals` (stores that replaced an existing
/// envelope — the poison-recovery path) is telemetry-only and not part
/// of [`CacheReport`].
#[derive(Debug, Default)]
struct Counters {
    hits: metrics::Counter,
    misses: metrics::Counter,
    poisoned: metrics::Counter,
    stores: metrics::Counter,
    heals: metrics::Counter,
    miss_labels: Mutex<Vec<String>>,
}

impl Counters {
    /// Counters registered in the global registry under
    /// `sweep_cache_*_total{cache=<domain>}`. Disk hits register as
    /// `l2_hits`: the on-disk cache is the L2 tier under
    /// [`crate::memcache::TieredCache`], and a standalone disk cache is
    /// just an L2 with no L1 above it.
    fn registered(domain: &str) -> Counters {
        let labels = [("cache", domain)];
        Counters {
            hits: metrics::counter("sweep_cache_l2_hits_total", &labels),
            misses: metrics::counter("sweep_cache_misses_total", &labels),
            poisoned: metrics::counter("sweep_cache_poisoned_total", &labels),
            stores: metrics::counter("sweep_cache_stores_total", &labels),
            heals: metrics::counter("sweep_cache_heals_total", &labels),
            miss_labels: Mutex::new(Vec::new()),
        }
    }
}

/// A content-addressed cell cache rooted at `root/<fingerprint>/`.
///
/// Cloning is cheap and shares the counters, so one logical cache can be
/// consulted from many sweep workers.
#[derive(Debug, Clone)]
pub struct Cache {
    root: PathBuf,
    fingerprint: String,
    enabled: bool,
    counters: Arc<Counters>,
    /// Lazily built filename → busy-nanos index over every *sibling*
    /// fingerprint directory, shared by clones. Built at most once per
    /// logical cache; see [`Cache::sibling_index`].
    sibling_costs: Arc<OnceLock<HashMap<String, u64>>>,
}

impl Cache {
    /// An enabled cache at `root/<fingerprint>/`.
    pub fn new(root: impl Into<PathBuf>, fingerprint: impl Into<String>) -> Cache {
        Cache {
            root: root.into(),
            fingerprint: fingerprint.into(),
            enabled: true,
            counters: Arc::default(),
            sibling_costs: Arc::new(OnceLock::new()),
        }
    }

    /// A cache that never hits and never writes. Lookups still count as
    /// misses so reports stay meaningful.
    pub fn disabled() -> Cache {
        Cache {
            root: PathBuf::new(),
            fingerprint: String::from("disabled"),
            enabled: false,
            counters: Arc::default(),
            sibling_costs: Arc::new(OnceLock::new()),
        }
    }

    /// Cache configured by the environment: rooted at
    /// `LEVIOSO_SWEEP_CACHE_DIR` (default [`default_root`]), disabled
    /// entirely when `LEVIOSO_SWEEP_CACHE` is `off`/`0`.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `LEVIOSO_SWEEP_CACHE` value — a typo that
    /// silently left caching on (or off) would change what a CI run
    /// measures.
    pub fn from_env(fingerprint: impl Into<String>) -> Cache {
        match std::env::var("LEVIOSO_SWEEP_CACHE").ok().as_deref() {
            Some("off") | Some("0") => return Cache::disabled(),
            None | Some("") | Some("on") | Some("1") => {}
            Some(other) => panic!(
                "unknown LEVIOSO_SWEEP_CACHE value {other:?}: expected unset, \"on\"/\"1\", or \
                 \"off\"/\"0\""
            ),
        }
        let root = std::env::var("LEVIOSO_SWEEP_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| default_root());
        Cache::new(root, fingerprint)
    }

    /// Rebinds the counters to the global telemetry registry under
    /// `sweep_cache_*_total{cache=<domain>}` (consuming builder, applied
    /// at construction of the process-wide caches). Registered counters
    /// are shared by identity: every cache bound to the same domain —
    /// and every [`CacheReport`] taken from one — reads the exact
    /// atomics the `levioso-metrics/1` snapshot exports, which is what
    /// lets a serve session's `status` snapshot reconcile against
    /// per-response cache splits.
    pub fn with_metrics(mut self, domain: &str) -> Cache {
        self.counters = Arc::new(Counters::registered(domain));
        self
    }

    /// Whether lookups can ever hit.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The sim-core fingerprint this cache is namespaced under.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The directory this cache's cells live in.
    pub fn dir(&self) -> PathBuf {
        self.root.join(&self.fingerprint)
    }

    fn cell_path(&self, input: &str) -> PathBuf {
        self.dir().join(format!("{}.json", stable_hash_hex(input.as_bytes())))
    }

    /// Integrity hash stored in (and checked against) an envelope: the
    /// input text plus the canonical emission of the result document.
    fn integrity_hash(input: &str, result: &Json) -> String {
        let mut bytes = input.as_bytes().to_vec();
        bytes.extend_from_slice(result.emit().as_bytes());
        stable_hash_hex(&bytes)
    }

    fn count_miss(&self, label: &str) {
        self.counters.misses.inc();
        self.counters.miss_labels.lock().expect("miss label lock").push(label.to_string());
    }

    /// Looks up the result for `input`. `label` is the human cell name
    /// recorded on a miss (e.g. `fig2:hash_join/levioso`).
    ///
    /// Returns the cached result document only when the stored envelope is
    /// (a) parseable, (b) for this exact input text, and (c) intact under
    /// the integrity hash. Anything else is a miss (and, for case (c), a
    /// poisoning) — the caller recomputes and re-stores.
    pub fn lookup(&self, label: &str, input: &str) -> Option<Json> {
        if !self.enabled {
            self.count_miss(label);
            return None;
        }
        let path = self.cell_path(input);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.count_miss(label);
            return None;
        };
        match Self::validate_envelope(&text, input) {
            Ok(result) => {
                self.counters.hits.inc();
                Some(result)
            }
            Err(poisoned) => {
                if poisoned {
                    self.counters.poisoned.inc();
                }
                self.count_miss(label);
                None
            }
        }
    }

    /// Validates one envelope against the requested input. `Ok(result)` on
    /// a clean hit; `Err(true)` when the envelope exists for this input but
    /// fails its integrity hash (poisoned); `Err(false)` for structural
    /// mismatches (unparseable, different input → treat as plain miss).
    fn validate_envelope(text: &str, input: &str) -> Result<Json, bool> {
        let doc = Json::parse(text).map_err(|_| true)?;
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(true);
        }
        match doc.get("input").and_then(Json::as_str) {
            // A different input under the same filename is a hash
            // collision, not corruption: miss, don't alarm.
            Some(stored) if stored != input => return Err(false),
            Some(_) => {}
            None => return Err(true),
        }
        let result = doc.get("result").ok_or(true)?;
        let stored_hash = doc.get("input_hash").and_then(Json::as_str).ok_or(true)?;
        if stored_hash != Self::integrity_hash(input, result) {
            return Err(true);
        }
        Ok(result.clone())
    }

    /// Persists `result` for `input`, recording the cell's measured
    /// compute cost. No-op when disabled; I/O errors are swallowed (a
    /// cache that cannot write degrades to recomputation, it never fails
    /// the sweep).
    pub fn store(&self, label: &str, input: &str, result: &Json, busy_nanos: u64) {
        if !self.enabled {
            return;
        }
        let envelope = Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("label", Json::str(label)),
            ("fingerprint", Json::str(&self.fingerprint)),
            ("input_hash", Json::str(Self::integrity_hash(input, result))),
            ("busy_nanos", Json::I64(busy_nanos.min(i64::MAX as u64) as i64)),
            ("input", Json::str(input)),
            ("result", result.clone()),
        ]);
        let dir = self.dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = self.cell_path(input);
        if path.exists() {
            // Replacing an existing envelope: the recompute-after-poison
            // (or racing-writer) path. Telemetry-only; the overwrite
            // itself is an ordinary store.
            self.counters.heals.inc();
        }
        let tmp =
            dir.join(format!(".tmp-{}-{:x}", std::process::id(), self.counters.stores.fetch_inc()));
        if std::fs::write(&tmp, envelope.emit_pretty()).is_ok()
            && std::fs::rename(&tmp, &path).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Estimated compute cost (busy nanoseconds) for `input`, from this
    /// fingerprint's stored cell or — when the cell was invalidated by a
    /// fingerprint bump — from any sibling fingerprint's cell with the
    /// same key (cells keep their filename across fingerprints, so a prior
    /// revision's measured cost still ranks the cell for scheduling).
    ///
    /// Advisory only: costs order work, they never touch results. The
    /// sibling scan runs **once per process** (per logical cache): the
    /// first cross-fingerprint estimate walks every sibling directory into
    /// an in-memory index, and every later estimate is a map probe.
    pub fn estimate_cost(&self, input: &str) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let file = format!("{}.json", stable_hash_hex(input.as_bytes()));
        if let Some(cost) = read_cost(&self.dir().join(&file)) {
            return Some(cost);
        }
        self.sibling_index().get(&file).copied()
    }

    /// The filename → cost index over sibling fingerprint directories,
    /// built on first use. Siblings are walked newest-looking first
    /// (sorted descending) with first-wins per filename, matching the
    /// pre-index scan order — deterministic, and exact order is irrelevant:
    /// any measured cost beats none. A fingerprint directory created
    /// *after* the index is built is invisible until the next process;
    /// acceptable because costs are advisory.
    fn sibling_index(&self) -> &HashMap<String, u64> {
        self.sibling_costs.get_or_init(|| {
            let mut siblings: Vec<PathBuf> = std::fs::read_dir(&self.root)
                .into_iter()
                .flatten()
                .flatten()
                .map(|e| e.path())
                .filter(|p| {
                    p.is_dir()
                        && p.file_name().and_then(|n| n.to_str()) != Some(self.fingerprint.as_str())
                })
                .collect();
            siblings.sort();
            let mut index = HashMap::new();
            for dir in siblings.iter().rev() {
                let Ok(entries) = std::fs::read_dir(dir) else { continue };
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_none_or(|x| x != "json") {
                        continue;
                    }
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
                    if index.contains_key(name) {
                        continue; // an earlier (newer-looking) sibling wins
                    }
                    if let Some(cost) = read_cost(&path) {
                        index.insert(name.to_string(), cost);
                    }
                }
            }
            index
        })
    }

    /// Number of cells currently persisted under this fingerprint (the
    /// `--resume` report).
    pub fn cell_count(&self) -> usize {
        if !self.enabled {
            return 0;
        }
        std::fs::read_dir(self.dir())
            .map(|rd| {
                rd.flatten().filter(|e| e.path().extension().is_some_and(|x| x == "json")).count()
            })
            .unwrap_or(0)
    }

    /// Snapshot of the counters, miss labels sorted for deterministic
    /// reporting.
    pub fn report(&self) -> CacheReport {
        let mut miss_labels = self.counters.miss_labels.lock().expect("miss label lock").clone();
        miss_labels.sort();
        CacheReport {
            hits: self.counters.hits.get(),
            l1_hits: 0,
            misses: self.counters.misses.get(),
            poisoned: self.counters.poisoned.get(),
            stores: self.counters.stores.get(),
            miss_labels,
        }
    }

    /// Zeroes the counters (between phases of a multi-sweep process).
    pub fn reset_counters(&self) {
        self.counters.hits.reset();
        self.counters.misses.reset();
        self.counters.poisoned.reset();
        self.counters.stores.reset();
        self.counters.heals.reset();
        self.counters.miss_labels.lock().expect("miss label lock").clear();
    }
}

/// Reads the `busy_nanos` field of an envelope without validating the
/// result payload (costs are advisory).
fn read_cost(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = Json::parse(&text).ok()?;
    let nanos = doc.get("busy_nanos")?.as_i64()?;
    u64::try_from(nanos).ok()
}

/// The workspace's shared cache root: `target/sweep-cache/` at the repo
/// root, regardless of working directory.
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/sweep-cache")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("levioso-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp cache root");
        dir
    }

    fn result_doc(v: i64) -> Json {
        Json::obj([("cycles", Json::I64(v))])
    }

    #[test]
    fn hash_is_pinned() {
        // The on-disk key format must never drift silently.
        assert_eq!(fnv1a64(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            stable_hash_hex(b"levioso"),
            format!(
                "{:016x}{:016x}",
                fnv1a64(FNV_OFFSET, b"levioso"),
                fnv1a64(FNV_OFFSET_B, b"levioso")
            )
        );
        assert_eq!(stable_hash_hex(b"x").len(), 32);
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let cache = Cache::new(tmpdir("roundtrip"), "v1");
        assert_eq!(cache.lookup("cell", "input-a"), None);
        cache.store("cell", "input-a", &result_doc(42), 1_000);
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(42)));
        let r = cache.report();
        assert_eq!((r.hits, r.misses, r.poisoned, r.stores), (1, 1, 0, 1));
        assert_eq!(r.miss_labels, vec!["cell".to_string()]);
    }

    #[test]
    fn different_input_same_key_never_hits() {
        let cache = Cache::new(tmpdir("inputs"), "v1");
        cache.store("a", "input-a", &result_doc(1), 0);
        assert_eq!(cache.lookup("b", "input-b"), None, "distinct input is a miss");
        assert_eq!(cache.lookup("a", "input-a"), Some(result_doc(1)));
    }

    #[test]
    fn tampered_result_is_poisoned_and_missed() {
        let cache = Cache::new(tmpdir("poison"), "v1");
        cache.store("cell", "input-a", &result_doc(42), 0);
        let path = cache.dir().join(format!("{}.json", stable_hash_hex(b"input-a")));
        let tampered = std::fs::read_to_string(&path).unwrap().replace("42", "43");
        assert_ne!(tampered, std::fs::read_to_string(&path).unwrap());
        std::fs::write(&path, tampered).unwrap();
        assert_eq!(cache.lookup("cell", "input-a"), None, "tampered cell must not hit");
        assert_eq!(cache.report().poisoned, 1);
        // Recompute + re-store heals it.
        cache.store("cell", "input-a", &result_doc(42), 0);
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(42)));
    }

    #[test]
    fn unparseable_envelope_is_poisoned() {
        let cache = Cache::new(tmpdir("garbage"), "v1");
        cache.store("cell", "input-a", &result_doc(7), 0);
        let path = cache.dir().join(format!("{}.json", stable_hash_hex(b"input-a")));
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(cache.lookup("cell", "input-a"), None);
        assert_eq!(cache.report().poisoned, 1);
    }

    #[test]
    fn fingerprint_bump_invalidates_everything_but_keeps_costs() {
        let root = tmpdir("bump");
        let v1 = Cache::new(&root, "v1");
        for i in 0..4 {
            v1.store(&format!("cell{i}"), &format!("input-{i}"), &result_doc(i), 500 + i as u64);
        }
        let v2 = Cache::new(&root, "v2");
        for i in 0..4i64 {
            assert_eq!(v2.lookup(&format!("cell{i}"), &format!("input-{i}")), None);
        }
        let r = v2.report();
        assert_eq!(r.misses, 4, "every cell dirty after a fingerprint bump");
        assert_eq!(r.hits, 0);
        assert_eq!(
            r.miss_labels,
            vec!["cell0".to_string(), "cell1".into(), "cell2".into(), "cell3".into()]
        );
        // ...but the prior revision's measured costs still rank the cells.
        assert_eq!(v2.estimate_cost("input-2"), Some(502));
        assert_eq!(v2.estimate_cost("never-stored"), None);
    }

    #[test]
    fn disabled_cache_touches_nothing() {
        let cache = Cache::disabled();
        cache.store("cell", "input", &result_doc(1), 0);
        assert_eq!(cache.lookup("cell", "input"), None);
        assert_eq!(cache.cell_count(), 0);
        assert_eq!(cache.estimate_cost("input"), None);
        let r = cache.report();
        assert_eq!((r.hits, r.misses, r.stores), (0, 1, 0));
    }

    #[test]
    fn cell_count_reflects_stores() {
        let cache = Cache::new(tmpdir("count"), "v1");
        assert_eq!(cache.cell_count(), 0);
        cache.store("a", "input-a", &result_doc(1), 0);
        cache.store("b", "input-b", &result_doc(2), 0);
        cache.store("a", "input-a", &result_doc(1), 0); // overwrite, not a new cell
        assert_eq!(cache.cell_count(), 2);
    }

    #[test]
    fn reset_counters_clears_the_report() {
        let cache = Cache::new(tmpdir("reset"), "v1");
        cache.lookup("cell", "input");
        cache.reset_counters();
        let r = cache.report();
        assert_eq!((r.hits, r.misses, r.poisoned, r.stores), (0, 0, 0, 0));
        assert!(r.miss_labels.is_empty());
    }

    #[test]
    fn summary_line_has_the_split() {
        let report = CacheReport {
            hits: 300,
            l1_hits: 0,
            misses: 16,
            poisoned: 1,
            stores: 16,
            miss_labels: vec![],
        };
        let line = report.summary("core-v1");
        assert!(line.starts_with("sweep-cache: 300 hits, 16 misses, 1 poisoned"), "{line}");
        assert!(line.contains("core-v1"), "{line}");
        assert!(!line.contains("hot tier"), "no hot-tier share without L1 hits: {line}");
        let warm = CacheReport { l1_hits: 250, ..report };
        let line = warm.summary("core-v1");
        assert!(line.contains("250 from hot tier"), "{line}");
        assert!(line.contains("316 lookups"), "{line}");
    }

    #[test]
    fn registered_counters_feed_the_global_registry() {
        // A unique domain keeps this test independent of anything else
        // sharing the process-global registry.
        let cache = Cache::new(tmpdir("registered"), "v1").with_metrics("cache_unit_test");
        let labels = [("cache", "cache_unit_test")];
        cache.lookup("cell", "input-a");
        cache.store("cell", "input-a", &result_doc(1), 0);
        cache.store("cell", "input-a", &result_doc(1), 0); // overwrite => heal
        cache.lookup("cell", "input-a");
        let r = cache.report();
        assert_eq!((r.hits, r.misses, r.stores), (1, 1, 2));
        // The report and the registry read the same atomics.
        assert_eq!(metrics::counter_value("sweep_cache_l2_hits_total", &labels), 1);
        assert_eq!(metrics::counter_value("sweep_cache_misses_total", &labels), 1);
        assert_eq!(metrics::counter_value("sweep_cache_stores_total", &labels), 2);
        assert_eq!(metrics::counter_value("sweep_cache_heals_total", &labels), 1);
    }

    #[test]
    fn sibling_cost_index_is_built_once() {
        let root = tmpdir("sibling-index");
        let v1 = Cache::new(&root, "v1");
        v1.store("a", "input-a", &result_doc(1), 111);
        v1.store("b", "input-b", &result_doc(2), 222);
        let v2 = Cache::new(&root, "v2");
        // First cross-fingerprint estimate builds the index...
        assert_eq!(v2.estimate_cost("input-a"), Some(111));
        // ...after which the sibling directory is never re-walked: delete
        // it and the index keeps serving.
        std::fs::remove_dir_all(root.join("v1")).unwrap();
        assert_eq!(v2.estimate_cost("input-b"), Some(222));
        assert_eq!(v2.estimate_cost("never-stored"), None);
        // Clones share the built index.
        assert_eq!(v2.clone().estimate_cost("input-a"), Some(111));
    }

    #[test]
    fn sibling_cost_index_prefers_newest_looking_fingerprint() {
        let root = tmpdir("sibling-order");
        Cache::new(&root, "v1").store("a", "input-a", &result_doc(1), 100);
        Cache::new(&root, "v3").store("a", "input-a", &result_doc(1), 300);
        let v2 = Cache::new(&root, "v2");
        assert_eq!(v2.estimate_cost("input-a"), Some(300), "descending sort: v3 beats v1");
    }

    #[test]
    fn own_fingerprint_cost_beats_the_sibling_index() {
        let root = tmpdir("own-cost");
        Cache::new(&root, "v1").store("a", "input-a", &result_doc(1), 100);
        let v2 = Cache::new(&root, "v2");
        v2.store("a", "input-a", &result_doc(1), 900);
        assert_eq!(v2.estimate_cost("input-a"), Some(900));
    }
}
