//! Process-global, lock-free metrics registry for fleet telemetry.
//!
//! The serving stack (work-stealing pool, tiered sweep cache, warm job
//! directory server) makes performance claims — warm serves cost ~6% of
//! cold, warm hits do zero I/O, every throughput sample comes from a
//! fresh cell. Each claim should be backed by an inspectable,
//! schema-versioned telemetry stream rather than ad-hoc log lines. This
//! module is that stream's source of truth:
//!
//! * **Instruments** — [`Counter`] (monotonic `u64`), [`Gauge`] (signed
//!   level with a `set_max` high-water mode), and [`Timer`] (a log2
//!   [`Histogram`] mirror with lock-free recording). All are cheap
//!   `Arc`-backed handles over atomics: registration takes the registry
//!   lock once, after which every `inc`/`add`/`record` is a relaxed
//!   atomic op — no locks on the hot path.
//! * **Identity** — an instrument is named by `name{key=value,...}` with
//!   labels sorted by key, so the same (name, labels) pair always
//!   resolves to the same underlying atomic no matter where or in what
//!   order it is requested.
//! * **Snapshot** — [`snapshot`] renders the whole registry as a
//!   `levioso-metrics/1` JSON document with every map sorted by key.
//!   Two snapshots of an idle registry are byte-identical, so the
//!   document can be diffed, pinned, and parsed by shell scripts.
//! * **Switch** — `LEVIOSO_METRICS=off` (or `0`) disables the *optional*
//!   instrumentation: call sites that exist purely for telemetry (pool
//!   timing, serve request counters/timers) consult [`enabled`] and skip
//!   their clock reads and atomic bumps. Load-bearing counters — the
//!   sweep-cache counters behind [`crate::cache::CacheReport`] and the
//!   throughput meter — always count, because correctness reports are
//!   derived from them; the switch only sheds the pure-overhead hooks
//!   that `scripts/perf.sh --ab` bounds.
//!
//! Instruments can also live *detached* ([`Counter::detached`] and
//! friends): the same atomic handle type, but private to its owner and
//! absent from the global snapshot. `support::cache` uses detached
//! counters for ad-hoc instances (tests, `--no-cache`) and registered
//! ones for the process-wide caches, so per-instance reports and fleet
//! telemetry share one implementation.

use crate::histogram::{bucket_index, Histogram, BUCKETS};
use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Schema identifier of the snapshot document.
pub const SCHEMA: &str = "levioso-metrics/1";

// ---------------------------------------------------------------------------
// Enabled switch
// ---------------------------------------------------------------------------

/// 0 = uninitialised (read `LEVIOSO_METRICS` on first use), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether optional (pure-telemetry) instrumentation should record.
///
/// Initialised lazily from `LEVIOSO_METRICS`: unset, empty, `on`, or `1`
/// enable (the default); `off` or `0` disable. Any other value panics —
/// a typo must not silently flip telemetry semantics (same contract as
/// `LEVIOSO_SWEEP_CACHE` and `LEVIOSO_TRACE`).
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = parse_enabled(std::env::var("LEVIOSO_METRICS").ok().as_deref());
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the `LEVIOSO_METRICS` switch for the rest of the process.
/// Test and tooling hook: the observer-effect tests flip this to prove
/// results are identical either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Parses a `LEVIOSO_METRICS` value. Panics on anything unrecognised.
fn parse_enabled(value: Option<&str>) -> bool {
    match value {
        None | Some("") | Some("on") | Some("1") => true,
        Some("off") | Some("0") => false,
        Some(other) => panic!(
            "unknown LEVIOSO_METRICS value {other:?}: expected unset, \"on\"/\"1\", or \"off\"/\"0\""
        ),
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing `u64` counter.
///
/// Cloning shares the underlying atomic; a registered counter obtained
/// twice under the same identity is the same counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Default for Counter {
    fn default() -> Self {
        Counter::detached()
    }
}

impl Counter {
    /// Creates a counter that is not listed in any registry (and never
    /// appears in snapshots). Used for per-instance bookkeeping that
    /// wants the same handle type as registered telemetry.
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 and returns the *previous* value (a cheap process-unique
    /// sequence number for callers that need one).
    pub fn fetch_inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero. Counters are monotonic from the snapshot
    /// consumer's point of view; reset exists for per-instance owners
    /// (e.g. `Cache::reset_counters`) and tests.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous level (in-flight requests, queue depth).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge::detached()
    }
}

impl Gauge {
    /// Creates a gauge outside any registry (see [`Counter::detached`]).
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Shared lock-free mirror of a [`Histogram`]: 65 atomic log2 buckets
/// plus tracked sum and max. The sample count is derived from the
/// buckets at snapshot time, so a snapshot taken mid-record can never
/// produce a count/bucket inconsistency (which
/// [`Histogram::from_json`] would reject).
#[derive(Debug)]
struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        Histogram::from_raw(
            buckets,
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A latency/duration recorder backed by an [`AtomicHistogram`]. Units
/// are the caller's choice and should be part of the instrument name
/// (e.g. `serve_request_micros`).
#[derive(Debug, Clone)]
pub struct Timer(Arc<AtomicHistogram>);

impl Timer {
    /// Creates a timer outside any registry (see [`Counter::detached`]).
    pub fn detached() -> Timer {
        Timer(Arc::new(AtomicHistogram::new()))
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Materialises the current distribution as a [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        self.0.snapshot()
    }

    /// Resets to empty.
    pub fn reset(&self) {
        self.0.reset();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Timer(Timer),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Timer(_) => "timer",
        }
    }
}

/// A named collection of instruments.
///
/// Most code uses the process-global registry through the module-level
/// functions ([`counter`], [`gauge`], [`timer`], [`snapshot`]);
/// `Registry` is also constructible standalone so tests can exercise
/// snapshot determinism without cross-test interference.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Renders and validates the canonical identity `name{k=v,...}` (labels
/// sorted by key; bare `name` when there are none).
///
/// Names and label keys are `snake_case` identifiers; label values may
/// be any printable ASCII except the four characters that would break
/// the rendered identity or its JSON/grep consumers (`{`, `}`, `,`,
/// `"`). Violations panic: identities are static, so a bad one is a
/// programming error, not input.
fn identity(name: &str, labels: &[(&str, &str)]) -> String {
    let ident_ok = |s: &str| {
        !s.is_empty() && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    assert!(ident_ok(name), "invalid metric name {name:?}");
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = format!("{name}{{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        assert!(ident_ok(k), "invalid label key {k:?} on metric {name:?}");
        assert!(
            !v.is_empty()
                && v.chars().all(|c| c.is_ascii_graphic() && !matches!(c, '{' | '}' | ',' | '"')),
            "invalid label value {v:?} on metric {name:?}"
        );
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Metric) -> Metric {
        let id = identity(name, labels);
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        let metric = map.entry(id.clone()).or_insert_with(make).clone();
        drop(map);
        metric
    }

    /// Returns the counter registered under `(name, labels)`, creating
    /// it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if the identity is malformed or already registered as a
    /// different instrument kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::detached())) {
            Metric::Counter(c) => c,
            other => {
                panic!("metric {} is a {}, not a counter", identity(name, labels), other.kind())
            }
        }
    }

    /// Returns the gauge registered under `(name, labels)` (see
    /// [`Registry::counter`] for identity and panic rules).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {} is a {}, not a gauge", identity(name, labels), other.kind()),
        }
    }

    /// Returns the timer registered under `(name, labels)` (see
    /// [`Registry::counter`] for identity and panic rules).
    pub fn timer(&self, name: &str, labels: &[(&str, &str)]) -> Timer {
        match self.get_or_insert(name, labels, || Metric::Timer(Timer::detached())) {
            Metric::Timer(t) => t,
            other => panic!("metric {} is a {}, not a timer", identity(name, labels), other.kind()),
        }
    }

    /// Current value of a registered counter; 0 if never registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let id = identity(name, labels);
        match self.metrics.lock().expect("metrics registry poisoned").get(&id) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Distribution of a registered timer; `None` if never registered.
    pub fn timer_snapshot(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        let id = identity(name, labels);
        let metric = self.metrics.lock().expect("metrics registry poisoned").get(&id).cloned();
        match metric {
            Some(Metric::Timer(t)) => Some(t.snapshot()),
            _ => None,
        }
    }

    /// Renders the registry as a `levioso-metrics/1` JSON document.
    ///
    /// Deterministic by construction: identities are iterated in
    /// `BTreeMap` (byte-sorted) order, `u64` quantities are decimal
    /// strings (exact, greppable), and the document carries no
    /// timestamps — two snapshots of an idle registry are
    /// byte-identical regardless of registration order.
    pub fn snapshot(&self) -> Json {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut timers = Vec::new();
        for (id, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => counters.push((id.clone(), Json::Str(c.get().to_string()))),
                Metric::Gauge(g) => gauges.push((id.clone(), Json::I64(g.get()))),
                Metric::Timer(t) => {
                    let h = t.snapshot();
                    let mut obj = match h.to_json() {
                        Json::Obj(pairs) => pairs,
                        _ => unreachable!("Histogram::to_json always emits an object"),
                    };
                    for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                        obj.push((key.to_string(), Json::Str(h.quantile_hi(q).to_string())));
                    }
                    timers.push((id.clone(), Json::Obj(obj)));
                }
            }
        }
        Json::Obj(vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("enabled".to_string(), Json::Bool(enabled())),
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("timers".to_string(), Json::Obj(timers)),
        ])
    }

    /// Zeroes every registered instrument (identities stay registered).
    /// Test hook; production code never resets fleet telemetry.
    pub fn reset(&self) {
        for metric in self.metrics.lock().expect("metrics registry poisoned").values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Timer(t) => t.reset(),
            }
        }
    }
}

/// The process-global registry behind the module-level functions.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the global registry.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    global().counter(name, labels)
}

/// [`Registry::gauge`] on the global registry.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    global().gauge(name, labels)
}

/// [`Registry::timer`] on the global registry.
pub fn timer(name: &str, labels: &[(&str, &str)]) -> Timer {
    global().timer(name, labels)
}

/// [`Registry::counter_value`] on the global registry.
pub fn counter_value(name: &str, labels: &[(&str, &str)]) -> u64 {
    global().counter_value(name, labels)
}

/// [`Registry::timer_snapshot`] on the global registry.
pub fn timer_snapshot(name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
    global().timer_snapshot(name, labels)
}

/// [`Registry::snapshot`] on the global registry.
pub fn snapshot() -> Json {
    global().snapshot()
}

/// The global snapshot pretty-printed with a trailing newline — the
/// exact bytes of `results/METRICS_run.json` and of the `status`
/// selector's `metrics` field.
pub fn snapshot_text() -> String {
    let mut text = snapshot().emit_pretty();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_sorts_labels_and_rejects_garbage() {
        assert_eq!(identity("x_total", &[]), "x_total");
        assert_eq!(identity("x_total", &[("b", "2"), ("a", "1")]), "x_total{a=1,b=2}");
        for bad in ["", "Caps", "has space", "brace{"] {
            assert!(std::panic::catch_unwind(|| identity(bad, &[])).is_err(), "{bad:?}");
        }
        assert!(std::panic::catch_unwind(|| identity("ok", &[("k", "a,b")])).is_err());
        assert!(std::panic::catch_unwind(|| identity("ok", &[("k", "")])).is_err());
        // Parenthesised sentinel values (e.g. selector="(unknown)") are fine.
        assert_eq!(identity("ok", &[("k", "(unknown)")]), "ok{k=(unknown)}");
    }

    #[test]
    fn same_identity_resolves_to_same_instrument() {
        let r = Registry::new();
        r.counter("hits_total", &[("cache", "bench")]).add(3);
        // Label order must not matter, and a second lookup sees the count.
        let again = r.counter("hits_total", &[("cache", "bench")]);
        again.inc();
        assert_eq!(r.counter_value("hits_total", &[("cache", "bench")]), 4);
        assert_eq!(r.counter_value("hits_total", &[("cache", "nisec")]), 0);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("depth", &[]);
        r.gauge("depth", &[]);
    }

    #[test]
    fn gauge_levels_and_high_water() {
        let g = Gauge::detached();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn counter_fetch_inc_sequences() {
        let c = Counter::detached();
        assert_eq!(c.fetch_inc(), 0);
        assert_eq!(c.fetch_inc(), 1);
        assert_eq!(c.get(), 2);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn timer_snapshot_matches_plain_histogram() {
        let t = Timer::detached();
        let mut h = Histogram::new();
        for v in [0u64, 3, 3, 10, 1 << 40] {
            t.record(v);
            h.record(v);
        }
        assert_eq!(t.snapshot(), h);
        // The snapshot JSON round-trips through Histogram::from_json even
        // with the percentile fields appended.
        let r = Registry::new();
        let reg = r.timer("lat_micros", &[]);
        for v in [1u64, 2, 4] {
            reg.record(v);
        }
        let snap = r.snapshot();
        let doc = snap.get("timers").and_then(|t| t.get("lat_micros")).unwrap();
        let back = Histogram::from_json(doc).unwrap();
        assert_eq!(back.count(), 3);
        // quantile_hi reports the containing bucket's upper bound: the
        // median sample 2 lands in bucket [2,3].
        assert_eq!(doc.get("p50").and_then(Json::as_str), Some("3"));
    }

    #[test]
    fn snapshot_is_deterministic_and_registration_order_independent() {
        let make = |flip: bool| {
            let r = Registry::new();
            let names: [(&str, &[(&str, &str)]); 3] =
                [("b_total", &[]), ("a_total", &[("k", "v")]), ("a_total", &[("k", "u")])];
            let order: Vec<usize> = if flip { vec![2, 0, 1] } else { vec![0, 1, 2] };
            for i in order {
                let (name, labels) = names[i];
                r.counter(name, labels).add((i + 1) as u64);
            }
            r.gauge("depth", &[]).set(-2);
            r.timer("lat", &[]).record(7);
            r.snapshot().emit_pretty()
        };
        let a = make(false);
        let b = make(true);
        assert_eq!(a, b, "snapshot must not depend on registration order");
        // Idle registry: two consecutive snapshots are byte-identical.
        let r = Registry::new();
        r.counter("x_total", &[]).add(9);
        assert_eq!(r.snapshot().emit_pretty(), r.snapshot().emit_pretty());
        // Sorted sections appear in schema order with sorted keys inside.
        let text = make(false);
        let ca = text.find("a_total{k=u}").unwrap();
        let cb = text.find("a_total{k=v}").unwrap();
        let cc = text.find("b_total").unwrap();
        assert!(ca < cb && cb < cc);
    }

    #[test]
    fn enabled_parsing_is_strict() {
        assert!(parse_enabled(None));
        assert!(parse_enabled(Some("")));
        assert!(parse_enabled(Some("on")));
        assert!(parse_enabled(Some("1")));
        assert!(!parse_enabled(Some("off")));
        assert!(!parse_enabled(Some("0")));
        assert!(std::panic::catch_unwind(|| parse_enabled(Some("yes"))).is_err());
    }
}
