//! An in-memory hot tier layered above the on-disk sweep-cell cache.
//!
//! [`crate::cache::Cache`] makes warm sweeps cheap, but every hit still
//! pays a filesystem read plus a JSON parse per cell. A long-lived server
//! process (`all --serve`) answers the same cells over and over, so this
//! module adds a process-lifetime L1:
//!
//! * [`HotTier`] — a hash-keyed map of *deserialized* cell results (the
//!   same [`stable_hash_hex`] key the disk tier uses as a filename), so a
//!   warm lookup does zero filesystem I/O and zero re-parsing;
//! * [`TieredCache`] — the composition the cell-cache handles bind to:
//!   L1 probe first, then the disk [`Cache`] as L2, write-through stores,
//!   and promotion of L2 hits into L1.
//!
//! Correctness properties (pinned by tests here and in `levioso-bench`):
//!
//! * the L1 stores the full input text next to the result and compares it
//!   on every probe — a hash collision is an L1 miss, never a wrong hit,
//!   exactly mirroring the disk tier's stored-input guard;
//! * L1 hits return bit-identical results to disk hits (the stored value
//!   *is* the result document that was stored/validated), so served runs
//!   stay byte-identical to cold runs;
//! * the hot tier is **opt-in** ([`TieredCache::plain`] has none): one-shot
//!   CLI runs keep the pure disk-cache semantics their tests pin (e.g.
//!   evicting a disk cell must make it recompute), while the serve loop
//!   calls [`TieredCache::with_hot_tier`] once at startup;
//! * a disabled disk tier disables the whole stack — `--no-cache` means
//!   *no* cache, not "no disk but warm memory".
//!
//! Counter accounting: [`TieredCache::report`] composes the disk tier's
//! counters with the L1 counter — `hits` covers both tiers, `l1_hits` is
//! the memory-only subset, and `misses`/`poisoned`/`stores`/`miss_labels`
//! come straight from the disk tier (an L1 hit never reaches it). The
//! throughput-honesty invariant is tier-agnostic: callers skip
//! `throughput::record` on *any* hit, so neither tier ever contributes
//! busy-time samples.

use crate::cache::{stable_hash_hex, Cache, CacheReport};
use crate::json::Json;
use crate::metrics;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One resident cell: the full input text (collision guard) and the
/// already-deserialized result document.
#[derive(Debug, Clone)]
struct HotCell {
    input: String,
    result: Json,
}

/// A process-lifetime map of deserialized cell envelopes, keyed by the
/// same 128-bit content hash the disk tier uses as a filename.
///
/// Thread-safe; shared across clones of the owning [`TieredCache`].
#[derive(Debug, Default)]
pub struct HotTier {
    cells: Mutex<HashMap<String, HotCell>>,
}

impl HotTier {
    /// Probes the tier for `input` under `key` (its content hash). A
    /// resident cell whose stored input differs is a collision → miss.
    fn probe(&self, key: &str, input: &str) -> Option<Json> {
        let cells = self.cells.lock().expect("hot tier lock");
        let cell = cells.get(key)?;
        if cell.input == input {
            Some(cell.result.clone())
        } else {
            None
        }
    }

    fn insert(&self, key: String, input: &str, result: &Json) {
        self.cells
            .lock()
            .expect("hot tier lock")
            .insert(key, HotCell { input: input.to_string(), result: result.clone() });
    }

    /// Number of resident cells.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("hot tier lock").len()
    }

    /// Whether the tier holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test hook: inserts a cell under an arbitrary key so the collision
    /// guard can be exercised without manufacturing a real hash collision.
    #[cfg(test)]
    fn insert_raw(&self, key: &str, input: &str, result: &Json) {
        self.insert(key.to_string(), input, result);
    }
}

/// The two-tier cell cache: an optional in-memory [`HotTier`] (L1) above
/// the on-disk [`Cache`] (L2).
///
/// Cloning is cheap and shares both tiers and all counters, mirroring
/// [`Cache`]'s clone semantics, so one logical cache can be consulted from
/// many sweep workers.
#[derive(Debug, Clone)]
pub struct TieredCache {
    disk: Cache,
    hot: Option<Arc<HotTier>>,
    /// Detached [`metrics::Counter`]s by default;
    /// [`TieredCache::with_metrics`] swaps in registry-registered ones
    /// (mirroring [`Cache::with_metrics`]) so the L1 split in reports
    /// and the telemetry snapshot read the same atomics. `promotions`
    /// (disk hits copied into the hot tier) is telemetry-only.
    l1_hits: metrics::Counter,
    promotions: metrics::Counter,
}

impl TieredCache {
    /// A tiered cache with **no** hot tier: behaves exactly like the disk
    /// cache it wraps (every `l1_hits` report field is zero).
    pub fn plain(disk: Cache) -> TieredCache {
        TieredCache {
            disk,
            hot: None,
            l1_hits: metrics::Counter::detached(),
            promotions: metrics::Counter::detached(),
        }
    }

    /// A tiered cache with a fresh, empty hot tier above `disk`.
    pub fn with_hot_tier(disk: Cache) -> TieredCache {
        TieredCache {
            disk,
            hot: Some(Arc::new(HotTier::default())),
            l1_hits: metrics::Counter::detached(),
            promotions: metrics::Counter::detached(),
        }
    }

    /// Rebinds both tiers' counters to the global telemetry registry
    /// under `sweep_cache_*_total{cache=<domain>}` (consuming builder;
    /// see [`Cache::with_metrics`] for identity semantics).
    pub fn with_metrics(mut self, domain: &str) -> TieredCache {
        let labels = [("cache", domain)];
        self.disk = self.disk.with_metrics(domain);
        self.l1_hits = metrics::counter("sweep_cache_l1_hits_total", &labels);
        self.promotions = metrics::counter("sweep_cache_promotions_total", &labels);
        self
    }

    /// Adds a fresh hot tier to this cache if it has none (keeps the
    /// existing one — and its resident cells — if it does).
    pub fn enable_hot_tier(&mut self) {
        if self.hot.is_none() {
            self.hot = Some(Arc::new(HotTier::default()));
        }
    }

    /// Whether a hot tier is layered above the disk cache.
    pub fn hot_enabled(&self) -> bool {
        self.hot.is_some()
    }

    /// The underlying disk tier.
    pub fn disk(&self) -> &Cache {
        &self.disk
    }

    /// Whether lookups can ever hit (the disk tier's switch governs the
    /// whole stack: a disabled cache serves nothing from memory either).
    pub fn enabled(&self) -> bool {
        self.disk.enabled()
    }

    /// The sim-core fingerprint the disk tier is namespaced under.
    pub fn fingerprint(&self) -> &str {
        self.disk.fingerprint()
    }

    /// The directory the disk tier's cells live in.
    pub fn dir(&self) -> std::path::PathBuf {
        self.disk.dir()
    }

    /// Looks up the result for `input`: L1 first (zero I/O), then disk.
    /// A disk hit is promoted into the hot tier so the next lookup is
    /// memory-only. Counting matches [`Cache::lookup`]; L1 hits bump both
    /// the shared hit counter and the L1-specific one.
    pub fn lookup(&self, label: &str, input: &str) -> Option<Json> {
        if self.enabled() {
            if let Some(hot) = &self.hot {
                let key = stable_hash_hex(input.as_bytes());
                if let Some(result) = hot.probe(&key, input) {
                    self.l1_hits.inc();
                    return Some(result);
                }
                let result = self.disk.lookup(label, input)?;
                hot.insert(key, input, &result);
                self.promotions.inc();
                return Some(result);
            }
        }
        self.disk.lookup(label, input)
    }

    /// Persists `result` for `input` write-through: the disk envelope is
    /// written (tmp+rename) *and* the deserialized result becomes resident
    /// in the hot tier, so a server's own computations warm its L1.
    pub fn store(&self, label: &str, input: &str, result: &Json, busy_nanos: u64) {
        self.disk.store(label, input, result, busy_nanos);
        if self.enabled() {
            if let Some(hot) = &self.hot {
                hot.insert(stable_hash_hex(input.as_bytes()), input, result);
            }
        }
    }

    /// Estimated compute cost for `input` — delegated to the disk tier
    /// (which memoizes its cross-fingerprint scan; see
    /// [`Cache::estimate_cost`]).
    pub fn estimate_cost(&self, input: &str) -> Option<u64> {
        self.disk.estimate_cost(input)
    }

    /// Number of cells persisted on disk under this fingerprint.
    pub fn cell_count(&self) -> usize {
        self.disk.cell_count()
    }

    /// Number of cells resident in the hot tier (0 without one).
    pub fn hot_cell_count(&self) -> usize {
        self.hot.as_ref().map_or(0, |h| h.len())
    }

    /// Counter snapshot across both tiers: `hits` includes L1 hits,
    /// `l1_hits` is the memory-only subset.
    pub fn report(&self) -> CacheReport {
        let mut report = self.disk.report();
        let l1 = self.l1_hits.get();
        report.hits += l1;
        report.l1_hits = l1;
        report
    }

    /// Zeroes the counters (both tiers'). Resident hot-tier cells are
    /// kept — contents are process-lifetime, counters are per-phase.
    pub fn reset_counters(&self) {
        self.disk.reset_counters();
        self.l1_hits.reset();
        self.promotions.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("levioso-memcache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp cache root");
        dir
    }

    fn result_doc(v: i64) -> Json {
        Json::obj([("cycles", Json::I64(v))])
    }

    fn disk_path(cache: &TieredCache, input: &str) -> PathBuf {
        cache.dir().join(format!("{}.json", stable_hash_hex(input.as_bytes())))
    }

    #[test]
    fn warm_lookup_is_memory_only() {
        let cache = TieredCache::with_hot_tier(Cache::new(tmpdir("warm"), "v1"));
        cache.store("cell", "input-a", &result_doc(42), 1_000);
        // Remove the disk envelope: only the hot tier can serve now.
        std::fs::remove_file(disk_path(&cache, "input-a")).unwrap();
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(42)));
        let r = cache.report();
        assert_eq!((r.hits, r.l1_hits, r.misses), (1, 1, 0));
        assert_eq!(cache.hot_cell_count(), 1);
    }

    #[test]
    fn plain_tier_matches_disk_semantics() {
        let cache = TieredCache::plain(Cache::new(tmpdir("plain"), "v1"));
        assert!(!cache.hot_enabled());
        cache.store("cell", "input-a", &result_doc(42), 0);
        std::fs::remove_file(disk_path(&cache, "input-a")).unwrap();
        assert_eq!(cache.lookup("cell", "input-a"), None, "no hot tier → eviction is a miss");
        let r = cache.report();
        assert_eq!((r.hits, r.l1_hits, r.misses), (0, 0, 1));
    }

    #[test]
    fn disk_hit_is_promoted_into_the_hot_tier() {
        let root = tmpdir("promote");
        // A previous process stored the cell on disk.
        Cache::new(&root, "v1").store("cell", "input-a", &result_doc(7), 0);
        let cache = TieredCache::with_hot_tier(Cache::new(&root, "v1"));
        assert_eq!(cache.hot_cell_count(), 0);
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(7)), "L2 hit");
        let r = cache.report();
        assert_eq!((r.hits, r.l1_hits), (1, 0), "first hit came from disk");
        // Evict from disk; the promoted copy serves from memory.
        std::fs::remove_file(disk_path(&cache, "input-a")).unwrap();
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(7)), "L1 hit");
        let r = cache.report();
        assert_eq!((r.hits, r.l1_hits, r.misses), (2, 1, 0));
    }

    #[test]
    fn hot_tier_collision_is_a_miss_not_a_wrong_hit() {
        let cache = TieredCache::with_hot_tier(Cache::new(tmpdir("collide"), "v1"));
        let key = stable_hash_hex(b"input-a");
        // Simulate a hash collision: a *different* input resident under
        // input-a's key.
        cache.hot.as_ref().unwrap().insert_raw(&key, "other-input", &result_doc(99));
        assert_eq!(cache.lookup("cell", "input-a"), None, "guarded by stored-input equality");
        let r = cache.report();
        assert_eq!((r.hits, r.l1_hits, r.misses), (0, 0, 1));
    }

    #[test]
    fn reset_counters_keeps_resident_cells() {
        let cache = TieredCache::with_hot_tier(Cache::new(tmpdir("reset"), "v1"));
        cache.store("cell", "input-a", &result_doc(1), 0);
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(1)));
        cache.reset_counters();
        let r = cache.report();
        assert_eq!((r.hits, r.l1_hits, r.misses, r.stores), (0, 0, 0, 0));
        std::fs::remove_file(disk_path(&cache, "input-a")).unwrap();
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(1)), "contents survive reset");
        assert_eq!(cache.report().l1_hits, 1);
    }

    #[test]
    fn disabled_disk_disables_the_hot_tier_too() {
        let cache = TieredCache::with_hot_tier(Cache::disabled());
        cache.store("cell", "input-a", &result_doc(1), 0);
        assert_eq!(cache.hot_cell_count(), 0, "disabled stores touch no tier");
        assert_eq!(cache.lookup("cell", "input-a"), None);
        let r = cache.report();
        assert_eq!((r.hits, r.l1_hits, r.misses), (0, 0, 1));
    }

    #[test]
    fn enable_hot_tier_is_idempotent_and_preserves_contents() {
        let mut cache = TieredCache::with_hot_tier(Cache::new(tmpdir("idem"), "v1"));
        cache.store("cell", "input-a", &result_doc(1), 0);
        cache.enable_hot_tier();
        assert_eq!(cache.hot_cell_count(), 1, "existing tier (and cells) kept");
        let mut plain = TieredCache::plain(Cache::new(tmpdir("idem2"), "v1"));
        assert!(!plain.hot_enabled());
        plain.enable_hot_tier();
        assert!(plain.hot_enabled());
    }

    #[test]
    fn registered_counters_expose_the_l1_split_and_promotions() {
        let root = tmpdir("metrics");
        Cache::new(&root, "v1").store("cell", "input-a", &result_doc(7), 0);
        let cache =
            TieredCache::with_hot_tier(Cache::new(&root, "v1")).with_metrics("memcache_unit_test");
        let labels = [("cache", "memcache_unit_test")];
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(7)), "L2 hit, promoted");
        assert_eq!(cache.lookup("cell", "input-a"), Some(result_doc(7)), "L1 hit");
        assert_eq!(cache.report().l1_hits, 1);
        assert_eq!(metrics::counter_value("sweep_cache_l1_hits_total", &labels), 1);
        assert_eq!(metrics::counter_value("sweep_cache_l2_hits_total", &labels), 1);
        assert_eq!(metrics::counter_value("sweep_cache_promotions_total", &labels), 1);
    }

    #[test]
    fn clones_share_tiers_and_counters() {
        let cache = TieredCache::with_hot_tier(Cache::new(tmpdir("clone"), "v1"));
        let clone = cache.clone();
        cache.store("cell", "input-a", &result_doc(1), 0);
        std::fs::remove_file(disk_path(&cache, "input-a")).unwrap();
        assert_eq!(clone.lookup("cell", "input-a"), Some(result_doc(1)), "shared hot tier");
        assert_eq!(cache.report().l1_hits, 1, "shared counters");
    }
}
