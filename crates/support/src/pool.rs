//! A scoped, work-stealing worker pool for deterministic fan-out.
//!
//! Replaces `rayon` for the workspace's narrow need: run a fixed list of
//! independent jobs across `N` OS threads and collect the results **in job
//! order**, so aggregation downstream is bit-identical no matter how many
//! threads ran or which finished first.
//!
//! Design constraints (see DESIGN.md, "Hermetic build policy" and §11):
//!
//! * no external crates — built on [`std::thread::scope`];
//! * deterministic results: job `i`'s output lands in slot `i`, full stop.
//!   Nothing downstream can observe completion order or which worker ran a
//!   job — scheduling affects wall-clock only, never results;
//! * panic transparency: a panic inside a job is re-raised on the calling
//!   thread with its original payload once all workers have drained, so a
//!   failing cell in a parallel sweep reports exactly like a serial one;
//! * `threads == 1` runs inline on the caller (no spawn), which keeps
//!   single-threaded runs trivially debuggable and free of scheduler noise.
//!
//! Scheduling is cost-aware work stealing. [`Pool::run_with_costs`] takes a
//! per-job cost estimate (nanoseconds from prior runs, via the sweep
//! cache): jobs are dealt to per-worker deques largest-first onto the
//! least-loaded queue (LPT), each worker drains its own deque from the
//! front (expensive first), and an idle worker steals from the *back* of
//! the currently longest queue — so paper-tier straggler cells start
//! early instead of serializing the tail, and short cells backfill. With
//! no costs (plain [`Pool::run`]) every job is equal-weight and the deal
//! degenerates to round-robin — still stealable, so long cells never
//! convoy short ones behind a fixed pre-partition.
//!
//! ```
//! use levioso_support::pool::Pool;
//!
//! let squares = Pool::new(4).run(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use crate::metrics;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A fixed-width scoped worker pool.
///
/// The pool owns no threads between calls — each [`Pool::run`] spawns its
/// workers inside a [`std::thread::scope`] and joins them before
/// returning, so borrowed jobs and closures need no `'static` bounds.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

/// Cost assumed for a job with no estimate: schedule unknowns first, since
/// an unmeasured cell may be arbitrarily large and stragglers hurt most
/// when they start last.
pub const UNKNOWN_COST: u64 = u64::MAX;

impl Pool {
    /// Creates a pool of `threads` workers. Zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    /// A pool sized by the `LEVIOSO_THREADS` environment variable, falling
    /// back to the machine's available parallelism (and then to 1).
    pub fn from_env() -> Self {
        let threads = std::env::var("LEVIOSO_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Pool::new(threads)
    }

    /// The worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every job and returns the outputs **in job order**.
    ///
    /// `f` receives the job's index alongside the job, so callers can
    /// look up per-job context (e.g. a pre-split RNG seed) without
    /// moving it into the job list. All jobs are treated as equal-cost;
    /// see [`Pool::run_with_costs`] to schedule measured stragglers first.
    ///
    /// # Panics
    ///
    /// If any invocation of `f` panics, a panic is re-raised here with its
    /// original payload after all workers finish.
    pub fn run<T, R, F>(&self, jobs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_with_costs(jobs, &[], f)
    }

    /// Like [`Pool::run`], with a per-job cost estimate steering the
    /// schedule: expensive jobs are dealt and started first (LPT), idle
    /// workers steal from the longest remaining queue.
    ///
    /// `costs[i]` is job `i`'s estimated cost in arbitrary units
    /// (busy-nanoseconds in practice); missing entries (`costs` shorter
    /// than `jobs`, or an empty slice) default to [`UNKNOWN_COST`], which
    /// sorts first. Costs are advisory: they influence which worker runs a
    /// job and when, **never** the result — outputs land in job order and
    /// are bit-identical for any cost vector and any thread count (pinned
    /// by tests here and by the bench determinism suite).
    ///
    /// # Panics
    ///
    /// Same contract as [`Pool::run`].
    pub fn run_with_costs<T, R, F>(&self, jobs: &[T], costs: &[u64], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Telemetry is strictly observational: counters and clock reads
        // only, never scheduling decisions — results are bit-identical
        // with the switch in either position. Sampled once per run so a
        // mid-run toggle cannot tear the busy/idle bookkeeping.
        let instrumented = metrics::enabled();
        if self.threads == 1 || jobs.len() == 1 {
            if !instrumented {
                return jobs.iter().enumerate().map(|(i, job)| f(i, job)).collect();
            }
            let start = Instant::now();
            let out = jobs.iter().enumerate().map(|(i, job)| f(i, job)).collect();
            metrics::counter("pool_jobs_dealt_total", &[]).add(jobs.len() as u64);
            metrics::counter("pool_worker_busy_nanos", &[("worker", "0")])
                .add(start.elapsed().as_nanos() as u64);
            return out;
        }
        let workers = self.threads.min(jobs.len());
        let queues = deal(jobs.len(), costs, workers);
        if instrumented {
            metrics::counter("pool_jobs_dealt_total", &[]).add(jobs.len() as u64);
            let deepest =
                queues.iter().map(|q| q.lock().expect("queue lock").len()).max().unwrap_or(0);
            metrics::gauge("pool_queue_depth_highwater", &[]).set_max(deepest as i64);
        }
        // Count of jobs not yet claimed; lets idle workers exit without
        // rescanning every queue once everything is taken.
        let remaining = AtomicUsize::new(jobs.len());
        let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let remaining = &remaining;
                    let f = &f;
                    scope.spawn(move || {
                        let mut done: Vec<(usize, R)> = Vec::new();
                        if !instrumented {
                            while let Some((i, _)) = claim(queues, w, remaining) {
                                done.push((i, f(i, jobs.get(i).expect("dealt index in range"))));
                            }
                            return done;
                        }
                        // Accumulate locally, publish once at worker exit:
                        // two clock reads per job, zero shared writes until
                        // the pool is already draining.
                        let (mut busy, mut idle, mut steals) = (0u64, 0u64, 0u64);
                        let mut mark = Instant::now();
                        while let Some((i, stolen)) = claim(queues, w, remaining) {
                            let claimed = Instant::now();
                            idle += (claimed - mark).as_nanos() as u64;
                            steals += u64::from(stolen);
                            done.push((i, f(i, jobs.get(i).expect("dealt index in range"))));
                            mark = Instant::now();
                            busy += (mark - claimed).as_nanos() as u64;
                        }
                        idle += mark.elapsed().as_nanos() as u64;
                        let worker = w.to_string();
                        metrics::counter("pool_steals_total", &[]).add(steals);
                        metrics::counter("pool_worker_busy_nanos", &[("worker", &worker)])
                            .add(busy);
                        metrics::counter("pool_worker_idle_nanos", &[("worker", &worker)])
                            .add(idle);
                        done
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(done) => {
                        for (i, r) in done {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => {
                        // A worker dies with its panicking job; jobs it had
                        // already finished are lost with it and recompute on
                        // the next run. First payload wins.
                        if panic_payload.is_none() {
                            panic_payload = Some(payload);
                        }
                    }
                }
            }
        });
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect()
    }
}

/// Deals job indices to `workers` double-ended queues, largest-first onto
/// the least-loaded queue (longest-processing-time-first). Each queue ends
/// up front-loaded with its biggest jobs; ties (equal cost, equal load)
/// break by index and worker number, so the deal is a pure function of
/// `(len, costs, workers)` — deterministic, though results never depend on
/// it anyway.
fn deal(
    len: usize,
    costs: &[u64],
    workers: usize,
) -> Vec<Mutex<std::collections::VecDeque<usize>>> {
    let cost_of = |i: usize| costs.get(i).copied().unwrap_or(UNKNOWN_COST);
    let mut order: Vec<usize> = (0..len).collect();
    // Stable: equal-cost jobs keep index order, so the uniform-cost deal is
    // plain round-robin by load.
    order.sort_by(|&a, &b| cost_of(b).cmp(&cost_of(a)).then(a.cmp(&b)));
    let mut queues: Vec<std::collections::VecDeque<usize>> =
        (0..workers).map(|_| std::collections::VecDeque::new()).collect();
    let mut load = vec![0u128; workers];
    for i in order {
        let w = (0..workers).min_by_key(|&w| (load[w], w)).expect("at least one worker");
        // Saturate: UNKNOWN_COST jobs shouldn't wrap a queue's load sum.
        load[w] = load[w].saturating_add(cost_of(i) as u128);
        queues[w].push_back(i);
    }
    queues.into_iter().map(Mutex::new).collect()
}

/// Claims the next job index for worker `w`: front of its own queue
/// (largest remaining), else steal from the *back* of the currently
/// longest other queue (that queue's smallest), else `None` when all jobs
/// are claimed. `remaining` is decremented per claim. The flag reports
/// whether the claim was a steal (telemetry only — never scheduling).
fn claim(
    queues: &[Mutex<std::collections::VecDeque<usize>>],
    w: usize,
    remaining: &AtomicUsize,
) -> Option<(usize, bool)> {
    loop {
        if remaining.load(Ordering::Acquire) == 0 {
            return None;
        }
        if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
            remaining.fetch_sub(1, Ordering::AcqRel);
            return Some((i, false));
        }
        // Own queue empty: pick the longest victim queue, steal its back.
        let victim = queues
            .iter()
            .enumerate()
            .filter(|&(v, _)| v != w)
            .map(|(v, q)| (q.lock().expect("queue lock").len(), v))
            .max_by_key(|&(len, v)| (len, usize::MAX - v))
            .filter(|&(len, _)| len > 0)
            .map(|(_, v)| v);
        match victim {
            Some(v) => {
                if let Some(i) = queues[v].lock().expect("queue lock").pop_back() {
                    remaining.fetch_sub(1, Ordering::AcqRel);
                    return Some((i, true));
                }
                // Raced with the victim draining itself; rescan.
            }
            // Every queue looked empty but `remaining` was nonzero at the
            // top of the loop: a claim was in flight. Rescan; the next
            // iteration's `remaining` check terminates once it lands.
            None => std::hint::spin_loop(),
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_job_list_yields_empty_results() {
        for threads in [1, 4] {
            let out: Vec<u64> = Pool::new(threads).run(&[] as &[u64], |_, &x| x);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn results_arrive_in_job_order_for_any_width() {
        let jobs: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = jobs.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8, 200] {
            let got = Pool::new(threads).run(&jobs, |i, &x| {
                assert_eq!(i, x, "index matches job position");
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn costs_never_change_results() {
        let jobs: Vec<usize> = (0..64).collect();
        let expect: Vec<usize> = jobs.iter().map(|&x| x * x).collect();
        // Ascending, descending, uniform, partial, empty — all identical.
        let ascending: Vec<u64> = (0..64).map(|i| i as u64 * 100).collect();
        let descending: Vec<u64> = (0..64).map(|i| (64 - i) as u64 * 100).collect();
        let costs: [&[u64]; 5] = [&[], &[7; 64], &ascending, &descending, &ascending[..10]];
        for threads in [1, 3, 8] {
            for cost in costs {
                let got = Pool::new(threads).run_with_costs(&jobs, cost, |_, &x| x * x);
                assert_eq!(got, expect, "threads={threads} costs={:?}...", cost.first());
            }
        }
    }

    #[test]
    fn lpt_deal_frontloads_expensive_jobs() {
        // Costs: job 0 is huge, rest tiny. With 2 workers the huge job
        // must sit alone at the front of one queue.
        let costs = [1_000_000u64, 1, 1, 1, 1, 1];
        let queues = deal(6, &costs, 2);
        let q0: Vec<usize> = queues[0].lock().unwrap().iter().copied().collect();
        let q1: Vec<usize> = queues[1].lock().unwrap().iter().copied().collect();
        assert_eq!(q0, vec![0], "huge job dealt alone to the first queue");
        assert_eq!(q1, vec![1, 2, 3, 4, 5], "small jobs balance onto the other");
    }

    #[test]
    fn unknown_costs_schedule_first() {
        // Jobs beyond the cost slice get UNKNOWN_COST and are dealt before
        // every measured job.
        let costs = [50u64, 40];
        let queues = deal(4, &costs, 1);
        let q: Vec<usize> = queues[0].lock().unwrap().iter().copied().collect();
        assert_eq!(q, vec![2, 3, 0, 1]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(&[5u64], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        Pool::new(7).run(&(0..64usize).collect::<Vec<_>>(), |_, &i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn every_job_runs_exactly_once_under_skewed_costs() {
        let counters: Vec<AtomicU64> = (0..129).map(|_| AtomicU64::new(0)).collect();
        let costs: Vec<u64> = (0..129).map(|i| if i % 13 == 0 { 1_000_000 } else { i }).collect();
        Pool::new(5).run_with_costs(&(0..129usize).collect::<Vec<_>>(), &costs, |_, &i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            // Skew actual runtimes too, so stealing genuinely happens.
            if i % 13 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn telemetry_counts_dealt_jobs_without_changing_results() {
        // Other tests in this process also feed the global registry, so
        // assert on the delta (monotonic counter: concurrent bumps only
        // make it larger, never smaller).
        let before = metrics::counter_value("pool_jobs_dealt_total", &[]);
        let jobs: Vec<usize> = (0..40).collect();
        let expect: Vec<usize> = jobs.iter().map(|&x| x + 1).collect();
        assert_eq!(Pool::new(4).run(&jobs, |_, &x| x + 1), expect);
        assert_eq!(Pool::new(1).run(&jobs, |_, &x| x + 1), expect, "inline path identical");
        let after = metrics::counter_value("pool_jobs_dealt_total", &[]);
        assert!(after >= before + 80, "both runs dealt all jobs: {before} -> {after}");
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).run(&(0..32usize).collect::<Vec<_>>(), |_, &i| {
                if i == 13 {
                    panic!("cell 13 exploded");
                }
                i
            });
        });
        let payload = result.expect_err("panic must cross the pool boundary");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(message.contains("cell 13 exploded"), "payload preserved: {message:?}");
    }

    #[test]
    fn inline_path_panic_propagates_too() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(1).run(&[0u8], |_, _| panic!("inline boom"));
        });
        assert!(result.is_err());
    }
}
