//! A scoped worker pool for deterministic fan-out.
//!
//! Replaces `rayon` for the workspace's narrow need: run a fixed list of
//! independent jobs across `N` OS threads and collect the results **in job
//! order**, so aggregation downstream is bit-identical no matter how many
//! threads ran or which finished first.
//!
//! Design constraints (see DESIGN.md, "Hermetic build policy"):
//!
//! * no external crates — built on [`std::thread::scope`];
//! * deterministic results: job `i`'s output lands in slot `i`, full stop.
//!   Nothing downstream can observe completion order;
//! * panic transparency: a panic inside a job is re-raised on the calling
//!   thread with its original payload once all workers have drained, so a
//!   failing cell in a parallel sweep reports exactly like a serial one;
//! * `threads == 1` runs inline on the caller (no spawn), which keeps
//!   single-threaded runs trivially debuggable and free of scheduler noise.
//!
//! Scheduling is a shared atomic cursor over the job slice (work stealing
//! degenerates to round-robin under uniform costs, and long cells never
//! convoy short ones behind a fixed pre-partition).
//!
//! ```
//! use levioso_support::pool::Pool;
//!
//! let squares = Pool::new(4).run(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::panic::resume_unwind;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width scoped worker pool.
///
/// The pool owns no threads between calls — each [`Pool::run`] spawns its
/// workers inside a [`std::thread::scope`] and joins them before
/// returning, so borrowed jobs and closures need no `'static` bounds.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Creates a pool of `threads` workers. Zero is clamped to one.
    pub fn new(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    /// A pool sized by the `LEVIOSO_THREADS` environment variable, falling
    /// back to the machine's available parallelism (and then to 1).
    pub fn from_env() -> Self {
        let threads = std::env::var("LEVIOSO_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Pool::new(threads)
    }

    /// The worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every job and returns the outputs **in job order**.
    ///
    /// `f` receives the job's index alongside the job, so callers can
    /// look up per-job context (e.g. a pre-split RNG seed) without
    /// moving it into the job list.
    ///
    /// # Panics
    ///
    /// If any invocation of `f` panics, the first panic (in job order) is
    /// re-raised here with its original payload after all workers finish.
    pub fn run<T, R, F>(&self, jobs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        if self.threads == 1 || jobs.len() == 1 {
            return jobs.iter().enumerate().map(|(i, job)| f(i, job)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(jobs.len());
        // Each worker returns its (index, output) pairs; slots are
        // reassembled by index afterwards, so completion order is invisible.
        let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);
        let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            done.push((i, f(i, job)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(done) => {
                        for (i, r) in done {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => {
                        // A worker dies with its panicking job; jobs it had
                        // already finished are lost with it, and the panic
                        // index is approximated by its final cursor claim.
                        panics.push((usize::MAX, payload));
                    }
                }
            }
        });
        if let Some((_, payload)) = panics.into_iter().next() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_job_list_yields_empty_results() {
        for threads in [1, 4] {
            let out: Vec<u64> = Pool::new(threads).run(&[] as &[u64], |_, &x| x);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn results_arrive_in_job_order_for_any_width() {
        let jobs: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = jobs.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 8, 200] {
            let got = Pool::new(threads).run(&jobs, |i, &x| {
                assert_eq!(i, x, "index matches job position");
                x * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(&[5u64], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        Pool::new(7).run(&(0..64usize).collect::<Vec<_>>(), |_, &i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).run(&(0..32usize).collect::<Vec<_>>(), |_, &i| {
                if i == 13 {
                    panic!("cell 13 exploded");
                }
                i
            });
        });
        let payload = result.expect_err("panic must cross the pool boundary");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(message.contains("cell 13 exploded"), "payload preserved: {message:?}");
    }

    #[test]
    fn inline_path_panic_propagates_too() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(1).run(&[0u8], |_, _| panic!("inline boom"));
        });
        assert!(result.is_err());
    }
}
