//! Log2-bucketed histograms for latency-style distributions.
//!
//! The observability layer (see DESIGN.md §9) attributes every
//! policy-blocked cycle to a blame rule and wants the *distribution* of
//! per-instruction delay, not just its sum: a mean of 4 cycles can be
//! "everything waits a little" or "one load waits forever". Power-of-two
//! buckets keep the footprint fixed (65 counters cover the full `u64`
//! range), merging is element-wise addition (so per-cell histograms
//! aggregate deterministically in fixed cell order, matching the sweep
//! contract), and the JSON form round-trips exactly through
//! [`crate::json`].

use crate::json::Json;

/// Number of buckets: one for zero plus one per possible bit-width of a
/// nonzero `u64`.
pub const BUCKETS: usize = 65;

/// The one log2 bucketing rule every histogram in the workspace uses:
/// the bucket index `value` falls into — `0` for zero, otherwise the
/// value's bit width. Monotonically non-decreasing in `value`. Both
/// [`Histogram`] and the atomic mirror behind `metrics::Timer` route
/// through this function, so their bucket boundaries can never drift
/// apart.
pub const fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A fixed-size histogram with power-of-two bucket boundaries.
///
/// Bucket `0` holds exactly the value `0`; bucket `k >= 1` holds values in
/// `[2^(k-1), 2^k - 1]`. Every `u64` maps to exactly one bucket, so
/// [`Histogram::record`] never saturates or clips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// The bucket index `value` falls into (delegates to the module-level
    /// [`bucket_index`], the shared definition).
    pub const fn bucket_index(value: u64) -> usize {
        bucket_index(value)
    }

    /// Inclusive lower bound of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BUCKETS`.
    pub const fn bucket_lo(index: usize) -> u64 {
        assert!(index < BUCKETS);
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Inclusive upper bound of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= BUCKETS`.
    pub const fn bucket_hi(index: usize) -> u64 {
        assert!(index < BUCKETS);
        if index == 0 {
            0
        } else if index == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Reassembles a histogram from raw bucket counts plus tracked sum
    /// and max ([`crate::metrics`]'s atomic mirror snapshots through
    /// this). The count is derived from the buckets, so the invariant
    /// `count == Σ buckets` that [`Histogram::from_json`] enforces
    /// holds by construction even if the source was mutating while the
    /// buckets were read.
    pub(crate) fn from_raw(buckets: [u64; BUCKETS], sum: u64, max: u64) -> Histogram {
        let count = buckets.iter().fold(0u64, |acc, &n| acc.saturating_add(n));
        Histogram { buckets, count, sum, max }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value (equivalent to `n` calls to
    /// [`Histogram::record`]). Counters saturate at `u64::MAX` instead of
    /// wrapping, which keeps merging associative at the extremes.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = &mut self.buckets[Self::bucket_index(value)];
        *b = b.saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`. Merging (with saturating
    /// counters) is commutative and associative, so any aggregation order
    /// yields the same result.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), by cumulative count; 0 when empty. Because
    /// buckets are power-of-two ranges this is an upper estimate, within
    /// 2x of the true order statistic.
    pub fn quantile_hi(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The histogram max tightens the top bucket's bound.
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(index, lo, hi, count)` in
    /// ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, Self::bucket_lo(i), Self::bucket_hi(i), n))
    }

    /// Serializes to a JSON value: counters plus a sparse
    /// `[[bucket_index, count], ...]` array. `u64` quantities are encoded
    /// as decimal strings (JSON numbers are `i64`/`f64` here and cannot
    /// carry a full `u64` exactly). Round-trips exactly through
    /// [`Histogram::from_json`].
    pub fn to_json(&self) -> Json {
        let sparse = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::Arr(vec![Json::I64(i as i64), Json::Str(n.to_string())]))
            .collect();
        Json::obj([
            ("count", Json::Str(self.count.to_string())),
            ("sum", Json::Str(self.sum.to_string())),
            ("max", Json::Str(self.max.to_string())),
            ("buckets", Json::Arr(sparse)),
        ])
    }

    /// Reconstructs a histogram from [`Histogram::to_json`] output.
    /// Returns `None` on a malformed or inconsistent document.
    pub fn from_json(v: &Json) -> Option<Histogram> {
        let field =
            |key: &str| v.get(key).and_then(Json::as_str).and_then(|s| s.parse::<u64>().ok());
        let mut h = Histogram::new();
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr().filter(|p| p.len() == 2)?;
            let idx = pair[0].as_i64().filter(|&i| (0..BUCKETS as i64).contains(&i))? as usize;
            let n = pair[1].as_str().and_then(|s| s.parse::<u64>().ok()).filter(|&n| n > 0)?;
            h.buckets[idx] = n;
            h.count = h.count.saturating_add(n);
        }
        if h.count != field("count")? {
            return None;
        }
        h.sum = field("sum")?;
        h.max = field("max")?;
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // The method is a thin wrapper; pin both spellings to the same rule.
        for v in [0, 1, 2, 3, 4, 1 << 20, u64::MAX] {
            assert_eq!(Histogram::bucket_index(v), bucket_index(v));
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_lo(i)), i);
            assert_eq!(Histogram::bucket_index(Histogram::bucket_hi(i)), i);
        }
    }

    #[test]
    fn record_and_summaries() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        h.record(0);
        h.record_n(3, 2);
        h.record(10);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 4.0).abs() < 1e-12);
        let got: Vec<_> = h.buckets().collect();
        assert_eq!(got, vec![(0, 0, 0, 1), (2, 2, 3, 2), (4, 8, 15, 1)]);
    }

    #[test]
    fn quantile_hi_walks_cumulative_counts() {
        let mut h = Histogram::new();
        h.record_n(1, 90);
        h.record_n(100, 10);
        assert_eq!(h.quantile_hi(0.5), 1);
        assert_eq!(h.quantile_hi(0.95), 100); // top bucket, tightened by max
        assert_eq!(h.quantile_hi(1.0), 100);
        assert_eq!(Histogram::new().quantile_hi(0.5), 0);
    }

    #[test]
    fn json_round_trip_and_rejection() {
        let mut h = Histogram::new();
        h.record_n(7, 3);
        h.record(0);
        h.record(1 << 40);
        let j = h.to_json();
        assert_eq!(Histogram::from_json(&j).unwrap(), h);
        // Re-parse through text as well (the form stored in ATTRIB_*.json).
        let back = Json::parse(&j.emit()).unwrap();
        assert_eq!(Histogram::from_json(&back).unwrap(), h);
        assert!(Histogram::from_json(&Json::Null).is_none());
        let bad = Json::obj([
            ("count", Json::str("99")),
            ("sum", Json::str("0")),
            ("max", Json::str("0")),
            ("buckets", Json::Arr(vec![])),
        ]);
        assert!(Histogram::from_json(&bad).is_none(), "count mismatch must be rejected");
    }
}
