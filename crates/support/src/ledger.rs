//! The append-only run ledger behind `results/ledger.jsonl`.
//!
//! Every other results artifact in this repo is *overwritten* on each
//! run: `BENCH_sim_throughput.json` keeps one frozen `baseline`,
//! `METRICS_run.json` keeps only the last snapshot. The ledger is the
//! longitudinal complement — one `levioso-ledger/1` JSON line per run,
//! appended and never rewritten, so the perf trajectory (throughput,
//! serve latency percentiles, cache splits, per-rule attribution) is a
//! machine-readable series rather than a point-in-time snapshot. The
//! `levhist` binary renders it and gates on it (see [`check_series`]).
//!
//! ## Append atomicity
//!
//! JSONL has no in-place atomic append on POSIX short of `O_APPEND`
//! bookkeeping; instead [`append`] reuses the `jobdir` tmp+rename idiom:
//! read the existing file, add one line, write the whole thing to a
//! unique `.tmp-<pid>-<seq>` sibling, `rename` over the original. A
//! reader therefore always sees a complete file — either without or
//! with the new record, never a torn line. The ledger assumes a single
//! writer at a time (runs are sequential; the serve loop appends once,
//! at shutdown); concurrent writers would lose one record, not corrupt
//! the file.
//!
//! ## The regression sentinel's robust baseline
//!
//! A fixed "golden number" baseline rots (hosts differ) and a
//! latest-vs-previous diff is noise-bound. [`check_series`] instead
//! compares the newest point of each series against the **median** of
//! the up-to-[`BASELINE_WINDOW`] points before it, with a tolerance of
//! `clamp(MAD_SCALE * MAD, rel_floor * median, rel_ceil * median)` —
//! the median absolute deviation scales the tolerance to the series'
//! own observed host noise, the relative floor keeps a perfectly quiet
//! history from flagging sub-percent wobble, and the relative ceiling
//! keeps a very noisy history from excusing arbitrarily large losses
//! (observed noise never justifies waving through a halving). A series
//! with fewer than
//! [`MIN_SAMPLES`] points is *skipped*, and a check in which every
//! series was skipped must be reported as vacuous by the caller
//! (`levhist --check` exits nonzero) so a fresh clone cannot pass by
//! having no history.

use crate::histogram::Histogram;
use crate::json::Json;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Schema tag every ledger record carries.
pub const SCHEMA: &str = "levioso-ledger/1";

/// Minimum points a series needs (newest included) before the sentinel
/// will judge it; below this it is skipped, and a check where *every*
/// series is skipped is vacuous.
pub const MIN_SAMPLES: usize = 3;

/// Baseline window: the newest point is compared against the median of
/// at most this many points before it.
pub const BASELINE_WINDOW: usize = 8;

/// Tolerance multiplier on the window's median absolute deviation.
pub const MAD_SCALE: f64 = 5.0;

/// Relative tolerance floor for higher-is-better (throughput) series.
/// Back-to-back smoke-tier runs on the same machine show ~20% swings
/// (frequency scaling, co-scheduled load), so the floor sits well above
/// that while still catching the halvings real algorithmic regressions
/// produce; long quiet histories tighten the band via the MAD term.
pub const THROUGHPUT_REL_FLOOR: f64 = 0.35;

/// Relative tolerance ceiling for throughput series: however noisy the
/// window, losing half the throughput always trips the sentinel. This
/// is what makes the injected negative test (`levhist
/// --inject-regression`, which quarters throughput) deterministic.
pub const THROUGHPUT_REL_CEIL: f64 = 0.5;

/// Relative tolerance floor for lower-is-better (latency) series.
/// Wider than the throughput floor: serve latencies come from log2
/// histogram upper bounds, whose quantization alone is a 2x step.
pub const LATENCY_REL_FLOOR: f64 = 1.0;

/// Relative tolerance ceiling for latency series: a 3x inflation of the
/// baseline median always trips, whatever the observed noise.
pub const LATENCY_REL_CEIL: f64 = 2.0;

/// Per-selector latency digest carried by serve-shutdown records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Requests recorded for this selector.
    pub count: u64,
    /// Median request wall-clock, in microseconds (histogram upper bound).
    pub p50_micros: u64,
    /// 95th-percentile request wall-clock, in microseconds.
    pub p95_micros: u64,
    /// 99th-percentile request wall-clock, in microseconds.
    pub p99_micros: u64,
}

impl LatencySummary {
    /// Digests a microsecond-valued histogram.
    pub fn of(h: &Histogram) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            p50_micros: h.quantile_hi(0.50),
            p95_micros: h.quantile_hi(0.95),
            p99_micros: h.quantile_hi(0.99),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("count", Json::Str(self.count.to_string())),
            ("p50_micros", Json::Str(self.p50_micros.to_string())),
            ("p95_micros", Json::Str(self.p95_micros.to_string())),
            ("p99_micros", Json::Str(self.p99_micros.to_string())),
        ])
    }

    fn from_json(v: &Json) -> Option<LatencySummary> {
        let f = |k: &str| v.get(k)?.as_str()?.parse::<u64>().ok();
        Some(LatencySummary {
            count: f("count")?,
            p50_micros: f("p50_micros")?,
            p95_micros: f("p95_micros")?,
            p99_micros: f("p99_micros")?,
        })
    }
}

/// Cumulative cache-tier totals at the end of the run (both cell caches
/// combined, the same split the `run-summary:` line prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheTotals {
    /// In-memory hot-tier hits.
    pub l1_hits: u64,
    /// On-disk cell-cache hits.
    pub l2_hits: u64,
    /// Cells that had to be computed.
    pub misses: u64,
    /// Poisoned (integrity-failed, healed) cache entries.
    pub poisoned: u64,
}

/// One blamed-cycle total from the delay-attribution report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttribTotal {
    /// Scheme the cycles were attributed under.
    pub scheme: String,
    /// Attribution rule name (e.g. `levioso:true-dep`).
    pub rule: String,
    /// Blamed cycles.
    pub cycles: u64,
}

/// One run, as one ledger line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    /// What appended this record: a binary name (`fig2_overhead`, `all`)
    /// or `serve` for the serve loop's shutdown record.
    pub source: String,
    /// The `CORE_REV` fingerprint of the simulator that ran.
    pub fingerprint: String,
    /// Sweep tier (`smoke`/`paper`).
    pub tier: String,
    /// Worker threads the sweep pool ran with.
    pub threads: u64,
    /// End-to-end wall clock of the run, seconds.
    pub wall_seconds: f64,
    /// Freshly simulated cells (cache hits excluded by construction).
    pub cells: u64,
    /// Total simulated cycles across those cells.
    pub sim_cycles: u64,
    /// Total retired instructions across those cells.
    pub retired_instrs: u64,
    /// Host busy seconds spent inside cell simulations.
    pub busy_seconds: f64,
    /// Headline simulator throughput (zero when `cells == 0`).
    pub kilocycles_per_busy_sec: f64,
    /// Cells completed per busy second (zero when `cells == 0`).
    pub cells_per_busy_sec: f64,
    /// Cumulative cache split (both cell caches).
    pub cache: CacheTotals,
    /// Per-selector serve latency digests, sorted by selector; empty for
    /// non-serve runs.
    pub latency: Vec<(String, LatencySummary)>,
    /// Per-rule blamed-cycle totals, sorted by (scheme, rule); empty
    /// when the run did no attribution.
    pub attrib: Vec<AttribTotal>,
    /// Content hash of the run's final `levioso-metrics/1` snapshot
    /// text, tying the summary numbers above to the full snapshot that
    /// produced them.
    pub metrics_digest: String,
}

impl Record {
    /// Serializes to the one-line JSON form stored in the ledger.
    /// `u64` quantities are decimal strings (this crate's JSON numbers
    /// are `i64`/`f64`); floats round-trip exactly through
    /// [`Json::parse`] (shortest-repr emission).
    pub fn to_json(&self) -> Json {
        let latency = self
            .latency
            .iter()
            .map(|(selector, s)| (selector.clone(), s.to_json()))
            .collect::<Vec<_>>();
        let attrib = self
            .attrib
            .iter()
            .map(|a| {
                Json::obj([
                    ("scheme", Json::str(&a.scheme)),
                    ("rule", Json::str(&a.rule)),
                    ("cycles", Json::Str(a.cycles.to_string())),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("source", Json::str(&self.source)),
            ("fingerprint", Json::str(&self.fingerprint)),
            ("tier", Json::str(&self.tier)),
            ("threads", Json::Str(self.threads.to_string())),
            ("wall_seconds", Json::F64(self.wall_seconds)),
            ("cells", Json::Str(self.cells.to_string())),
            ("sim_cycles", Json::Str(self.sim_cycles.to_string())),
            ("retired_instrs", Json::Str(self.retired_instrs.to_string())),
            ("busy_seconds", Json::F64(self.busy_seconds)),
            ("kilocycles_per_busy_sec", Json::F64(self.kilocycles_per_busy_sec)),
            ("cells_per_busy_sec", Json::F64(self.cells_per_busy_sec)),
            (
                "cache",
                Json::obj([
                    ("l1_hits", Json::Str(self.cache.l1_hits.to_string())),
                    ("l2_hits", Json::Str(self.cache.l2_hits.to_string())),
                    ("misses", Json::Str(self.cache.misses.to_string())),
                    ("poisoned", Json::Str(self.cache.poisoned.to_string())),
                ]),
            ),
            ("latency", Json::Obj(latency)),
            ("attrib", Json::Arr(attrib)),
            ("metrics_digest", Json::str(&self.metrics_digest)),
        ])
    }

    /// Reconstructs a record from [`Record::to_json`] output. The error
    /// names the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Record, String> {
        let strf = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {k:?}"))
        };
        let u64f = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format!("missing or non-u64-string field {k:?}"))
        };
        let f64f = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .filter(|x| x.is_finite())
                .ok_or_else(|| format!("missing or non-finite field {k:?}"))
        };
        let schema = strf("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (expected {SCHEMA:?})"));
        }
        let cache = v.get("cache").ok_or("missing field \"cache\"")?;
        let cacheu = |k: &str| {
            cache
                .get(k)
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format!("missing or non-u64-string cache field {k:?}"))
        };
        let mut latency = Vec::new();
        match v.get("latency") {
            Some(Json::Obj(pairs)) => {
                for (selector, doc) in pairs {
                    let s = LatencySummary::from_json(doc)
                        .ok_or_else(|| format!("malformed latency summary for {selector:?}"))?;
                    latency.push((selector.clone(), s));
                }
            }
            _ => return Err("missing or non-object field \"latency\"".to_string()),
        }
        let mut attrib = Vec::new();
        for a in v.get("attrib").and_then(Json::as_arr).ok_or("missing field \"attrib\"")? {
            let field = |k: &str| {
                a.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("malformed attrib entry: missing {k:?}"))
            };
            attrib.push(AttribTotal {
                scheme: field("scheme")?,
                rule: field("rule")?,
                cycles: field("cycles")?
                    .parse::<u64>()
                    .map_err(|_| "malformed attrib entry: non-u64 cycles".to_string())?,
            });
        }
        Ok(Record {
            source: strf("source")?,
            fingerprint: strf("fingerprint")?,
            tier: strf("tier")?,
            threads: u64f("threads")?,
            wall_seconds: f64f("wall_seconds")?,
            cells: u64f("cells")?,
            sim_cycles: u64f("sim_cycles")?,
            retired_instrs: u64f("retired_instrs")?,
            busy_seconds: f64f("busy_seconds")?,
            kilocycles_per_busy_sec: f64f("kilocycles_per_busy_sec")?,
            cells_per_busy_sec: f64f("cells_per_busy_sec")?,
            cache: CacheTotals {
                l1_hits: cacheu("l1_hits")?,
                l2_hits: cacheu("l2_hits")?,
                misses: cacheu("misses")?,
                poisoned: cacheu("poisoned")?,
            },
            latency,
            attrib,
            metrics_digest: strf("metrics_digest")?,
        })
    }
}

/// Appends one record to the ledger at `path` (creating parent
/// directories and the file as needed) via the tmp+rename idiom — see
/// the module docs for the atomicity argument. A final line missing its
/// newline (a pre-rename crash can't cause this, but a hand-edit can)
/// is healed before appending.
pub fn append(path: &Path, record: &Record) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(Path::new("."));
    std::fs::create_dir_all(dir)?;
    let mut text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&record.to_json().emit());
    text.push('\n');
    let tmp =
        dir.join(format!(".tmp-{}-{:x}", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed)));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Loads every record in the ledger at `path`. A missing file is an
/// empty ledger; a malformed line is an error naming its 1-based line
/// number (the ledger is a gate input — silently skipping corruption
/// would let the sentinel go vacuous).
pub fn load(path: &Path) -> Result<Vec<Record>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line)
            .map_err(|e| format!("{}:{}: not JSON: {e}", path.display(), i + 1))?;
        let rec =
            Record::from_json(&doc).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// Which way a series is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style: the sentinel fails on drops below baseline.
    HigherIsBetter,
    /// Latency-style: the sentinel fails on inflation above baseline.
    LowerIsBetter,
}

/// One observation in a series: the value plus the 1-based ledger line
/// of the record it came from (so a violation can name its evidence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// 1-based line number in the ledger file.
    pub line: usize,
    /// Observed value.
    pub value: f64,
}

/// One comparable trend series: a metric restricted to records with the
/// same source, tier, and thread count (rates from different binaries or
/// pool sizes are not comparable, so mixing them would manufacture
/// noise and regressions out of workload-mix changes).
#[derive(Debug, Clone)]
pub struct Series {
    /// Metric name (`kilocycles_per_busy_sec`, `serve_p95_micros/check`, ...).
    pub metric: String,
    /// Record source the series is restricted to.
    pub source: String,
    /// Tier the series is restricted to.
    pub tier: String,
    /// Thread count the series is restricted to.
    pub threads: u64,
    /// Which way regressions point.
    pub direction: Direction,
    /// Relative tolerance floor (fraction of the baseline median).
    pub rel_floor: f64,
    /// Relative tolerance ceiling (fraction of the baseline median).
    pub rel_ceil: f64,
    /// Observations in ledger (append) order.
    pub points: Vec<Point>,
}

impl Series {
    /// Display/diagnostic key: `metric[source tier tN]`.
    pub fn key(&self) -> String {
        format!("{}[{} {} t{}]", self.metric, self.source, self.tier, self.threads)
    }
}

/// Extracts every trend series from a loaded ledger:
///
/// * `kilocycles_per_busy_sec` and `cells_per_busy_sec` (higher is
///   better) from records that actually simulated (`cells > 0` — a
///   cache-warm run contributes no throughput sample, the same honesty
///   rule `perfcheck` enforces on the snapshot);
/// * `serve_p50_micros/<selector>` and `serve_p95_micros/<selector>`
///   (lower is better) from each record's latency digests.
///
/// Series order is deterministic (sorted by key); point order is ledger
/// order.
pub fn series_of(records: &[Record]) -> Vec<Series> {
    use std::collections::BTreeMap;
    /// `(metric, source, tier, threads)` — the comparability key.
    type SeriesKey = (String, String, String, u64);
    /// `(direction, (rel_floor, rel_ceil), points)` — everything else.
    type SeriesBody = (Direction, (f64, f64), Vec<Point>);
    let mut map: BTreeMap<SeriesKey, SeriesBody> = BTreeMap::new();
    let mut push =
        |metric: String, rec: &Record, line: usize, dir, bounds: (f64, f64), value: f64| {
            map.entry((metric, rec.source.clone(), rec.tier.clone(), rec.threads))
                .or_insert_with(|| (dir, bounds, Vec::new()))
                .2
                .push(Point { line, value });
        };
    for (i, rec) in records.iter().enumerate() {
        let line = i + 1;
        if rec.cells > 0 && rec.busy_seconds > 0.0 {
            push(
                "kilocycles_per_busy_sec".to_string(),
                rec,
                line,
                Direction::HigherIsBetter,
                (THROUGHPUT_REL_FLOOR, THROUGHPUT_REL_CEIL),
                rec.kilocycles_per_busy_sec,
            );
            push(
                "cells_per_busy_sec".to_string(),
                rec,
                line,
                Direction::HigherIsBetter,
                (THROUGHPUT_REL_FLOOR, THROUGHPUT_REL_CEIL),
                rec.cells_per_busy_sec,
            );
        }
        for (selector, s) in &rec.latency {
            if s.count == 0 {
                continue;
            }
            push(
                format!("serve_p50_micros/{selector}"),
                rec,
                line,
                Direction::LowerIsBetter,
                (LATENCY_REL_FLOOR, LATENCY_REL_CEIL),
                s.p50_micros as f64,
            );
            push(
                format!("serve_p95_micros/{selector}"),
                rec,
                line,
                Direction::LowerIsBetter,
                (LATENCY_REL_FLOOR, LATENCY_REL_CEIL),
                s.p95_micros as f64,
            );
        }
    }
    map.into_iter()
        .map(|((metric, source, tier, threads), (direction, (rel_floor, rel_ceil), points))| {
            Series { metric, source, tier, threads, direction, rel_floor, rel_ceil, points }
        })
        .collect()
}

/// The sentinel's verdict on one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesCheck {
    /// Too little history to judge (`have < `[`MIN_SAMPLES`]).
    Insufficient {
        /// Points available (newest included).
        have: usize,
    },
    /// The newest point sits inside the tolerance band.
    Ok {
        /// Newest point's value.
        candidate: f64,
        /// Baseline-window median.
        median: f64,
        /// Allowed deviation from the median.
        tolerance: f64,
    },
    /// The newest point regressed past the tolerance band.
    Regressed {
        /// Newest point (the offender).
        candidate: Point,
        /// Baseline-window median.
        median: f64,
        /// Allowed deviation from the median.
        tolerance: f64,
        /// Ledger lines of the baseline-window records.
        window_lines: Vec<usize>,
    },
}

/// Median of `values` (not required sorted; empty -> 0.0).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ledger values are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation of `values` around their median.
pub fn mad(values: &[f64]) -> f64 {
    let m = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&deviations)
}

/// Judges one series: the newest point against the robust baseline of
/// the up-to-[`BASELINE_WINDOW`] points before it (see module docs).
pub fn check_series(series: &Series) -> SeriesCheck {
    let n = series.points.len();
    if n < MIN_SAMPLES {
        return SeriesCheck::Insufficient { have: n };
    }
    let candidate = series.points[n - 1];
    let window = &series.points[n.saturating_sub(1 + BASELINE_WINDOW)..n - 1];
    let values: Vec<f64> = window.iter().map(|p| p.value).collect();
    let m = median(&values);
    let tolerance =
        (MAD_SCALE * mad(&values)).max(series.rel_floor * m.abs()).min(series.rel_ceil * m.abs());
    let regressed = match series.direction {
        Direction::HigherIsBetter => candidate.value < m - tolerance,
        Direction::LowerIsBetter => candidate.value > m + tolerance,
    };
    if regressed {
        SeriesCheck::Regressed {
            candidate,
            median: m,
            tolerance,
            window_lines: window.iter().map(|p| p.line).collect(),
        }
    } else {
        SeriesCheck::Ok { candidate: candidate.value, median: m, tolerance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Record {
        Record {
            source: "all".to_string(),
            fingerprint: "deadbeef".to_string(),
            tier: "smoke".to_string(),
            threads: 2,
            wall_seconds: 1.25,
            cells: 271,
            sim_cycles: 123_456_789_012,
            retired_instrs: 98_765,
            busy_seconds: 0.75,
            kilocycles_per_busy_sec: 764.3,
            cells_per_busy_sec: 361.33,
            cache: CacheTotals { l1_hits: 1, l2_hits: 2, misses: 271, poisoned: 0 },
            latency: vec![(
                "check".to_string(),
                LatencySummary { count: 3, p50_micros: 1024, p95_micros: 4096, p99_micros: 4096 },
            )],
            attrib: vec![AttribTotal {
                scheme: "levioso".to_string(),
                rule: "levioso:true-dep".to_string(),
                cycles: 42,
            }],
            metrics_digest: "0123456789abcdef".to_string(),
        }
    }

    #[test]
    fn record_round_trips_through_one_line_json() {
        let rec = sample_record();
        let line = rec.to_json().emit();
        assert!(!line.contains('\n'), "ledger records must be single lines");
        let back = Record::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn from_json_names_the_broken_field() {
        let mut doc = sample_record().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "cells");
        }
        let err = Record::from_json(&doc).unwrap_err();
        assert!(err.contains("cells"), "error {err:?} should name the field");
        let wrong = Json::obj([("schema", Json::str("levioso-ledger/999"))]);
        assert!(Record::from_json(&wrong).unwrap_err().contains("unsupported schema"));
    }

    #[test]
    fn append_accumulates_lines_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("levioso-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ledger.jsonl");
        let rec = sample_record();
        for _ in 0..3 {
            append(&path, &rec).unwrap();
        }
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[2], rec);
        let temps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(temps.is_empty(), "append must clean up its temp files");
        // A hand-truncated trailing newline is healed, not corrupted into
        // a doubled line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end()).unwrap();
        append(&path, &rec).unwrap();
        assert_eq!(load(&path).unwrap().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_is_strict_and_names_the_line() {
        let dir = std::env::temp_dir().join(format!("levioso-ledger-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        assert_eq!(load(&path).unwrap(), Vec::new(), "missing file is an empty ledger");
        let good = sample_record().to_json().emit();
        std::fs::write(&path, format!("{good}\nnot json\n")).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains(":2:"), "error {err:?} should carry the line number");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn throughput_series(values: &[f64]) -> Series {
        Series {
            metric: "kilocycles_per_busy_sec".to_string(),
            source: "all".to_string(),
            tier: "smoke".to_string(),
            threads: 2,
            direction: Direction::HigherIsBetter,
            rel_floor: THROUGHPUT_REL_FLOOR,
            rel_ceil: THROUGHPUT_REL_CEIL,
            points: values
                .iter()
                .enumerate()
                .map(|(i, &value)| Point { line: i + 1, value })
                .collect(),
        }
    }

    #[test]
    fn robust_baseline_math() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mad(&[1.0, 1.0, 5.0]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 4.0, 9.0]), 1.5);
    }

    #[test]
    fn sentinel_passes_stable_history_and_catches_a_drop() {
        let ok = throughput_series(&[760.0, 770.0, 765.0, 768.0]);
        assert!(matches!(check_series(&ok), SeriesCheck::Ok { .. }));
        let dropped = throughput_series(&[760.0, 770.0, 765.0, 380.0]);
        match check_series(&dropped) {
            SeriesCheck::Regressed { candidate, window_lines, .. } => {
                assert_eq!(candidate.line, 4);
                assert_eq!(window_lines, vec![1, 2, 3]);
            }
            other => panic!("expected a regression, got {other:?}"),
        }
        // Lower-is-better flips the failing side: a latency drop is fine,
        // an inflation is not.
        let mut lat = throughput_series(&[1000.0, 1000.0, 1000.0, 4100.0]);
        lat.direction = Direction::LowerIsBetter;
        lat.rel_floor = LATENCY_REL_FLOOR;
        lat.rel_ceil = LATENCY_REL_CEIL;
        assert!(matches!(check_series(&lat), SeriesCheck::Regressed { .. }));
        lat.points[3].value = 500.0;
        assert!(matches!(check_series(&lat), SeriesCheck::Ok { .. }));
    }

    #[test]
    fn sentinel_refuses_to_judge_thin_history() {
        let thin = throughput_series(&[760.0, 380.0]);
        assert_eq!(check_series(&thin), SeriesCheck::Insufficient { have: 2 });
    }

    #[test]
    fn mad_scales_the_tolerance_to_observed_noise() {
        // Noisy history: a swing that would fail the quiet series passes.
        let noisy = throughput_series(&[700.0, 900.0, 600.0, 1000.0, 650.0]);
        assert!(matches!(check_series(&noisy), SeriesCheck::Ok { .. }));
        // Quiet history: the floor still tolerates machine-noise wobble
        // (sub-35% — short runs really do swing ~20% back to back).
        let quiet = throughput_series(&[800.0, 800.0, 800.0, 600.0]);
        assert!(matches!(check_series(&quiet), SeriesCheck::Ok { .. }));
        let beyond = throughput_series(&[800.0, 800.0, 800.0, 500.0]);
        assert!(matches!(check_series(&beyond), SeriesCheck::Regressed { .. }));
    }

    #[test]
    fn tolerance_ceiling_keeps_noise_from_excusing_a_halving() {
        // Window [400, 1200, 300, 1300]: median 800, MAD 450 — so the
        // 5*MAD term alone (2250) would swallow any drop whatsoever.
        // The ceiling caps the band at rel_ceil * median = 400, so
        // losing more than half the median throughput still trips.
        let wild = throughput_series(&[400.0, 1200.0, 300.0, 1300.0, 200.0]);
        let window = [400.0, 1200.0, 300.0, 1300.0];
        let m = median(&window);
        assert!(MAD_SCALE * mad(&window) > THROUGHPUT_REL_CEIL * m, "precondition: MAD dominates");
        match check_series(&wild) {
            SeriesCheck::Regressed { candidate, tolerance, .. } => {
                assert_eq!(candidate.value, 200.0);
                assert_eq!(tolerance, THROUGHPUT_REL_CEIL * m);
            }
            other => panic!("expected the capped band to catch the halving, got {other:?}"),
        }
        // Just inside the capped band passes.
        let inside = throughput_series(&[400.0, 1200.0, 300.0, 1300.0, m * 0.51]);
        assert!(matches!(check_series(&inside), SeriesCheck::Ok { .. }));
    }

    #[test]
    fn baseline_window_slides_past_ancient_history() {
        // 4 old slow points, then 8 fast ones, then a candidate at the
        // fast level: the window only sees the fast era, so it passes ...
        let mut values = vec![100.0; 4];
        values.extend([800.0; 8]);
        values.push(810.0);
        assert!(matches!(check_series(&throughput_series(&values)), SeriesCheck::Ok { .. }));
        // ... and a candidate back at the slow level fails even though
        // all-time history would have normalized it.
        *values.last_mut().unwrap() = 100.0;
        assert!(matches!(check_series(&throughput_series(&values)), SeriesCheck::Regressed { .. }));
    }
}
