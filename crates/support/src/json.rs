//! A minimal JSON value type with emission and parsing.
//!
//! Replaces `serde`/`serde_json` for the workspace's narrow needs: figure
//! export, report round-trips, and config dumps. Values are built and read
//! explicitly (no derive magic), which keeps every (de)serialization site
//! greppable.
//!
//! Numbers preserve the integer/float distinction: integers that fit `i64`
//! parse as [`Json::I64`]; everything else becomes [`Json::F64`]. Emission
//! uses Rust's shortest round-trip float formatting, so
//! `parse(emit(v)) == v` for every finite value. Non-finite floats emit as
//! `null` (JSON has no representation for them), matching `serde_json`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that is an integer fitting `i64`.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (and significant for equality).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload of either number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line emission.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty emission with two-space indentation.
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) if v.is_finite() => {
                // `{:?}` is Rust's shortest-round-trip formatting and always
                // includes a `.0` or exponent, keeping floats floats.
                out.push_str(&format!("{v:?}"));
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with its byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting guard: deeper documents than this are rejected rather than
/// risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits and advances past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError { pos: start, message: format!("invalid number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::I64(0),
            Json::I64(i64::MIN),
            Json::I64(i64::MAX),
            Json::F64(1.5),
            Json::F64(-0.001),
            Json::F64(1e300),
            Json::Str("plain".into()),
            Json::Str("esc \" \\ \n \t \u{8} \u{c} \u{1} ünïcode 🦀".into()),
        ] {
            let text = v.emit();
            assert_eq!(Json::parse(&text).unwrap(), v, "compact: {text}");
            let pretty = v.emit_pretty();
            assert_eq!(Json::parse(&pretty).unwrap(), v, "pretty: {pretty}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let v = Json::obj([
            ("name", Json::str("fig")),
            ("xs", Json::Arr(vec![Json::I64(1), Json::F64(2.25), Json::Null])),
            (
                "nested",
                Json::obj([("deep", Json::Arr(vec![Json::obj([("k", Json::Bool(false))])]))]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
        assert_eq!(Json::parse(&v.emit_pretty()).unwrap(), v);
    }

    #[test]
    fn integers_stay_integers_and_floats_stay_floats() {
        assert_eq!(Json::parse("7").unwrap(), Json::I64(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::F64(7.0));
        assert_eq!(Json::parse("1e2").unwrap(), Json::F64(100.0));
        // Magnitude beyond i64 falls back to f64 like serde_json's arbitrary
        // precision would not — documented narrowing.
        assert_eq!(Json::parse("99999999999999999999").unwrap(), Json::F64(1e20));
        assert!(Json::I64(5).emit() == "5" && Json::F64(5.0).emit() == "5.0");
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(Json::parse(r#""🦀""#).unwrap(), Json::Str("🦀".into()));
        assert!(Json::parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn errors_carry_positions() {
        for bad in ["", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{1: 2}", "[1 2]"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
        let e = Json::parse("[true, xfalse]").unwrap_err();
        assert_eq!(e.pos, 7);
    }

    #[test]
    fn nonfinite_floats_emit_null() {
        assert_eq!(Json::F64(f64::NAN).emit(), "null");
        assert_eq!(Json::F64(f64::INFINITY).emit(), "null");
    }
}
