//! The job-directory protocol between the warm sweep server and clients.
//!
//! `all --serve <jobdir>` polls a directory for request files; `levq`
//! (and anything else that can write JSON) drops them in and waits for
//! the matching response. The filesystem *is* the protocol — no sockets,
//! so it composes with CI sandboxes and plain shell:
//!
//! * a request is `<id>.req.json`, a response `<id>.resp.json`, both
//!   tagged `levioso-sweep-job/1`;
//! * both sides write **atomically** (unique temp file + `rename`, the
//!   same torn-write discipline as [`crate::cache`]), so a poller never
//!   observes a half-written document — a file that exists is complete;
//! * request ids are restricted to a filename-safe alphabet
//!   ([`valid_id`]) so an id can never escape the job directory;
//! * malformed request *content* is the server's problem (it answers
//!   with an error response keyed by the filename's id); malformed
//!   request *filenames* are skipped.
//!
//! This module owns the schema: typed [`Request`]/[`Response`] structs,
//! their exact JSON round-trip, and the directory conventions. The
//! server loop itself lives in `levioso-bench` (it needs the figure
//! runners); keeping the protocol here lets `levq`, the server, and
//! tests share one parser.

use crate::json::Json;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Protocol schema tag carried by every request and response; bump if
/// the layout changes.
pub const SCHEMA: &str = "levioso-sweep-job/1";

/// Filename suffix of request files.
pub const REQ_SUFFIX: &str = ".req.json";

/// Filename suffix of response files.
pub const RESP_SUFFIX: &str = ".resp.json";

/// Whether `id` is safe to embed in a job-directory filename: nonempty,
/// ASCII alphanumerics plus `-` `_` `.`, and not starting with a dot
/// (dot-prefixed names are reserved for temp files).
pub fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && !id.starts_with('.')
        && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Path of the request file for `id` inside `dir`.
pub fn request_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}{REQ_SUFFIX}"))
}

/// Path of the response file for `id` inside `dir`.
pub fn response_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{id}{RESP_SUFFIX}"))
}

/// The id encoded in a request filename, if the name has the request
/// suffix and a [`valid_id`] stem.
pub fn request_id(path: &Path) -> Option<String> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(REQ_SUFFIX)?;
    valid_id(stem).then(|| stem.to_string())
}

/// Request files currently pending in `dir`, sorted by filename for a
/// deterministic service order. Unreadable directories read as empty
/// (the server keeps polling rather than dying on a transient error).
pub fn pending_requests(dir: &Path) -> Vec<PathBuf> {
    let mut reqs: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| request_id(p).is_some())
        .collect();
    reqs.sort();
    reqs
}

/// Atomically writes `doc` to `dir/filename` via a unique temp file +
/// `rename`, creating `dir` if needed.
pub fn write_atomic(dir: &Path, filename: &str, doc: &Json) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir)?;
    let tmp =
        dir.join(format!(".tmp-{}-{:x}", std::process::id(), SEQ.fetch_add(1, Ordering::Relaxed)));
    std::fs::write(&tmp, doc.emit_pretty())?;
    std::fs::rename(&tmp, dir.join(filename)).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// Removes orphaned atomic-write staging files — `.tmp-*` names whose
/// modification time is strictly older than `cutoff` — from `dir`,
/// returning how many were deleted. A writer that crashed between its
/// temp write and the `rename` leaves such a file behind forever (no
/// live process will ever pick its pid+sequence name again), so the
/// serve loop calls this at startup with its own start time as the
/// cutoff: anything older cannot belong to a write that is still in
/// flight. Non-temp files and fresh temps are never touched; an
/// unreadable directory sweeps nothing.
pub fn sweep_orphan_temps(dir: &Path, cutoff: std::time::SystemTime) -> usize {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
        let name = entry.file_name();
        if !name.to_string_lossy().starts_with(".tmp-") {
            continue;
        }
        let old = entry
            .metadata()
            .and_then(|m| m.modified())
            .map(|mtime| mtime < cutoff)
            .unwrap_or(false);
        if old && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// One job: run `selector` (a figure/table/meta selector the server
/// interprets, e.g. `check` or `table4`) at `tier` with `threads`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id; names the request/response files. Must satisfy
    /// [`valid_id`].
    pub id: String,
    /// What to run: the server's dispatch key.
    pub selector: String,
    /// Sweep tier (`smoke`/`paper`).
    pub tier: String,
    /// Worker threads for the sweep pool.
    pub threads: usize,
    /// The client's expected sim-core fingerprint; empty to accept any.
    /// The server refuses a mismatch (its caches and goldens are bound
    /// to its own core revision).
    pub fingerprint: String,
}

impl Request {
    /// Serializes to the on-disk request document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("kind", Json::str("request")),
            ("id", Json::str(&self.id)),
            ("selector", Json::str(&self.selector)),
            ("tier", Json::str(&self.tier)),
            ("threads", Json::I64(self.threads.min(i64::MAX as usize) as i64)),
            ("fingerprint", Json::str(&self.fingerprint)),
        ])
    }

    /// Parses a request document, with a human reason on failure.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let s = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let schema = s("schema")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        if s("kind")? != "request" {
            return Err("kind is not \"request\"".to_string());
        }
        let id = s("id")?;
        if !valid_id(&id) {
            return Err(format!("invalid id {id:?}"));
        }
        let threads = doc
            .get("threads")
            .and_then(Json::as_i64)
            .and_then(|t| usize::try_from(t).ok())
            .filter(|&t| t >= 1)
            .ok_or("threads must be an integer >= 1")?;
        Ok(Request {
            id,
            selector: s("selector")?,
            tier: s("tier")?,
            threads,
            fingerprint: s("fingerprint")?,
        })
    }

    /// Atomically writes this request into `dir` as `<id>.req.json`.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        write_atomic(dir, &format!("{}{REQ_SUFFIX}", self.id), &self.to_json())
    }
}

/// The cache-tier split a served request observed: how many cell
/// lookups were answered from memory (L1), from disk (L2), and not at
/// all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSplit {
    /// Lookups served by the in-memory hot tier (zero filesystem I/O).
    pub l1_hits: u64,
    /// Lookups served by the on-disk cache.
    pub l2_hits: u64,
    /// Lookups that required a fresh simulation.
    pub misses: u64,
}

impl CacheSplit {
    /// Serializes to the embedded `cache` object.
    pub fn to_json(&self) -> Json {
        fn n(v: u64) -> Json {
            Json::I64(v.min(i64::MAX as u64) as i64)
        }
        Json::obj([
            ("l1_hits", n(self.l1_hits)),
            ("l2_hits", n(self.l2_hits)),
            ("misses", n(self.misses)),
        ])
    }

    /// Parses the embedded `cache` object.
    pub fn from_json(doc: &Json) -> Result<CacheSplit, String> {
        let n = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_i64)
                .and_then(|v| u64::try_from(v).ok())
                .ok_or_else(|| format!("missing or invalid cache field {key:?}"))
        };
        Ok(CacheSplit { l1_hits: n("l1_hits")?, l2_hits: n("l2_hits")?, misses: n("misses")? })
    }
}

/// Exit status carried by error responses (mirrors the experiment
/// binaries' usage-error exit code).
pub const ERROR_STATUS: i64 = 2;

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoes the request id.
    pub id: String,
    /// Whether the request executed. An error response (unparseable
    /// request, unknown selector, fingerprint mismatch) has `report`
    /// empty and `error` set. A request that executed but *failed its
    /// gate* (golden drift, leak) is `ok` with a nonzero `status`.
    pub ok: bool,
    /// The exit status of the equivalent cold CLI invocation; what the
    /// client exits with.
    pub status: i64,
    /// Failure reason when `!ok`.
    pub error: Option<String>,
    /// The exact bytes the equivalent cold CLI run prints (byte-identity
    /// is the served-mode correctness bar).
    pub report: String,
    /// Wall-clock seconds the server spent executing this request.
    pub wall_seconds: f64,
    /// The cell-cache tier split observed while serving it.
    pub cache: CacheSplit,
}

impl Response {
    /// A response whose request executed; `status` is the equivalent cold
    /// CLI invocation's exit code.
    pub fn ok(
        id: &str,
        status: i64,
        report: String,
        wall_seconds: f64,
        cache: CacheSplit,
    ) -> Response {
        Response { id: id.to_string(), ok: true, status, error: None, report, wall_seconds, cache }
    }

    /// An error response (empty report, zero split, [`ERROR_STATUS`]).
    pub fn err(id: &str, error: impl Into<String>, wall_seconds: f64) -> Response {
        Response {
            id: id.to_string(),
            ok: false,
            status: ERROR_STATUS,
            error: Some(error.into()),
            report: String::new(),
            wall_seconds,
            cache: CacheSplit::default(),
        }
    }

    /// Serializes to the on-disk response document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("kind", Json::str("response")),
            ("id", Json::str(&self.id)),
            ("ok", Json::Bool(self.ok)),
            ("status", Json::I64(self.status)),
            ("error", self.error.as_deref().map_or(Json::Null, Json::str)),
            ("report", Json::str(&self.report)),
            ("wall_seconds", Json::F64(self.wall_seconds)),
            ("cache", self.cache.to_json()),
        ])
    }

    /// Parses a response document, with a human reason on failure.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        let s = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let schema = s("schema")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        if s("kind")? != "response" {
            return Err("kind is not \"response\"".to_string());
        }
        let ok = doc.get("ok").and_then(Json::as_bool).ok_or("missing or non-bool field \"ok\"")?;
        let status = doc
            .get("status")
            .and_then(Json::as_i64)
            .ok_or("missing or non-integer field \"status\"")?;
        let error = match doc.get("error") {
            None | Some(Json::Null) => None,
            Some(e) => Some(e.as_str().ok_or("non-string field \"error\"")?.to_string()),
        };
        let wall_seconds = doc
            .get("wall_seconds")
            .and_then(Json::as_f64)
            .filter(|w| w.is_finite() && *w >= 0.0)
            .ok_or("wall_seconds must be a finite non-negative number")?;
        let cache = CacheSplit::from_json(doc.get("cache").ok_or("missing field \"cache\"")?)?;
        Ok(Response { id: s("id")?, ok, status, error, report: s("report")?, wall_seconds, cache })
    }

    /// Atomically writes this response into `dir` as `<id>.resp.json`.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        write_atomic(dir, &format!("{}{RESP_SUFFIX}", self.id), &self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("levioso-jobdir-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp job dir");
        dir
    }

    fn request(id: &str) -> Request {
        Request {
            id: id.to_string(),
            selector: "check".to_string(),
            tier: "smoke".to_string(),
            threads: 8,
            fingerprint: "core-v1".to_string(),
        }
    }

    #[test]
    fn id_validation_rejects_path_escapes() {
        assert!(valid_id("req-1"));
        assert!(valid_id("ci_smoke.2"));
        assert!(!valid_id(""));
        assert!(!valid_id(".hidden"));
        assert!(!valid_id("../escape"));
        assert!(!valid_id("a/b"));
        assert!(!valid_id("sp ace"));
    }

    #[test]
    fn request_round_trips_exactly() {
        let req = request("req-1");
        assert_eq!(Request::from_json(&req.to_json()), Ok(req));
    }

    #[test]
    fn orphan_sweep_removes_only_stale_temps() {
        let dir = tmpdir("orphans");
        std::fs::write(dir.join(".tmp-999-0"), "crashed writer leftover").unwrap();
        std::fs::write(dir.join(".tmp-999-1"), "another one").unwrap();
        std::fs::write(dir.join("live.req.json"), "{}").unwrap();
        // mtime granularity guard: make sure the cutoff lands strictly
        // after the stale files and strictly before the fresh one.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let cutoff = std::time::SystemTime::now();
        std::thread::sleep(std::time::Duration::from_millis(30));
        std::fs::write(dir.join(".tmp-1000-0"), "in-flight write").unwrap();
        assert_eq!(sweep_orphan_temps(&dir, cutoff), 2);
        assert!(!dir.join(".tmp-999-0").exists());
        assert!(!dir.join(".tmp-999-1").exists());
        assert!(dir.join(".tmp-1000-0").exists(), "fresh temps must survive");
        assert!(dir.join("live.req.json").exists(), "non-temp files must survive");
        // Idempotent: nothing stale left.
        assert_eq!(sweep_orphan_temps(&dir, cutoff), 0);
        assert_eq!(sweep_orphan_temps(&dir.join("missing"), cutoff), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_parse_failures_have_reasons() {
        let mut doc = request("req-1").to_json();
        assert!(Request::from_json(&Json::Null).unwrap_err().contains("schema"));
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "threads");
        }
        assert!(Request::from_json(&doc).unwrap_err().contains("threads"));
        let bad_schema = Json::obj([("schema", Json::str("other/9"))]);
        assert!(Request::from_json(&bad_schema).unwrap_err().contains("other/9"));
        let mut zero_threads = request("req-1").to_json();
        if let Json::Obj(pairs) = &mut zero_threads {
            for (k, v) in pairs.iter_mut() {
                if k == "threads" {
                    *v = Json::I64(0);
                }
            }
        }
        assert!(Request::from_json(&zero_threads).unwrap_err().contains("threads"));
        let mut bad_id = request("req-1").to_json();
        if let Json::Obj(pairs) = &mut bad_id {
            for (k, v) in pairs.iter_mut() {
                if k == "id" {
                    *v = Json::str("../x");
                }
            }
        }
        assert!(Request::from_json(&bad_id).unwrap_err().contains("invalid id"));
    }

    #[test]
    fn response_round_trips_exactly() {
        let ok = Response::ok(
            "req-1",
            0,
            "golden check OK: 271 cells\n".to_string(),
            1.25,
            CacheSplit { l1_hits: 100, l2_hits: 8, misses: 1 },
        );
        assert_eq!(Response::from_json(&ok.to_json()), Ok(ok));
        let drifted =
            Response::ok("req-3", 1, "DRIFT ...\n".to_string(), 0.5, CacheSplit::default());
        assert_eq!(Response::from_json(&drifted.to_json()), Ok(drifted));
        let err = Response::err("req-2", "unknown selector \"fig99\"", 0.0);
        assert_eq!(err.status, ERROR_STATUS);
        assert_eq!(Response::from_json(&err.to_json()), Ok(err));
    }

    #[test]
    fn pending_requests_sorted_and_filtered() {
        let dir = tmpdir("pending");
        request("b-second").write(&dir).unwrap();
        request("a-first").write(&dir).unwrap();
        Response::err("a-first", "x", 0.0).write(&dir).unwrap();
        std::fs::write(dir.join(".tmp-999-0"), "partial").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let pending = pending_requests(&dir);
        assert_eq!(
            pending,
            vec![request_path(&dir, "a-first"), request_path(&dir, "b-second")],
            "responses, temp files, and strangers are not requests"
        );
        assert_eq!(request_id(&pending[0]), Some("a-first".to_string()));
        assert_eq!(request_id(&response_path(&dir, "a-first")), None);
    }

    #[test]
    fn write_atomic_leaves_no_temp_files() {
        let dir = tmpdir("atomic");
        let req = request("req-1");
        req.write(&dir).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
        let text = std::fs::read_to_string(request_path(&dir, "req-1")).unwrap();
        assert_eq!(Request::from_json(&Json::parse(&text).unwrap()), Ok(req));
    }

    #[test]
    fn pending_requests_on_missing_dir_is_empty() {
        assert!(pending_requests(Path::new("/nonexistent/levioso-jobdir")).is_empty());
    }
}
