//! Deterministic seedable pseudo-random number generation.
//!
//! Two generators, both public domain algorithms by Vigna et al.:
//!
//! * [`SplitMix64`] — a tiny 64-bit-state mixer. Used to expand seeds and
//!   to derive independent child streams; every output is a full-avalanche
//!   hash of its state, so even adjacent seeds give unrelated streams.
//! * [`Xoshiro256pp`] — xoshiro256++, the workhorse generator (256-bit
//!   state, period 2^256 − 1, excellent statistical quality). This is the
//!   default generator for workload inputs and property-test cases.
//!
//! Sampling helpers live on the [`Rng`] trait so any generator (including
//! the property harness's [`crate::check::Gen`]) shares one vocabulary.
//! Range sampling uses rejection below a power-of-two mask, so results are
//! exactly uniform and — unlike modulo folding — stay reproducible if the
//! underlying stream is ever widened.

use std::ops::{Range, RangeInclusive};

/// Sampling interface over a 64-bit random stream.
///
/// Only [`Rng::next_u64`] is required; everything else is derived and
/// deterministic given the stream.
pub trait Rng {
    /// The next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, n)`. `n` must be nonzero.
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection under the smallest covering power-of-two mask: unbiased
        // and cheap (expected < 2 draws).
        let mask = u64::MAX >> (n - 1).leading_zeros().min(63);
        loop {
            let v = self.next_u64() & mask;
            if v < n {
                return v;
            }
        }
    }

    /// Uniform over a half-open `i64` range.
    fn i64_in(&mut self, r: Range<i64>) -> i64 {
        assert!(r.start < r.end, "empty range {:?}", r);
        let span = r.end.wrapping_sub(r.start) as u64;
        r.start.wrapping_add(self.below(span) as i64)
    }

    /// Uniform over an inclusive `i64` range.
    fn i64_incl(&mut self, r: RangeInclusive<i64>) -> i64 {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span + 1) as i64)
    }

    /// Uniform over a half-open `usize` range.
    fn usize_in(&mut self, r: Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range {:?}", r);
        r.start + self.below((r.end - r.start) as u64) as usize
    }

    /// Uniform over an inclusive `usize` range.
    fn usize_incl(&mut self, r: RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// Uniform over a half-open `u64` range.
    fn u64_in(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range {:?}", r);
        r.start + self.below(r.end - r.start)
    }

    /// Uniform over a half-open `u8` range.
    fn u8_in(&mut self, r: Range<u8>) -> u8 {
        self.u64_in(r.start as u64..r.end as u64) as u8
    }

    /// An arbitrary `u64` (the raw stream).
    fn u64_any(&mut self) -> u64 {
        self.next_u64()
    }

    /// An arbitrary `u32`.
    fn u32_any(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// An arbitrary `u8`.
    fn u8_any(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// An arbitrary `i64`.
    fn i64_any(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// A fair coin flip.
    fn bool_any(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly chosen element of a nonempty slice.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0..items.len())]
    }

    /// Index into `weights` chosen with probability proportional to the
    /// weight (the `prop_oneof![w => ...]` shape). Weights must not all be
    /// zero.
    fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "all weights are zero");
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        unreachable!("roll below total always lands in a bucket")
    }
}

/// SplitMix64: 64 bits of state, one multiply-xor-shift avalanche per
/// output. Primarily a seed expander and stream splitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed. Any seed is fine, including 0.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// One output step as a pure function: `(next_state, output)`.
    pub const fn step(state: u64) -> (u64, u64) {
        let state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (state, z ^ (z >> 31))
    }

    /// Hashes a seed through one SplitMix64 round — a cheap way to derive
    /// a decorrelated sub-seed (e.g. per-case seeds in the test harness).
    pub const fn mix(seed: u64) -> u64 {
        Self::step(seed).1
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        let (state, out) = Self::step(self.state);
        self.state = state;
        out
    }
}

/// xoshiro256++ 1.0 — the workspace's default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state by expanding `seed` through SplitMix64
    /// (the initialization the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp { s }
    }

    /// Derives an independent child stream and advances this one.
    ///
    /// Splitting draws 64 bits from the parent and re-expands them through
    /// SplitMix64, so parent and child outputs are decorrelated and a
    /// `split` at a different point in the stream yields a different
    /// child — deterministic forking for parallel generators.
    pub fn split(&mut self) -> Self {
        let child_seed = self.next_u64();
        Self::seed_from_u64(child_seed)
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 0 from Vigna's splitmix64.c.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(g.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(g.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_is_deterministic_and_well_spread() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "64 draws should not collide");
    }

    #[test]
    fn adjacent_seeds_decorrelate() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_hits_everything() {
        let mut g = Xoshiro256pp::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[g.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut g = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..1000 {
            let v = g.i64_in(-5..5);
            assert!((-5..5).contains(&v));
            let w = g.i64_incl(i64::MIN..=i64::MAX);
            let _ = w; // total range must not panic
            let u = g.usize_incl(0..=3);
            assert!(u <= 3);
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut g = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..200 {
            let i = g.weighted(&[0, 3, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }
}
