//! A small deterministic property-testing harness.
//!
//! Replaces `proptest` for this workspace. A property is an ordinary
//! closure that draws its input from a seeded generator ([`Gen`]) and
//! asserts with the standard `assert!`/`assert_eq!` macros. The harness
//! runs a fixed budget of cases, each from a seed derived deterministically
//! from the configured root seed, and on the first failure re-panics with
//! a report containing:
//!
//! * the property name and the failing case index,
//! * the **case seed** (rerun just that input by passing it to
//!   [`Config::with_seed`] with `cases = 1`),
//! * every input the property recorded via [`Gen::note`],
//! * the original assertion message.
//!
//! There is no shrinking: seeds make every failure exactly reproducible,
//! and known-bad inputs graduate into named regression tests (see
//! `tests/regressions.rs` at the workspace root) rather than sidecar
//! files.
//!
//! The [`props!`](crate::props) macro gives the `proptest!`-like surface:
//!
//! ```
//! use levioso_support::rng::Rng;
//!
//! levioso_support::props! {
//!     cases = 64;
//!
//!     /// Addition commutes.
//!     fn addition_commutes(g) {
//!         let a = g.i64_any();
//!         let b = g.i64_any();
//!         g.note("a", &a);
//!         g.note("b", &b);
//!         assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     }
//! }
//! # fn main() {}
//! ```

use crate::rng::{Rng, SplitMix64, Xoshiro256pp};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default case budget when `props!` is used without `cases = n`.
pub const DEFAULT_CASES: u32 = 64;

/// Root seed used unless overridden — arbitrary but fixed forever so runs
/// are identical on every machine.
pub const DEFAULT_SEED: u64 = 0x1e71_0501_ec10_5eed;

/// Harness configuration: how many cases, from which root seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Root seed; case `i` runs from a SplitMix64-mixed combination of
    /// this and `i`.
    pub seed: u64,
}

impl Config {
    /// `cases` random cases from the default root seed.
    pub const fn new(cases: u32) -> Self {
        Config { cases, seed: DEFAULT_SEED }
    }

    /// Overrides the root seed (pass a failing **case seed** with
    /// `cases = 1` to replay exactly one input).
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The derived seed for case `index`. Case 0 uses the root seed
    /// unmixed so that replaying a reported **case seed** through
    /// `Config::new(1).with_seed(..)` regenerates exactly the failing
    /// input; later cases mix in the index.
    pub const fn case_seed(&self, index: u32) -> u64 {
        if index == 0 {
            self.seed
        } else {
            SplitMix64::mix(self.seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::new(DEFAULT_CASES)
    }
}

/// The per-case input source: a seeded PRNG plus a log of noted inputs
/// for the failure report.
#[derive(Debug)]
pub struct Gen {
    rng: Xoshiro256pp,
    notes: Vec<(&'static str, String)>,
}

impl Gen {
    /// A generator for one case.
    pub fn from_seed(seed: u64) -> Self {
        Gen { rng: Xoshiro256pp::seed_from_u64(seed), notes: Vec::new() }
    }

    /// Records a generated input so the harness can print it if this case
    /// fails. Call it right after building each interesting input.
    pub fn note(&mut self, name: &'static str, value: &dyn Debug) {
        self.notes.push((name, format!("{value:#?}")));
    }

    /// An independent child generator (see [`Xoshiro256pp::split`]).
    pub fn split(&mut self) -> Xoshiro256pp {
        self.rng.split()
    }
}

impl Rng for Gen {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Runs `property` for every case in `config`, panicking with a
/// reproduction report on the first failure.
pub fn run(name: &str, config: &Config, property: impl Fn(&mut Gen)) {
    if let Err(report) = try_run(name, config, property) {
        panic!("{report}");
    }
}

/// Like [`run`], but returns the failure report instead of panicking —
/// the hook the harness's own self-tests use.
pub fn try_run(name: &str, config: &Config, property: impl Fn(&mut Gen)) -> Result<(), String> {
    for case in 0..config.cases {
        let case_seed = config.case_seed(case);
        let mut g = Gen::from_seed(case_seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = outcome {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            let mut report = format!(
                "property `{name}` failed at case {case}/{} (case seed {case_seed:#018x})\n\
                 replay: Config::new(1).with_seed({case_seed:#018x})\n",
                config.cases,
            );
            if g.notes.is_empty() {
                report.push_str("no inputs were noted (add g.note(..) calls for richer reports)\n");
            } else {
                for (note_name, value) in &g.notes {
                    report.push_str(&format!("input `{note_name}` = {value}\n"));
                }
            }
            report.push_str(&format!("assertion: {message}"));
            return Err(report);
        }
    }
    Ok(())
}

/// `proptest!`-like surface over [`run`]: declares one `#[test]` per
/// property. Each property receives `g: &mut Gen`; draw inputs from it
/// (`use levioso_support::rng::Rng`), record them with `g.note(..)`, and
/// assert normally.
///
/// ```ignore
/// levioso_support::props! {
///     cases = 64;
///
///     fn my_property(g) { ... }
/// }
/// ```
#[macro_export]
macro_rules! props {
    (
        cases = $cases:expr ;
        $( $(#[$meta:meta])* fn $name:ident ( $g:ident ) $body:block )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config = $crate::check::Config::new($cases);
                $crate::check::run(stringify!($name), &config, |$g| $body);
            }
        )+
    };
    ( $( $(#[$meta:meta])* fn $name:ident ( $g:ident ) $body:block )+ ) => {
        $crate::props! {
            cases = $crate::check::DEFAULT_CASES ;
            $( $(#[$meta])* fn $name($g) $body )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let config = Config::new(64);
        // Interior mutability via Cell keeps the property Fn.
        let counter = std::cell::Cell::new(0u32);
        run("count", &config, |g| {
            let _ = g.u64_any();
            counter.set(counter.get() + 1);
        });
        seen += counter.get();
        assert_eq!(seen, 64);
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        let c = Config::new(8);
        let seeds: Vec<u64> = (0..8).map(|i| c.case_seed(i)).collect();
        assert_eq!(seeds, (0..8).map(|i| c.case_seed(i)).collect::<Vec<_>>());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn failing_property_reports_its_input() {
        let config = Config::new(64);
        let report = try_run("always_false", &config, |g| {
            let x = g.i64_in(10..20);
            g.note("x", &x);
            assert!(x >= 15, "x was {x}");
        })
        .expect_err("property is false for roughly half the inputs");
        assert!(report.contains("property `always_false` failed"), "{report}");
        assert!(report.contains("input `x` = 1"), "x in 10..15 is reported: {report}");
        assert!(report.contains("case seed 0x"), "{report}");
        assert!(report.contains("x was 1"), "original assertion message kept: {report}");
    }

    #[test]
    fn replaying_a_case_seed_reproduces_the_input() {
        let config = Config::new(16);
        let failing_seed = std::cell::Cell::new(None);
        let seed_of = |case: u32| config.case_seed(case);
        for case in 0..config.cases {
            let mut g = Gen::from_seed(seed_of(case));
            let x = g.i64_in(0..100);
            if x < 50 {
                failing_seed.set(Some((seed_of(case), x)));
                break;
            }
        }
        let (seed, x) = failing_seed.get().expect("half the inputs qualify");
        let mut replay = Gen::from_seed(seed);
        assert_eq!(replay.i64_in(0..100), x);
    }
}
