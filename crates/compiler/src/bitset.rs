//! A small dense bit set used by the dataflow and dependence analyses.

use std::fmt;

/// Fixed-universe dense bit set.
///
/// All analyses in this crate index branches, definitions, and blocks with
/// small dense integers, so a `Vec<u64>` bit set is both the simplest and
/// the fastest representation for their fixpoint computations.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `i`, returning whether the set changed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} outside universe {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let changed = *w & mask == 0;
        *w |= mask;
        changed
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Unions `other` into `self`, returning whether the set changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bit set universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collects the set bits into a sorted vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose universe is one past the largest element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iter() {
        let mut s = BitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(64), "second insert reports no change");
        assert!(s.contains(63) && s.contains(64) && !s.contains(65));
        assert_eq!(s.to_vec(), vec![0, 63, 64, 199]);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(7);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "no change the second time");
        assert!(a.contains(7));
    }

    #[test]
    fn empty_and_from_iter() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let s: BitSet = [3usize, 1, 3].into_iter().collect();
        assert_eq!(s.to_vec(), vec![1, 3]);
        assert_eq!(s.universe(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_universe_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }
}
