//! Code generation: Levi AST → lev64 program.
//!
//! A deliberately simple register allocator: every variable lives in its
//! own register for the whole program (no spilling), and expressions
//! evaluate Sethi–Ullman-style into a small temporary pool. This keeps the
//! generated code predictable — which matters, because the evaluation
//! workloads' branch/load structure must be auditable.

use super::ast::{BinOp, Expr, LeviProgram, Stmt};
use super::LeviError;
use levioso_isa::reg::{self, Reg};
use levioso_isa::{AluOp, BuildError, Program, ProgramBuilder};
use std::collections::BTreeMap;

/// Registers available for named variables (22 of them).
const VAR_POOL: [Reg; 22] = [
    reg::S0,
    reg::S1,
    reg::S2,
    reg::S3,
    reg::S4,
    reg::S5,
    reg::S6,
    reg::S7,
    reg::S8,
    reg::S9,
    reg::S10,
    reg::S11,
    reg::A0,
    reg::A1,
    reg::A2,
    reg::A3,
    reg::A4,
    reg::A5,
    reg::A6,
    reg::A7,
    reg::T5,
    reg::T6,
];

/// Registers available as expression temporaries.
const TEMP_POOL: [Reg; 5] = [reg::T0, reg::T1, reg::T2, reg::T3, reg::T4];

/// Base data address of the per-procedure return-address save slots.
/// Reserved: Levi programs must not place arrays below `0x10_0000`.
pub const RA_SAVE_BASE: i64 = 0x0f_0000;

struct Codegen {
    b: ProgramBuilder,
    vars: BTreeMap<String, Reg>,
    arrays: BTreeMap<String, u64>,
    consts: BTreeMap<String, i64>,
    temp_depth: usize,
    next_label: usize,
    /// Innermost-last stack of (continue target, break target).
    loop_stack: Vec<(String, String)>,
    /// Declared procedure names (call targets).
    functions: std::collections::BTreeSet<String>,
}

impl Codegen {
    fn fresh_label(&mut self, tag: &str) -> String {
        let n = self.next_label;
        self.next_label += 1;
        format!(".{tag}{n}")
    }

    fn alloc_temp(&mut self) -> Result<Reg, LeviError> {
        let r = TEMP_POOL
            .get(self.temp_depth)
            .copied()
            .ok_or(LeviError::ExprTooDeep { max: TEMP_POOL.len() })?;
        self.temp_depth += 1;
        Ok(r)
    }

    fn release_temp(&mut self) {
        self.temp_depth -= 1;
    }

    fn var(&self, name: &str) -> Result<Reg, LeviError> {
        self.vars.get(name).copied().ok_or_else(|| LeviError::UndefinedVariable(name.to_string()))
    }

    fn array_base(&self, name: &str) -> Result<u64, LeviError> {
        self.arrays.get(name).copied().ok_or_else(|| LeviError::UndefinedArray(name.to_string()))
    }

    /// Evaluates `e` into a freshly-allocated temporary and returns it.
    /// Callers must `release_temp()` when done with the value.
    fn expr(&mut self, e: &Expr) -> Result<Reg, LeviError> {
        match e {
            Expr::Int(v) => {
                let t = self.alloc_temp()?;
                self.b.li(t, *v);
                Ok(t)
            }
            Expr::Var(name) => {
                if let Some(&c) = self.consts.get(name) {
                    let t = self.alloc_temp()?;
                    self.b.li(t, c);
                    return Ok(t);
                }
                let src = self.var(name)?;
                let t = self.alloc_temp()?;
                self.b.mv(t, src);
                Ok(t)
            }
            Expr::Index(name, idx) => {
                let base = self.array_base(name)?;
                let t = self.expr(idx)?;
                self.b.slli(t, t, 3);
                self.b.ld(t, t, base as i64);
                Ok(t)
            }
            Expr::Neg(inner) => {
                let t = self.expr(inner)?;
                self.b.alu(AluOp::Sub, t, reg::ZERO, t);
                Ok(t)
            }
            Expr::Not(inner) => {
                let t = self.expr(inner)?;
                self.b.alu_imm(AluOp::Sltu, t, t, 1); // seqz
                Ok(t)
            }
            Expr::Bin(op, l, r) => {
                let lt = self.expr(l)?;
                let rt = self.expr(r)?;
                self.bin_op(*op, lt, rt);
                self.release_temp(); // rt
                Ok(lt)
            }
        }
    }

    /// Emits `lt = lt <op> rt`.
    fn bin_op(&mut self, op: BinOp, lt: Reg, rt: Reg) {
        use AluOp::*;
        let simple = |cg: &mut Self, a: AluOp| {
            cg.b.alu(a, lt, lt, rt);
        };
        match op {
            BinOp::Add => simple(self, Add),
            BinOp::Sub => simple(self, Sub),
            BinOp::Mul => simple(self, Mul),
            BinOp::Div => simple(self, Div),
            BinOp::Rem => simple(self, Rem),
            BinOp::And => simple(self, And),
            BinOp::Or => simple(self, Or),
            BinOp::Xor => simple(self, Xor),
            BinOp::Shl => simple(self, Sll),
            BinOp::Shr => simple(self, Sra),
            BinOp::Lt => simple(self, Slt),
            BinOp::Gt => {
                self.b.alu(Slt, lt, rt, lt);
            }
            BinOp::Le => {
                self.b.alu(Slt, lt, rt, lt);
                self.b.xori(lt, lt, 1);
            }
            BinOp::Ge => {
                self.b.alu(Slt, lt, lt, rt);
                self.b.xori(lt, lt, 1);
            }
            BinOp::Eq => {
                self.b.alu(Sub, lt, lt, rt);
                self.b.alu_imm(Sltu, lt, lt, 1); // seqz
            }
            BinOp::Ne => {
                self.b.alu(Sub, lt, lt, rt);
                self.b.alu(Sltu, lt, reg::ZERO, lt); // snez
            }
            BinOp::LAnd => {
                self.b.alu(Sltu, lt, reg::ZERO, lt);
                self.b.alu(Sltu, rt, reg::ZERO, rt);
                self.b.alu(And, lt, lt, rt);
            }
            BinOp::LOr => {
                self.b.alu(Or, lt, lt, rt);
                self.b.alu(Sltu, lt, reg::ZERO, lt);
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LeviError> {
        match s {
            Stmt::Let(name, e) => {
                if self.vars.contains_key(name) || self.consts.contains_key(name) {
                    return Err(LeviError::Redefined(name.clone()));
                }
                let t = self.expr(e)?;
                let r = *VAR_POOL
                    .get(self.vars.len())
                    .ok_or(LeviError::TooManyVariables { max: VAR_POOL.len() })?;
                self.vars.insert(name.clone(), r);
                self.b.mv(r, t);
                self.release_temp();
            }
            Stmt::Assign(name, e) => {
                let t = self.expr(e)?;
                let r = self.var(name)?;
                self.b.mv(r, t);
                self.release_temp();
            }
            Stmt::Store(name, idx, value) => {
                let base = self.array_base(name)?;
                let ti = self.expr(idx)?;
                let tv = self.expr(value)?;
                self.b.slli(ti, ti, 3);
                self.b.sd(tv, ti, base as i64);
                self.release_temp();
                self.release_temp();
            }
            Stmt::If(cond, then, els) => {
                let else_l = self.fresh_label("else");
                let end_l = self.fresh_label("endif");
                let t = self.expr(cond)?;
                self.b.beqz(t, if els.is_empty() { &end_l } else { &else_l });
                self.release_temp();
                for s in then {
                    self.stmt(s)?;
                }
                if !els.is_empty() {
                    self.b.j(&end_l);
                    self.b.label(&else_l);
                    for s in els {
                        self.stmt(s)?;
                    }
                }
                self.b.label(&end_l);
            }
            Stmt::While(cond, body) => {
                let loop_l = self.fresh_label("loop");
                let end_l = self.fresh_label("endloop");
                self.b.label(&loop_l);
                let t = self.expr(cond)?;
                self.b.beqz(t, &end_l);
                self.release_temp();
                self.loop_stack.push((loop_l.clone(), end_l.clone()));
                for s in body {
                    self.stmt(s)?;
                }
                self.loop_stack.pop();
                self.b.j(&loop_l);
                self.b.label(&end_l);
            }
            Stmt::Break => {
                let (_, brk) =
                    self.loop_stack.last().cloned().ok_or(LeviError::BreakOutsideLoop)?;
                self.b.j(&brk);
            }
            Stmt::Continue => {
                let (cont, _) =
                    self.loop_stack.last().cloned().ok_or(LeviError::ContinueOutsideLoop)?;
                self.b.j(&cont);
            }
            Stmt::Call(name) => {
                if !self.functions.contains(name) {
                    return Err(LeviError::UndefinedFunction(name.clone()));
                }
                self.b.call(&format!(".fn_{name}"));
            }
        }
        Ok(())
    }
}

/// Checks the procedure call graph for (mutual) recursion, which the
/// stackless calling convention cannot support.
fn check_no_recursion(ast: &LeviProgram) -> Result<(), LeviError> {
    fn calls(body: &[Stmt], out: &mut Vec<String>) {
        for s in body {
            match s {
                Stmt::Call(n) => out.push(n.clone()),
                Stmt::If(_, t, e) => {
                    calls(t, out);
                    calls(e, out);
                }
                Stmt::While(_, b) => calls(b, out),
                _ => {}
            }
        }
    }
    let graph: std::collections::BTreeMap<&str, Vec<String>> = ast
        .functions
        .iter()
        .map(|(n, b)| {
            let mut c = Vec::new();
            calls(b, &mut c);
            (n.as_str(), c)
        })
        .collect();
    // DFS cycle detection.
    fn visit<'a>(
        n: &'a str,
        graph: &'a std::collections::BTreeMap<&str, Vec<String>>,
        stack: &mut Vec<&'a str>,
        done: &mut std::collections::BTreeSet<&'a str>,
    ) -> Result<(), LeviError> {
        if done.contains(n) {
            return Ok(());
        }
        if stack.contains(&n) {
            return Err(LeviError::RecursiveCall(n.to_string()));
        }
        stack.push(n);
        if let Some(callees) = graph.get(n) {
            for c in callees {
                if let Some((key, _)) = graph.get_key_value(c.as_str()) {
                    visit(key, graph, stack, done)?;
                }
            }
        }
        stack.pop();
        done.insert(n);
        Ok(())
    }
    let mut done = std::collections::BTreeSet::new();
    for n in graph.keys() {
        visit(n, &graph, &mut Vec::new(), &mut done)?;
    }
    Ok(())
}

/// Compiles a parsed Levi program to lev64.
pub fn generate(name: &str, ast: &LeviProgram) -> Result<Program, LeviError> {
    check_no_recursion(ast)?;
    let mut cg = Codegen {
        b: ProgramBuilder::new(name),
        vars: BTreeMap::new(),
        arrays: ast.arrays.iter().cloned().collect(),
        consts: ast.consts.iter().cloned().collect(),
        temp_depth: 0,
        next_label: 0,
        loop_stack: Vec::new(),
        functions: ast.functions.iter().map(|(n, _)| n.clone()).collect(),
    };
    for s in &ast.body {
        cg.stmt(s)?;
    }
    cg.b.halt();
    // Procedure bodies follow main; each ends in `ret`. They share main's
    // variable namespace (registers), so `let` inside a procedure declares
    // a program-global name exactly as in main. Because recursion is
    // rejected, each procedure gets one *static* return-address save slot
    // (memory at RA_SAVE_BASE), which makes nested calls safe without a
    // stack.
    for (idx, (fname, body)) in ast.functions.iter().enumerate() {
        let slot = RA_SAVE_BASE + 8 * idx as i64;
        cg.b.label(format!(".fn_{fname}"));
        cg.b.sd(levioso_isa::reg::RA, levioso_isa::reg::ZERO, slot);
        for s in body {
            cg.stmt(s)?;
        }
        cg.b.load(
            levioso_isa::MemWidth::D,
            true,
            levioso_isa::reg::RA,
            levioso_isa::reg::ZERO,
            slot,
        );
        cg.b.ret();
    }
    cg.b.build().map_err(|e: BuildError| LeviError::Codegen(e.to_string()))
}
