//! Lexer for the Levi source language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// One of the fixed punctuation/operator tokens.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "<<", ">>", "==", "!=", "<=", ">=", "&&", "||", "(", ")", "{", "}", "[", "]", ";", ",", "=",
    "+", "-", "*", "/", "%", "<", ">", "!", "&", "|", "^", "@",
];

/// Tokenizes Levi source.
///
/// # Errors
///
/// Returns `(line, message)` on an unrecognized character or malformed
/// literal.
pub fn lex(source: &str) -> Result<Vec<Spanned>, (usize, String)> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: `//` to end of line.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Spanned { tok: Tok::Ident(source[start..i].to_string()), line });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let radix = if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                i += 2;
                16
            } else {
                10
            };
            let digits_start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let body = source[digits_start..i].replace('_', "");
            let text = if radix == 16 { &body } else { &source[start..i].replace('_', "") };
            let value = i64::from_str_radix(text, radix)
                .or_else(|_| u64::from_str_radix(text, radix).map(|v| v as i64))
                .map_err(|_| {
                    (line, format!("malformed integer literal `{}`", &source[start..i]))
                })?;
            out.push(Spanned { tok: Tok::Int(value), line });
            continue;
        }
        for p in PUNCTS {
            if source[i..].starts_with(p) {
                out.push(Spanned { tok: Tok::Punct(p), line });
                i += p.len();
                continue 'outer;
            }
        }
        return Err((line, format!("unrecognized character `{c}`")));
    }
    out.push(Spanned { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let ts = lex("let x = 10; // comment\nx = x << 2;").unwrap();
        let kinds: Vec<&Tok> = ts.iter().map(|s| &s.tok).collect();
        assert_eq!(kinds[0], &Tok::Ident("let".into()));
        assert_eq!(kinds[1], &Tok::Ident("x".into()));
        assert_eq!(kinds[2], &Tok::Punct("="));
        assert_eq!(kinds[3], &Tok::Int(10));
        assert!(kinds.contains(&&Tok::Punct("<<")));
        assert_eq!(ts.last().unwrap().tok, Tok::Eof);
    }

    #[test]
    fn hex_and_underscores() {
        let ts = lex("0x10 1_000").unwrap();
        assert_eq!(ts[0].tok, Tok::Int(16));
        assert_eq!(ts[1].tok, Tok::Int(1000));
    }

    #[test]
    fn line_numbers() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn multi_char_ops_win() {
        let ts = lex("a<=b==c&&d").unwrap();
        let puncts: Vec<&Tok> =
            ts.iter().filter(|s| matches!(s.tok, Tok::Punct(_))).map(|s| &s.tok).collect();
        assert_eq!(puncts, vec![&Tok::Punct("<="), &Tok::Punct("=="), &Tok::Punct("&&")]);
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("let $x = 1;").is_err());
    }
}
