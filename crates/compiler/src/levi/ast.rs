//! Abstract syntax tree of the Levi language.

/// A complete Levi program: array declarations, the body of `fn main`, and
/// zero-argument procedures.
#[derive(Debug, Clone, PartialEq)]
pub struct LeviProgram {
    /// Declared arrays (name, base data address). Elements are 8-byte
    /// signed integers.
    pub arrays: Vec<(String, u64)>,
    /// Named integer constants.
    pub consts: Vec<(String, i64)>,
    /// Statements of `fn main()`.
    pub body: Vec<Stmt>,
    /// Zero-argument procedures (`fn name() { .. }`), in declaration order.
    /// Procedures share the program-global variable namespace and may not
    /// be (even mutually) recursive.
    pub functions: Vec<(String, Vec<Stmt>)>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name = expr;` — declares a new variable.
    Let(String, Expr),
    /// `name = expr;` — assigns an existing variable.
    Assign(String, Expr),
    /// `name[index] = expr;` — array store.
    Store(String, Expr, Expr),
    /// `if (cond) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `break;` — exits the innermost enclosing loop.
    Break,
    /// `continue;` — jumps to the innermost loop's condition check.
    Continue,
    /// `name();` — invokes a zero-argument procedure.
    Call(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (RISC-V division semantics)
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (non-short-circuit: both sides evaluate, result is 0/1)
    LAnd,
    /// `||` (non-short-circuit)
    LOr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable or named constant reference.
    Var(String),
    /// Array element load: `name[index]`.
    Index(String, Box<Expr>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e` (0/1 result).
    Not(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}
