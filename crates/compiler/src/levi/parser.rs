//! Recursive-descent parser for Levi.

use super::ast::{BinOp, Expr, LeviProgram, Stmt};
use super::lexer::{lex, Spanned, Tok};
use super::LeviError;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if *self.peek() == Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), LeviError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, LeviError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, LeviError> {
        match self.bump() {
            Tok::Int(v) => Ok(v),
            other => Err(self.error(format!("expected integer, found {other}"))),
        }
    }

    fn error(&self, message: String) -> LeviError {
        LeviError::Parse { line: self.toks[self.pos.saturating_sub(1)].line, message }
    }

    fn program(&mut self) -> Result<LeviProgram, LeviError> {
        let mut arrays = Vec::new();
        let mut consts = Vec::new();
        let mut functions = Vec::new();
        let mut body = None;
        while *self.peek() != Tok::Eof {
            if self.eat_kw("arr") {
                let name = self.expect_ident()?;
                self.expect_punct("@")?;
                let base = self.expect_int()? as u64;
                self.expect_punct(";")?;
                arrays.push((name, base));
            } else if self.eat_kw("const") {
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                let v = self.expr_const()?;
                self.expect_punct(";")?;
                consts.push((name, v));
            } else if self.eat_kw("fn") {
                let name = self.expect_ident()?;
                self.expect_punct("(")?;
                self.expect_punct(")")?;
                let fn_body = self.block()?;
                if name == "main" {
                    if body.replace(fn_body).is_some() {
                        return Err(self.error("duplicate `fn main`".into()));
                    }
                } else {
                    if functions.iter().any(|(n, _)| *n == name) {
                        return Err(self.error(format!("duplicate `fn {name}`")));
                    }
                    functions.push((name, fn_body));
                }
            } else {
                return Err(LeviError::Parse {
                    line: self.line(),
                    message: format!("expected `arr`, `const`, or `fn`, found {}", self.peek()),
                });
            }
        }
        let body = body.ok_or(LeviError::NoMain)?;
        Ok(LeviProgram { arrays, consts, body, functions })
    }

    /// Constant expressions in declarations: integer with optional leading
    /// minus.
    fn expr_const(&mut self) -> Result<i64, LeviError> {
        if self.eat_punct("-") {
            Ok(self.expect_int()?.wrapping_neg())
        } else {
            self.expect_int()
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LeviError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if *self.peek() == Tok::Eof {
                return Err(self.error("unterminated block".into()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LeviError> {
        if self.eat_kw("let") {
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_kw("else") {
                if matches!(self.peek(), Tok::Ident(s) if s == "if") {
                    vec![self.stmt()?] // else if chains
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        // Assignment, array store, or procedure call.
        let name = self.expect_ident()?;
        if self.eat_punct("(") {
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Call(name));
        }
        if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            self.expect_punct("=")?;
            let v = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Store(name, idx, v));
        }
        self.expect_punct("=")?;
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign(name, e))
    }

    fn expr(&mut self) -> Result<Expr, LeviError> {
        self.logic_or()
    }

    fn logic_or(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.logic_and()?;
        while self.eat_punct("||") {
            let rhs = self.logic_and()?;
            e = Expr::Bin(BinOp::LOr, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn logic_and(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.comparison()?;
        while self.eat_punct("&&") {
            let rhs = self.comparison()?;
            e = Expr::Bin(BinOp::LAnd, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn comparison(&mut self) -> Result<Expr, LeviError> {
        let e = self.bitor()?;
        for (p, op) in [
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_punct(p) {
                let rhs = self.bitor()?;
                return Ok(Expr::Bin(op, Box::new(e), Box::new(rhs)));
            }
        }
        Ok(e)
    }

    fn bitor(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.bitxor()?;
        while self.eat_punct("|") {
            let rhs = self.bitxor()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bitxor(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.bitand()?;
        while self.eat_punct("^") {
            let rhs = self.bitand()?;
            e = Expr::Bin(BinOp::Xor, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn bitand(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.shift()?;
        while self.eat_punct("&") {
            let rhs = self.shift()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.addsub()?;
        loop {
            if self.eat_punct("<<") {
                let rhs = self.addsub()?;
                e = Expr::Bin(BinOp::Shl, Box::new(e), Box::new(rhs));
            } else if self.eat_punct(">>") {
                let rhs = self.addsub()?;
                e = Expr::Bin(BinOp::Shr, Box::new(e), Box::new(rhs));
            } else {
                return Ok(e);
            }
        }
    }

    fn addsub(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.muldiv()?;
        loop {
            if self.eat_punct("+") {
                let rhs = self.muldiv()?;
                e = Expr::Bin(BinOp::Add, Box::new(e), Box::new(rhs));
            } else if self.eat_punct("-") {
                let rhs = self.muldiv()?;
                e = Expr::Bin(BinOp::Sub, Box::new(e), Box::new(rhs));
            } else {
                return Ok(e);
            }
        }
    }

    fn muldiv(&mut self) -> Result<Expr, LeviError> {
        let mut e = self.unary()?;
        loop {
            if self.eat_punct("*") {
                let rhs = self.unary()?;
                e = Expr::Bin(BinOp::Mul, Box::new(e), Box::new(rhs));
            } else if self.eat_punct("/") {
                let rhs = self.unary()?;
                e = Expr::Bin(BinOp::Div, Box::new(e), Box::new(rhs));
            } else if self.eat_punct("%") {
                let rhs = self.unary()?;
                e = Expr::Bin(BinOp::Rem, Box::new(e), Box::new(rhs));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, LeviError> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, LeviError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Ident(name) => {
                if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Parses Levi source into an AST.
///
/// # Errors
///
/// [`LeviError::Lex`] / [`LeviError::Parse`] with the offending line, or
/// [`LeviError::NoMain`] if the source lacks `fn main`.
pub fn parse(source: &str) -> Result<LeviProgram, LeviError> {
    let toks = lex(source).map_err(|(line, message)| LeviError::Lex { line, message })?;
    Parser { toks, pos: 0 }.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_main() {
        let p = parse(
            r"
            arr data @ 0x10000;
            const N = 64;
            fn main() {
                let i = 0;
                while (i < N) {
                    data[i] = i * 2;
                    i = i + 1;
                }
            }
        ",
        )
        .unwrap();
        assert_eq!(p.arrays, vec![("data".into(), 0x10000)]);
        assert_eq!(p.consts, vec![("N".into(), 64)]);
        assert_eq!(p.body.len(), 2);
        assert!(matches!(&p.body[1], Stmt::While(..)));
    }

    #[test]
    fn precedence() {
        let p = parse("fn main() { let x = 1 + 2 * 3; }").unwrap();
        let Stmt::Let(_, e) = &p.body[0] else { panic!() };
        assert_eq!(
            *e,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Bin(BinOp::Mul, Box::new(Expr::Int(2)), Box::new(Expr::Int(3)))),
            )
        );
    }

    #[test]
    fn comparison_binds_looser_than_arith() {
        let p = parse("fn main() { let x = 1 + 2 < 3 * 4; }").unwrap();
        let Stmt::Let(_, Expr::Bin(op, ..)) = &p.body[0] else { panic!() };
        assert_eq!(*op, BinOp::Lt);
    }

    #[test]
    fn else_if_chain() {
        let p = parse("fn main() { if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; } }")
            .unwrap();
        let Stmt::If(_, _, els) = &p.body[0] else { panic!() };
        assert_eq!(els.len(), 1);
        assert!(matches!(&els[0], Stmt::If(..)));
    }

    #[test]
    fn errors() {
        assert!(matches!(parse("fn main() { let = 1; }"), Err(LeviError::Parse { .. })));
        assert!(matches!(parse("arr a @ 1;"), Err(LeviError::NoMain)));
        assert!(matches!(parse("fn other() {}"), Err(LeviError::NoMain)));
        assert!(matches!(parse("fn main() { x = $; }"), Err(LeviError::Lex { .. })));
    }

    #[test]
    fn array_store_and_load() {
        let p = parse("fn main() { a[i + 1] = b[j]; }").unwrap();
        assert!(matches!(&p.body[0], Stmt::Store(name, _, _) if name == "a"));
    }
}
