//! # Levi — a small C-like source language for lev64
//!
//! Evaluation workloads are written in Levi and flow through the annotating
//! compiler, mirroring how the paper's SPEC workloads flow through its LLVM
//! pass. The language is deliberately tiny: 64-bit signed integers,
//! register-resident variables shared program-globally, global arrays of
//! 8-byte elements bound to fixed data addresses, `if`/`else`, `while` with
//! `break`/`continue`, zero-argument procedures (`fn helper() { .. }`,
//! called as `helper();`; recursion is rejected — the calling convention
//! uses static return-address slots instead of a stack), and the usual C
//! operator set (`&&`/`||` evaluate both sides and yield 0/1 — no
//! short-circuit branches are emitted for them).
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = levioso_compiler::levi::compile(
//!     "sum_positive",
//!     r"
//!         arr data @ 0x10000;
//!         const N = 8;
//!         fn main() {
//!             let i = 0;
//!             let sum = 0;
//!             while (i < N) {
//!                 if (data[i] > 0) { sum = sum + data[i]; }
//!                 i = i + 1;
//!             }
//!             data[N] = sum;
//!         }
//!     ",
//! )?;
//! assert!(program.annotations.is_some(), "compile() annotates");
//! # Ok(())
//! # }
//! ```

mod ast;
mod codegen;
mod eval;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, LeviProgram, Stmt};
pub use eval::{eval, EvalState};
pub use parser::parse;

use levioso_isa::Program;
use std::fmt;

/// Compiles Levi source to an **annotated** lev64 [`Program`].
///
/// # Errors
///
/// Returns a [`LeviError`] describing the first lexical, syntactic, or
/// code-generation problem.
pub fn compile(name: &str, source: &str) -> Result<Program, LeviError> {
    let mut p = compile_unannotated(name, source)?;
    crate::annotate(&mut p);
    Ok(p)
}

/// Compiles Levi source without running the annotation pass (used by tests
/// that want to compare annotation configurations).
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_unannotated(name: &str, source: &str) -> Result<Program, LeviError> {
    let ast = parse(source)?;
    codegen::generate(name, &ast)
}

/// Compilation or evaluation failure for Levi source.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LeviError {
    /// Lexical error at a source line.
    Lex {
        /// 1-based source line.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// Parse error at a source line.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// The source has no `fn main`.
    NoMain,
    /// Reference to an undeclared variable.
    UndefinedVariable(String),
    /// Reference to an undeclared array.
    UndefinedArray(String),
    /// `let` redeclares an existing name.
    Redefined(String),
    /// More variables than the register allocator supports.
    TooManyVariables {
        /// Maximum supported variables.
        max: usize,
    },
    /// Expression nesting exceeds the temporary-register pool.
    ExprTooDeep {
        /// Maximum supported depth.
        max: usize,
    },
    /// Call of an undeclared procedure.
    UndefinedFunction(String),
    /// A procedure is directly or mutually recursive (unsupported: the
    /// calling convention has no stack).
    RecursiveCall(String),
    /// `break` used outside any loop.
    BreakOutsideLoop,
    /// `continue` used outside any loop.
    ContinueOutsideLoop,
    /// Label fixup failed in the program builder.
    Codegen(String),
    /// AST evaluation exceeded its step budget.
    StepLimit {
        /// The exhausted budget.
        max_steps: u64,
    },
}

impl fmt::Display for LeviError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeviError::Lex { line, message } => write!(f, "lex error on line {line}: {message}"),
            LeviError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            LeviError::NoMain => f.write_str("program has no `fn main`"),
            LeviError::UndefinedVariable(n) => write!(f, "undefined variable `{n}`"),
            LeviError::UndefinedArray(n) => write!(f, "undefined array `{n}`"),
            LeviError::Redefined(n) => write!(f, "`{n}` is already defined"),
            LeviError::TooManyVariables { max } => {
                write!(f, "too many variables (maximum {max})")
            }
            LeviError::ExprTooDeep { max } => {
                write!(f, "expression too deeply nested (maximum depth {max})")
            }
            LeviError::UndefinedFunction(n) => write!(f, "call of undefined procedure `{n}`"),
            LeviError::RecursiveCall(n) => {
                write!(f, "procedure `{n}` is recursive (unsupported)")
            }
            LeviError::BreakOutsideLoop => f.write_str("`break` outside of a loop"),
            LeviError::ContinueOutsideLoop => f.write_str("`continue` outside of a loop"),
            LeviError::Codegen(m) => write!(f, "code generation failed: {m}"),
            LeviError::StepLimit { max_steps } => {
                write!(f, "evaluation did not finish within {max_steps} steps")
            }
        }
    }
}

impl std::error::Error for LeviError {}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_isa::Machine;
    use std::collections::BTreeMap;

    /// Runs Levi source through codegen + the lev64 interpreter AND through
    /// the AST evaluator, asserting identical memory effects.
    fn differential(source: &str, initial: &[(u64, i64)]) -> (Machine, EvalState) {
        let ast = parse(source).unwrap();
        let p = compile("t", source).unwrap();

        let init_map: BTreeMap<u64, i64> = initial.iter().copied().collect();
        let oracle = eval(&ast, &init_map, 2_000_000).unwrap();

        let mut m = Machine::new();
        for (&addr, &v) in &init_map {
            m.mem.write_i64(addr, v);
        }
        m.run(&p, 10_000_000).unwrap();

        for (&addr, &v) in &oracle.memory {
            assert_eq!(m.mem.read_i64(addr), v, "mismatch at address {addr:#x}");
        }
        (m, oracle)
    }

    #[test]
    fn sum_loop_matches_oracle() {
        differential(
            r"
            arr a @ 0x10000;
            fn main() {
                let i = 0;
                let sum = 0;
                while (i < 8) {
                    sum = sum + a[i];
                    i = i + 1;
                }
                a[100] = sum;
            }
            ",
            &[(0x10000, 3), (0x10008, 4), (0x10010, -1)],
        );
    }

    #[test]
    fn nested_control_flow() {
        differential(
            r"
            arr a @ 0x20000;
            const N = 16;
            fn main() {
                let i = 0;
                while (i < N) {
                    if (a[i] % 2 == 0) {
                        a[i] = a[i] / 2;
                    } else if (a[i] > 100) {
                        a[i] = a[i] - 100;
                    } else {
                        a[i] = a[i] * 3 + 1;
                    }
                    i = i + 1;
                }
            }
            ",
            &(0..16)
                .map(|i| (0x20000 + 8 * i as u64, (i * 37 % 113) as i64 - 20))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn logical_and_comparison_operators() {
        differential(
            r"
            arr out @ 0x30000;
            fn main() {
                let a = 5;
                let b = -3;
                out[0] = (a > 0) && (b < 0);
                out[1] = (a == 5) || (b == 0);
                out[2] = !(a != 5);
                out[3] = a >= 5;
                out[4] = b <= -4;
                out[5] = (a & 3) ^ (b | 1);
                out[6] = a << 2;
                out[7] = b >> 1;
                out[8] = -a;
            }
            ",
            &[],
        );
    }

    #[test]
    fn division_semantics_match() {
        differential(
            r"
            arr out @ 0x40000;
            fn main() {
                out[0] = 7 / 2;
                out[1] = -7 / 2;
                out[2] = 7 % -2;
                out[3] = 5 / 0;
                out[4] = 5 % 0;
            }
            ",
            &[],
        );
    }

    #[test]
    fn compile_produces_annotations_with_expected_shape() {
        let p = compile(
            "filter",
            r"
            arr a @ 0x10000;
            fn main() {
                let i = 0;
                let sum = 0;
                while (i < 64) {
                    if (a[i] > 0) { sum = sum + a[i]; }
                    i = i + 1;
                }
                a[64] = sum;
            }
            ",
        )
        .unwrap();
        let ann = p.annotations.as_ref().unwrap();
        // Exactly two conditional branches: the while and the if.
        let branches: Vec<u32> = p
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_branch())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(branches.len(), 2);
        let cost = ann.cost();
        assert!(cost.all_older == 0, "fully analyzable program");
        assert!(cost.exact_deps > 0);
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            compile("t", "fn main() { x = 1; }"),
            Err(LeviError::UndefinedVariable(_))
        ));
        assert!(matches!(
            compile("t", "fn main() { a[0] = 1; }"),
            Err(LeviError::UndefinedArray(_))
        ));
        assert!(matches!(
            compile("t", "fn main() { let x = 1; let x = 2; }"),
            Err(LeviError::Redefined(_))
        ));
        let many: String = (0..30).map(|i| format!("let v{i} = {i};")).collect();
        assert!(matches!(
            compile("t", &format!("fn main() {{ {many} }}")),
            Err(LeviError::TooManyVariables { .. })
        ));
        // Deep right-nesting exhausts the temp pool.
        let deep = format!("fn main() {{ let x = {}1{}; }}", "(1 + ".repeat(8), ")".repeat(8));
        assert!(matches!(compile("t", &deep), Err(LeviError::ExprTooDeep { .. })));
    }

    #[test]
    fn break_and_continue() {
        let (m, _) = differential(
            r"
            arr out @ 0x60000;
            fn main() {
                let i = 0;
                let sum = 0;
                let evens = 0;
                while (i < 100) {
                    i = i + 1;
                    if (i % 2 == 1) { continue; }
                    evens = evens + 1;
                    if (i >= 20) { break; }
                    sum = sum + i;
                }
                out[0] = sum;
                out[1] = evens;
                out[2] = i;
            }
            ",
            &[],
        );
        assert_eq!(m.mem.read_i64(0x60000), 2 + 4 + 6 + 8 + 10 + 12 + 14 + 16 + 18);
        assert_eq!(m.mem.read_i64(0x60008), 10);
        assert_eq!(m.mem.read_i64(0x60010), 20);
    }

    #[test]
    fn break_in_nested_loop_exits_inner_only() {
        let (m, _) = differential(
            r"
            arr out @ 0x60000;
            fn main() {
                let i = 0;
                let total = 0;
                let j = 0;
                while (i < 4) {
                    j = 0;
                    while (j < 100) {
                        if (j == 3) { break; }
                        total = total + 1;
                        j = j + 1;
                    }
                    i = i + 1;
                }
                out[0] = total;
            }
            ",
            &[],
        );
        assert_eq!(m.mem.read_i64(0x60000), 12, "4 outer x 3 inner");
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        assert!(matches!(compile("t", "fn main() { break; }"), Err(LeviError::BreakOutsideLoop)));
        assert!(matches!(
            compile("t", "fn main() { if (1) { continue; } }"),
            Err(LeviError::ContinueOutsideLoop)
        ));
    }

    #[test]
    fn procedures_share_globals_and_run_differentially() {
        let (m, _) = differential(
            r"
            arr out @ 0x60000;
            fn bump() { acc = acc + step; }
            fn twice() { bump(); bump(); }
            fn main() {
                let acc = 0;
                let step = 5;
                bump();
                twice();
                step = 1;
                twice();
                out[0] = acc;
            }
            ",
            &[],
        );
        assert_eq!(m.mem.read_i64(0x60000), 5 + 10 + 2);
    }

    #[test]
    fn procedure_called_in_loop() {
        differential(
            r"
            arr a @ 0x10000;
            arr out @ 0x60000;
            fn process() {
                if (v > 0) { sum = sum + v; }
            }
            fn main() {
                let i = 0;
                let v = 0;
                let sum = 0;
                while (i < 16) {
                    v = a[i];
                    process();
                    i = i + 1;
                }
                out[0] = sum + 1;
            }
            ",
            &(0..16).map(|i| (0x10000 + 8 * i as u64, (i as i64 * 7) % 13 - 6)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn source_level_callee_inherits_call_site_guard() {
        // The interprocedural closure, exercised entirely from Levi source:
        // the procedure's body must depend on the branch guarding its call.
        let p = compile(
            "guarded",
            r"
            arr a @ 0x10000;
            fn work() { a[100] = a[50] + 1; }
            fn main() {
                let x = a[0];
                if (x > 0) { work(); }
            }
            ",
        )
        .unwrap();
        let ann = p.annotations.as_ref().unwrap();
        // Find the guard branch and the callee's load.
        let branch =
            p.instrs.iter().position(|i| i.is_branch()).expect("guard branch exists") as u32;
        let callee_entry = p.label(".fn_work").expect("procedure label");
        let mut saw_callee_instr = false;
        for (i, set) in ann.iter() {
            if (i as u32) >= callee_entry && i < p.len() {
                if let levioso_isa::DepSet::Exact(v) = set {
                    assert!(
                        v.contains(&branch),
                        "callee instruction {i} must inherit guard {branch}, got {v:?}"
                    );
                    saw_callee_instr = true;
                }
            }
        }
        assert!(saw_callee_instr);
    }

    #[test]
    fn recursion_is_rejected() {
        assert!(matches!(
            compile("t", "fn f() { f(); } fn main() { f(); }"),
            Err(LeviError::RecursiveCall(_))
        ));
        assert!(matches!(
            compile("t", "fn f() { g(); } fn g() { f(); } fn main() { f(); }"),
            Err(LeviError::RecursiveCall(_))
        ));
        assert!(matches!(
            compile("t", "fn main() { nothing(); }"),
            Err(LeviError::UndefinedFunction(_))
        ));
    }

    #[test]
    fn while_with_zero_iterations() {
        let (m, _) = differential(
            r"
            arr out @ 0x50000;
            fn main() {
                let i = 10;
                while (i < 10) { i = i + 1; }
                out[0] = i;
            }
            ",
            &[],
        );
        assert_eq!(m.mem.read_i64(0x50000), 10);
    }
}
