//! Direct AST evaluator for Levi — the differential-testing oracle for the
//! code generator: `compile(..)` run on the lev64 interpreter must leave
//! memory in exactly the state this evaluator computes.

use super::ast::{BinOp, Expr, LeviProgram, Stmt};
use super::LeviError;
use levioso_isa::AluOp;
use std::collections::BTreeMap;

/// Final state of an evaluated Levi program.
#[derive(Debug, Clone, Default)]
pub struct EvalState {
    /// Variable values at termination.
    pub vars: BTreeMap<String, i64>,
    /// Sparse memory contents: 8-byte-aligned address → value, for every
    /// array cell ever read or written (reads of untouched cells are 0).
    pub memory: BTreeMap<u64, i64>,
    /// Statements executed (loop-bound guard).
    pub steps: u64,
}

/// Evaluates `ast` with the given initial memory image (address → i64).
///
/// # Errors
///
/// Propagates name errors ([`LeviError::UndefinedVariable`] /
/// [`LeviError::UndefinedArray`] / [`LeviError::Redefined`]) and
/// [`LeviError::StepLimit`] if execution exceeds `max_steps`.
pub fn eval(
    ast: &LeviProgram,
    initial_memory: &BTreeMap<u64, i64>,
    max_steps: u64,
) -> Result<EvalState, LeviError> {
    let mut st = EvalState { memory: initial_memory.clone(), ..Default::default() };
    let arrays: BTreeMap<&str, u64> = ast.arrays.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    let consts: BTreeMap<&str, i64> = ast.consts.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let functions: BTreeMap<&str, &[Stmt]> =
        ast.functions.iter().map(|(n, b)| (n.as_str(), b.as_slice())).collect();
    let ctx = Ctx { arrays: &arrays, consts: &consts, functions: &functions };
    exec_block(&ast.body, &ctx, &mut st, max_steps)?;
    Ok(st)
}

struct Ctx<'a> {
    arrays: &'a BTreeMap<&'a str, u64>,
    consts: &'a BTreeMap<&'a str, i64>,
    functions: &'a BTreeMap<&'a str, &'a [Stmt]>,
}

/// Non-local control flow raised inside a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Break,
    Continue,
}

fn exec_block(
    body: &[Stmt],
    ctx: &Ctx<'_>,
    st: &mut EvalState,
    max_steps: u64,
) -> Result<Flow, LeviError> {
    for s in body {
        st.steps += 1;
        if st.steps > max_steps {
            return Err(LeviError::StepLimit { max_steps });
        }
        match s {
            Stmt::Let(name, e) => {
                let v = eval_expr(e, ctx, st)?;
                if ctx.consts.contains_key(name.as_str()) || st.vars.contains_key(name) {
                    return Err(LeviError::Redefined(name.clone()));
                }
                st.vars.insert(name.clone(), v);
            }
            Stmt::Assign(name, e) => {
                let v = eval_expr(e, ctx, st)?;
                if !st.vars.contains_key(name) {
                    return Err(LeviError::UndefinedVariable(name.clone()));
                }
                st.vars.insert(name.clone(), v);
            }
            Stmt::Store(name, idx, value) => {
                let base = *ctx
                    .arrays
                    .get(name.as_str())
                    .ok_or_else(|| LeviError::UndefinedArray(name.clone()))?;
                let i = eval_expr(idx, ctx, st)?;
                let v = eval_expr(value, ctx, st)?;
                st.memory.insert(base.wrapping_add((i as u64) << 3), v);
            }
            Stmt::If(cond, then, els) => {
                let c = eval_expr(cond, ctx, st)?;
                let body = if c != 0 { then } else { els };
                match exec_block(body, ctx, st, max_steps)? {
                    Flow::Normal => {}
                    f => return Ok(f), // propagate to the enclosing loop
                }
            }
            Stmt::While(cond, body) => loop {
                st.steps += 1;
                if st.steps > max_steps {
                    return Err(LeviError::StepLimit { max_steps });
                }
                if eval_expr(cond, ctx, st)? == 0 {
                    break;
                }
                match exec_block(body, ctx, st, max_steps)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                }
            },
            Stmt::Break => return Ok(Flow::Break),
            Stmt::Continue => return Ok(Flow::Continue),
            Stmt::Call(name) => {
                let body = *ctx
                    .functions
                    .get(name.as_str())
                    .ok_or_else(|| LeviError::UndefinedFunction(name.clone()))?;
                // Break/continue do not cross procedure boundaries.
                exec_block(body, ctx, st, max_steps)?;
            }
        }
    }
    Ok(Flow::Normal)
}

fn eval_expr(e: &Expr, ctx: &Ctx<'_>, st: &mut EvalState) -> Result<i64, LeviError> {
    Ok(match e {
        Expr::Int(v) => *v,
        Expr::Var(name) => {
            if let Some(&c) = ctx.consts.get(name.as_str()) {
                c
            } else {
                *st.vars.get(name).ok_or_else(|| LeviError::UndefinedVariable(name.clone()))?
            }
        }
        Expr::Index(name, idx) => {
            let base = *ctx
                .arrays
                .get(name.as_str())
                .ok_or_else(|| LeviError::UndefinedArray(name.clone()))?;
            let i = eval_expr(idx, ctx, st)?;
            st.memory.get(&base.wrapping_add((i as u64) << 3)).copied().unwrap_or(0)
        }
        Expr::Neg(inner) => eval_expr(inner, ctx, st)?.wrapping_neg(),
        Expr::Not(inner) => i64::from(eval_expr(inner, ctx, st)? == 0),
        Expr::Bin(op, l, r) => {
            let a = eval_expr(l, ctx, st)?;
            let b = eval_expr(r, ctx, st)?;
            match op {
                BinOp::Add => AluOp::Add.eval(a, b),
                BinOp::Sub => AluOp::Sub.eval(a, b),
                BinOp::Mul => AluOp::Mul.eval(a, b),
                BinOp::Div => AluOp::Div.eval(a, b),
                BinOp::Rem => AluOp::Rem.eval(a, b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => AluOp::Sll.eval(a, b),
                BinOp::Shr => AluOp::Sra.eval(a, b),
                BinOp::Eq => i64::from(a == b),
                BinOp::Ne => i64::from(a != b),
                BinOp::Lt => i64::from(a < b),
                BinOp::Le => i64::from(a <= b),
                BinOp::Gt => i64::from(a > b),
                BinOp::Ge => i64::from(a >= b),
                BinOp::LAnd => i64::from(a != 0 && b != 0),
                BinOp::LOr => i64::from(a != 0 || b != 0),
            }
        }
    })
}
