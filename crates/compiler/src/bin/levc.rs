//! `levc` — the Levioso compiler driver.
//!
//! Compiles Levi source (`.levi`) or lev64 assembly (anything else) and
//! shows the annotated result:
//!
//! ```sh
//! levc program.levi                  # annotated listing (default)
//! levc program.levi --static         # static-dataflow annotation flavour
//! levc program.s --emit cost         # annotation cost summary only
//! levc program.levi --emit binary    # hex words of the binary image
//! ```

use levioso_compiler::{annotate_with, Analysis, AnnotateConfig};
use levioso_isa::DepSet;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: levc <file.levi|file.s> [--static] [--emit listing|cost|binary|asm]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut static_dataflow = false;
    let mut emit = "listing".to_string();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--static" => static_dataflow = true,
            "--emit" => match it.next() {
                Some(e) => emit = e,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if path.is_none() => path = Some(a),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("levc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = path.rsplit('/').next().unwrap_or(&path).to_string();
    let mut program = if path.ends_with(".levi") {
        match levioso_compiler::levi::compile_unannotated(&name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("levc: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match levioso_isa::assemble(&name, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("levc: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    annotate_with(&mut program, &AnnotateConfig { static_dataflow });
    let annotations = program.annotations.as_ref().expect("just annotated");

    match emit.as_str() {
        "asm" => print!("{}", program.to_asm_string()),
        "cost" => {
            let c = annotations.cost();
            println!("instructions:           {}", c.instructions);
            println!("exact deps:             {}", c.exact_deps);
            println!("deps/instruction:       {:.3}", c.deps_per_instr());
            println!("hint bits/instruction:  {:.3}", c.bits_per_instr());
            println!("largest set:            {}", c.max_deps);
            println!("conservative fallbacks: {}", c.all_older);
        }
        "binary" => match levioso_isa::encode_program(&program) {
            Ok(words) => {
                for w in words {
                    println!("{w:016x}");
                }
            }
            Err(e) => {
                eprintln!("levc: {e}");
                return ExitCode::FAILURE;
            }
        },
        "listing" => {
            let analysis = Analysis::of(&program);
            for (i, instr) in program.instrs.iter().enumerate() {
                let deps = match annotations.deps_of(i) {
                    DepSet::Exact(v) if v.is_empty() => "-".to_string(),
                    DepSet::Exact(v) => {
                        v.iter().map(|d| format!("@{d}")).collect::<Vec<_>>().join(",")
                    }
                    DepSet::AllOlder => "ALL-OLDER".to_string(),
                };
                let reconv = if instr.is_branch() {
                    match analysis.reconvergence_point(&program, i as u32) {
                        Some(r) => format!("   ; reconverges @{r}"),
                        None => "   ; no reconvergence".to_string(),
                    }
                } else {
                    String::new()
                };
                println!("@{i:<4} {instr:<30} deps: {deps}{reconv}");
            }
        }
        other => {
            eprintln!("levc: unknown --emit mode `{other}`");
            return usage();
        }
    }
    ExitCode::SUCCESS
}
