//! Dominator and post-dominator computation.
//!
//! Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple,
//! Fast Dominance Algorithm"). Post-dominators are dominators of the
//! reversed graph rooted at the virtual exit; the *immediate post-dominator
//! of a branch block is its reconvergence point* — the key quantity of the
//! authors' NOREBA analysis that Levioso reuses.

use crate::cfg::FunctionCfg;

/// Immediate dominators for a graph given as successor lists.
///
/// Returns `idom[v]` for every node; `idom[entry] == Some(entry)` by
/// convention, and nodes unreachable from `entry` get `None`.
///
/// # Panics
///
/// Panics if `entry` is out of range.
pub fn immediate_dominators(succs: &[Vec<usize>], entry: usize) -> Vec<Option<usize>> {
    let n = succs.len();
    assert!(entry < n, "entry {entry} out of range for {n} nodes");

    // Reverse-postorder over reachable nodes (iterative DFS).
    let mut postorder = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    visited[entry] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < succs[v].len() {
            let s = succs[v][*i];
            *i += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(v);
            stack.pop();
        }
    }
    let mut po_num = vec![usize::MAX; n];
    for (num, &v) in postorder.iter().enumerate() {
        po_num[v] = num;
    }
    let rpo: Vec<usize> = postorder.iter().rev().copied().collect();

    // Predecessor lists restricted to reachable nodes.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &v in &rpo {
        for &s in &succs[v] {
            preds[s].push(v);
        }
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry);
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while po_num[a] < po_num[b] {
                a = idom[a].expect("processed node has idom");
            }
            while po_num[b] < po_num[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &v in &rpo {
            if v == entry {
                continue;
            }
            let mut new_idom: Option<usize> = None;
            for &p in &preds[v] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if new_idom != idom[v] && new_idom.is_some() {
                idom[v] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Immediate post-dominators of a function CFG, over node ids
/// `0..cfg.node_count()` where the last id is the virtual exit.
///
/// `ipdom[exit] == Some(exit)`; blocks with no path to the exit (infinite
/// loops) get `None` and must be treated conservatively by callers.
pub fn immediate_postdominators(cfg: &FunctionCfg) -> Vec<Option<usize>> {
    let succs = cfg.succ_table();
    let n = succs.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, ss) in succs.iter().enumerate() {
        for &s in ss {
            rev[s].push(v);
        }
    }
    immediate_dominators(&rev, cfg.exit())
}

/// Whether `a` dominates `b` under the given idom array (reflexive).
pub fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
    let mut v = b;
    loop {
        if v == a {
            return true;
        }
        match idom[v] {
            Some(p) if p != v => v = p,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use levioso_isa::assemble;

    #[test]
    fn chain_dominators() {
        // 0 -> 1 -> 2
        let succs = vec![vec![1], vec![2], vec![]];
        let idom = immediate_dominators(&succs, 0);
        assert_eq!(idom, vec![Some(0), Some(0), Some(1)]);
        assert!(dominates(&idom, 0, 2));
        assert!(dominates(&idom, 1, 2));
        assert!(!dominates(&idom, 2, 1));
    }

    #[test]
    fn diamond_dominators() {
        // 0 -> {1,2} -> 3
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let idom = immediate_dominators(&succs, 0);
        assert_eq!(idom[3], Some(0), "join is dominated by the fork, not an arm");
    }

    #[test]
    fn loop_dominators() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let succs = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let idom = immediate_dominators(&succs, 0);
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(1));
        assert_eq!(idom[3], Some(2));
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let succs = vec![vec![], vec![0]];
        let idom = immediate_dominators(&succs, 0);
        assert_eq!(idom, vec![Some(0), None]);
    }

    #[test]
    fn reconvergence_of_diamond_is_join() {
        let p = assemble(
            "t",
            r"
            beqz a0, else
            addi a1, a1, 1
            j join
        else:
            addi a1, a1, 2
        join:
            halt
        ",
        )
        .unwrap();
        let cfg = build_cfg(&p);
        let f = &cfg.functions[0];
        let ipdom = immediate_postdominators(f);
        let branch_block = f.block_of(0).unwrap();
        let join_block = f.block_of(4).unwrap();
        assert_eq!(ipdom[branch_block], Some(join_block));
    }

    #[test]
    fn reconvergence_of_loop_branch_is_loop_exit() {
        let p = assemble(
            "t",
            r"
            li a0, 3
        loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
        ",
        )
        .unwrap();
        let cfg = build_cfg(&p);
        let f = &cfg.functions[0];
        let ipdom = immediate_postdominators(f);
        let loop_block = f.block_of(1).unwrap();
        let exit_block = f.block_of(3).unwrap();
        assert_eq!(ipdom[loop_block], Some(exit_block));
    }

    #[test]
    fn infinite_loop_has_no_postdominator() {
        let p = assemble("t", "x: j x\nhalt").unwrap();
        let cfg = build_cfg(&p);
        let f = &cfg.functions[0];
        let ipdom = immediate_postdominators(f);
        let b = f.block_of(0).unwrap();
        assert_eq!(ipdom[b], None);
    }
}
