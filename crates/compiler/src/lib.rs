//! # levioso-compiler — the software half of Levioso
//!
//! Implements the compiler analysis of *"Levioso: Efficient
//! Compiler-Informed Secure Speculation"* (DAC '24): for every instruction,
//! the set of conditional branches it **truly depends on**, communicated to
//! the simulated hardware as [`levioso_isa::Annotations`].
//!
//! The pipeline is the classic one an LLVM pass would run:
//!
//! 1. [`mod@cfg`] — function discovery and basic-block control-flow graphs;
//! 2. [`dom`] — post-dominator trees (Cooper–Harvey–Kennedy); the immediate
//!    post-dominator of a branch is its *reconvergence point*;
//! 3. [`ctrldep`] — transitive Ferrante–Ottenstein–Warren control
//!    dependence;
//! 4. [`dataflow`] — reaching definitions (used by the static-dataflow
//!    ablation);
//! 5. [`mod@annotate`] — assembling per-instruction dependency sets, including
//!    the interprocedural closure that makes callee bodies inherit the
//!    branches guarding their call sites.
//!
//! The crate also ships **Levi** ([`levi`]), a small C-like source language
//! that compiles to lev64, so evaluation workloads can be written the way
//! the paper's SPEC workloads were: as source code flowing through the
//! annotating compiler.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut program = levioso_isa::assemble(
//!     "demo",
//!     r"
//!         ld   t0, 0(a0)
//!         blez t0, skip
//!         addi a1, a1, 1
//!     skip:
//!         halt
//!     ",
//! )?;
//! levioso_compiler::annotate(&mut program);
//! let annotations = program.annotations.as_ref().expect("annotated");
//! // The guarded increment depends on the branch; the final halt does not.
//! assert_eq!(*annotations.deps_of(2), levioso_isa::DepSet::Exact(vec![1]));
//! assert_eq!(*annotations.deps_of(3), levioso_isa::DepSet::Exact(vec![]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod annotate;
pub mod bitset;
pub mod cfg;
pub mod ctrldep;
pub mod dataflow;
pub mod dom;
pub mod levi;

pub use annotate::{annotate, annotate_with, compute_annotations, Analysis, AnnotateConfig};
pub use bitset::BitSet;
pub use cfg::{build_cfg, Block, FunctionCfg, ProgramCfg};
pub use ctrldep::{control_dependence, ControlDeps};
pub use dataflow::ReachingDefs;
pub use dom::{dominates, immediate_dominators, immediate_postdominators};
