//! Control-flow graph construction.
//!
//! Analysis is *function-local*, mirroring how a production compiler pass
//! (the paper's LLVM implementation) computes control dependence. Functions
//! are discovered from call sites (`jal` with a live link register); inside
//! a function, a call is a fall-through edge (callees are assumed to
//! return), and `jalr` (returns and other indirect jumps) exit the function
//! to a virtual exit node.
//!
//! Any instruction the analysis cannot place in a well-formed function —
//! code shared between functions, branches into other functions, blocks
//! with no path to an exit — is handled conservatively downstream (it is
//! annotated [`levioso_isa::DepSet::AllOlder`]).

use levioso_isa::{Instr, Program};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A basic block: instructions `[start, end)` of the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor block ids (may include the virtual exit id).
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl Block {
    /// Iterates over the instruction indices in this block.
    pub fn instrs(&self) -> impl Iterator<Item = u32> {
        self.start..self.end
    }

    /// Index of the block's last instruction.
    pub fn terminator(&self) -> u32 {
        self.end - 1
    }
}

/// The control-flow graph of one discovered function.
#[derive(Debug, Clone)]
pub struct FunctionCfg {
    /// Entry instruction index.
    pub entry_instr: u32,
    /// Basic blocks; block 0 is the entry block.
    pub blocks: Vec<Block>,
    /// Whether the function was well-formed enough to analyze. When false,
    /// every instruction of the function must be treated conservatively.
    pub analyzable: bool,
    block_of: BTreeMap<u32, usize>,
}

impl FunctionCfg {
    /// Id of the virtual exit node (one past the last real block).
    pub fn exit(&self) -> usize {
        self.blocks.len()
    }

    /// Total node count including the virtual exit.
    pub fn node_count(&self) -> usize {
        self.blocks.len() + 1
    }

    /// Block containing instruction `instr`, if it belongs to this function.
    pub fn block_of(&self, instr: u32) -> Option<usize> {
        self.block_of.get(&instr).copied()
    }

    /// Successor lists over all nodes (real blocks then the virtual exit,
    /// which has none), as needed by the dominator algorithms.
    pub fn succ_table(&self) -> Vec<Vec<usize>> {
        let mut t: Vec<Vec<usize>> = self.blocks.iter().map(|b| b.succs.clone()).collect();
        t.push(Vec::new()); // virtual exit
        t
    }

    /// Instruction indices belonging to this function, ascending.
    pub fn instrs(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.iter().flat_map(|b| b.instrs())
    }

    /// Conditional-branch instructions terminating blocks of this function:
    /// `(block id, instruction index)` pairs in ascending instruction order.
    pub fn branch_points(&self, program: &Program) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for (bi, b) in self.blocks.iter().enumerate() {
            let t = b.terminator();
            if program.instrs[t as usize].is_branch() {
                out.push((bi, t));
            }
        }
        out
    }
}

/// Control-flow graphs for a whole program.
#[derive(Debug, Clone)]
pub struct ProgramCfg {
    /// Discovered functions; index 0 is the function entered at
    /// instruction 0.
    pub functions: Vec<FunctionCfg>,
    /// For each instruction, the function that owns it (or `None` for code
    /// that is unreachable or claimed ambiguously).
    pub function_of: Vec<Option<usize>>,
}

impl ProgramCfg {
    /// The function owning instruction `instr` together with its CFG, if
    /// the instruction was claimed and the function is analyzable.
    pub fn analyzable_function_of(&self, instr: u32) -> Option<&FunctionCfg> {
        let f = self.function_of.get(instr as usize).copied().flatten()?;
        let cfg = &self.functions[f];
        cfg.analyzable.then_some(cfg)
    }
}

/// Where control can go after one instruction, function-locally.
enum Flow {
    Fallthrough,
    BranchTo(u32),
    GotoTo(u32),
    CallReturnsTo,
    ExitsFunction,
}

fn flow_of(ins: &Instr) -> Flow {
    match *ins {
        Instr::Branch { target, .. } => Flow::BranchTo(target),
        Instr::Jal { rd, target } => {
            if rd.is_zero() {
                Flow::GotoTo(target)
            } else {
                Flow::CallReturnsTo
            }
        }
        Instr::Jalr { .. } | Instr::Halt => Flow::ExitsFunction,
        _ => Flow::Fallthrough,
    }
}

/// Builds per-function control-flow graphs for `program`.
///
/// Never fails: malformed regions are reported through
/// [`FunctionCfg::analyzable`] / [`ProgramCfg::function_of`] and handled
/// conservatively by annotation.
pub fn build_cfg(program: &Program) -> ProgramCfg {
    let n = program.instrs.len();
    let mut function_of: Vec<Option<usize>> = vec![None; n];

    // Function entries: instruction 0, plus every call target.
    let mut entries: Vec<u32> = vec![0];
    for ins in &program.instrs {
        if let Instr::Jal { rd, target } = *ins {
            if !rd.is_zero() {
                entries.push(target);
            }
        }
    }
    entries.sort_unstable();
    entries.dedup();
    if n == 0 {
        return ProgramCfg { functions: Vec::new(), function_of };
    }
    entries.retain(|&e| (e as usize) < n);

    // Phase 1: claim instructions per function; code reachable from two
    // entries poisons *both* functions (the shared region has in-edges
    // neither function-local CFG models).
    let mut claims: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); entries.len()];
    let mut poisoned = vec![false; entries.len()];
    for (fi, &entry) in entries.iter().enumerate() {
        let mut work = VecDeque::from([entry]);
        while let Some(i) = work.pop_front() {
            if (i as usize) >= n {
                poisoned[fi] = true;
                continue;
            }
            match function_of[i as usize] {
                Some(owner) if owner == fi => continue, // already claimed by us
                Some(owner) => {
                    poisoned[fi] = true;
                    poisoned[owner] = true;
                    continue;
                }
                None => {}
            }
            function_of[i as usize] = Some(fi);
            claims[fi].insert(i);
            match flow_of(&program.instrs[i as usize]) {
                Flow::Fallthrough | Flow::CallReturnsTo => work.push_back(i + 1),
                Flow::BranchTo(t) => {
                    work.push_back(i + 1);
                    work.push_back(t);
                }
                Flow::GotoTo(t) => work.push_back(t),
                Flow::ExitsFunction => {}
            }
        }
    }

    // Phase 2: build per-function CFGs.
    let mut functions = Vec::with_capacity(entries.len());
    for (fi, &entry) in entries.iter().enumerate() {
        functions.push(build_function_cfg(program, entry, &claims[fi], !poisoned[fi]));
    }

    ProgramCfg { functions, function_of }
}

fn build_function_cfg(
    program: &Program,
    entry: u32,
    claimed: &BTreeSet<u32>,
    mut analyzable: bool,
) -> FunctionCfg {
    // Leaders: entry, control-transfer targets, instructions following a
    // control transfer, and any discontinuity in the claimed set.
    let mut leaders = BTreeSet::new();
    leaders.insert(entry);
    for &i in claimed {
        match flow_of(&program.instrs[i as usize]) {
            Flow::BranchTo(t) => {
                leaders.insert(t);
                leaders.insert(i + 1);
            }
            Flow::GotoTo(t) => {
                leaders.insert(t);
                leaders.insert(i + 1);
            }
            Flow::CallReturnsTo | Flow::ExitsFunction => {
                leaders.insert(i + 1);
            }
            Flow::Fallthrough => {
                if !claimed.contains(&(i + 1)) {
                    leaders.insert(i + 1);
                }
            }
        }
    }

    // Carve claimed instructions into maximal runs split at leaders.
    let mut blocks: Vec<Block> = Vec::new();
    let mut block_of = BTreeMap::new();
    let mut run_start: Option<u32> = None;
    let mut prev: Option<u32> = None;
    let close_run =
        |start: u32, end: u32, blocks: &mut Vec<Block>, block_of: &mut BTreeMap<u32, usize>| {
            let id = blocks.len();
            for i in start..end {
                block_of.insert(i, id);
            }
            blocks.push(Block { start, end, succs: Vec::new(), preds: Vec::new() });
        };
    for &i in claimed {
        let discontinuous = prev.is_some_and(|p| p + 1 != i);
        if run_start.is_some() && (discontinuous || leaders.contains(&i)) {
            close_run(run_start.unwrap(), prev.unwrap() + 1, &mut blocks, &mut block_of);
            run_start = None;
        }
        if run_start.is_none() {
            run_start = Some(i);
        }
        prev = Some(i);
        // A control transfer (or exit) terminates the current run.
        match flow_of(&program.instrs[i as usize]) {
            Flow::Fallthrough | Flow::CallReturnsTo => {}
            _ => {
                close_run(run_start.unwrap(), i + 1, &mut blocks, &mut block_of);
                run_start = None;
            }
        }
    }
    if let (Some(s), Some(p)) = (run_start, prev) {
        close_run(s, p + 1, &mut blocks, &mut block_of);
    }

    // Entry must be block 0: rotate if needed (claimed iteration is by
    // instruction order; the entry is the smallest claimed instruction of
    // the function in well-formed code, but a backward call target could
    // break that).
    if let Some(&entry_block) = block_of.get(&entry) {
        if entry_block != 0 {
            blocks.swap(0, entry_block);
            block_of = BTreeMap::new();
            for (id, b) in blocks.iter().enumerate() {
                for i in b.instrs() {
                    block_of.insert(i, id);
                }
            }
        }
    } else {
        analyzable = false;
    }

    // Successor edges.
    let exit = blocks.len();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (bi, b) in blocks.iter().enumerate() {
        let t = b.terminator();
        let link =
            |to: Option<u32>, edges: &mut Vec<(usize, usize)>, analyzable: &mut bool| match to {
                Some(i) => match block_of.get(&i) {
                    Some(&tb) => edges.push((bi, tb)),
                    None => *analyzable = false, // leaves the function
                },
                None => edges.push((bi, exit)),
            };
        match flow_of(&program.instrs[t as usize]) {
            Flow::Fallthrough | Flow::CallReturnsTo => {
                link(Some(t + 1), &mut edges, &mut analyzable)
            }
            Flow::BranchTo(target) => {
                link(Some(target), &mut edges, &mut analyzable);
                link(Some(t + 1), &mut edges, &mut analyzable);
            }
            Flow::GotoTo(target) => link(Some(target), &mut edges, &mut analyzable),
            Flow::ExitsFunction => link(None, &mut edges, &mut analyzable),
        }
    }
    for (from, to) in edges {
        if !blocks[from].succs.contains(&to) {
            blocks[from].succs.push(to);
        }
        if to < exit && !blocks[to].preds.contains(&from) {
            blocks[to].preds.push(from);
        }
    }

    FunctionCfg { entry_instr: entry, blocks, analyzable, block_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_isa::assemble;

    fn cfg_of(src: &str) -> ProgramCfg {
        build_cfg(&assemble("t", src).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("nop\nnop\nhalt");
        assert_eq!(c.functions.len(), 1);
        let f = &c.functions[0];
        assert!(f.analyzable);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].succs, vec![f.exit()]);
    }

    #[test]
    fn diamond_shape() {
        // 0: beqz -> 2 blocks for arms, join, halt
        let c = cfg_of(
            r"
            beqz a0, else
            addi a1, a1, 1
            j join
        else:
            addi a1, a1, 2
        join:
            halt
        ",
        );
        let f = &c.functions[0];
        assert!(f.analyzable);
        assert_eq!(f.blocks.len(), 4);
        // Entry block = branch alone.
        assert_eq!(f.blocks[0].end - f.blocks[0].start, 1);
        assert_eq!(f.blocks[0].succs.len(), 2);
        // Both arms feed the join block.
        let join = f.block_of(4).unwrap();
        assert_eq!(f.blocks[join].preds.len(), 2);
    }

    #[test]
    fn loop_back_edge() {
        let c = cfg_of(
            r"
            li a0, 3
        loop:
            addi a0, a0, -1
            bnez a0, loop
            halt
        ",
        );
        let f = &c.functions[0];
        assert!(f.analyzable);
        let loop_block = f.block_of(1).unwrap();
        // The loop block's branch goes back to itself and on to the halt.
        assert!(f.blocks[loop_block].succs.contains(&loop_block));
        assert_eq!(f.blocks[loop_block].succs.len(), 2);
    }

    #[test]
    fn functions_are_separated() {
        let c = cfg_of(
            r"
            li a0, 5
            call f
            halt
        f:
            add a0, a0, a0
            ret
        ",
        );
        assert_eq!(c.functions.len(), 2);
        assert!(c.functions.iter().all(|f| f.analyzable));
        // Call is a fall-through edge inside main.
        let main = &c.functions[0];
        assert_eq!(main.blocks.len(), 2, "call splits main into two blocks");
        assert_eq!(c.function_of[3], Some(1));
        assert_eq!(c.function_of[4], Some(1));
        // f's ret exits to the virtual exit.
        let f = &c.functions[1];
        let ret_block = f.block_of(4).unwrap();
        assert_eq!(f.blocks[ret_block].succs, vec![f.exit()]);
    }

    #[test]
    fn branch_into_other_function_is_unanalyzable() {
        let c = cfg_of(
            r"
            call f
            beqz a0, inside
            halt
        f:
        inside:
            ret
        ",
        );
        // main branches into f's body: main must be flagged.
        assert!(!c.functions[0].analyzable);
    }

    #[test]
    fn unreachable_code_is_unclaimed() {
        let c = cfg_of(
            r"
            halt
            nop
            nop
        ",
        );
        assert_eq!(c.function_of, vec![Some(0), None, None]);
    }

    #[test]
    fn branch_points_lists_conditional_branches_only() {
        let p = assemble(
            "t",
            r"
            beqz a0, end
            j end
        end:
            halt
        ",
        )
        .unwrap();
        let c = build_cfg(&p);
        let bps = c.functions[0].branch_points(&p);
        assert_eq!(bps.len(), 1);
        assert_eq!(bps[0].1, 0);
    }
}
