//! Function-local reaching-definitions dataflow.
//!
//! Used by the *static* Levioso variant (the F3 ablation) to close branch
//! dependencies over register dataflow at compile time: an instruction
//! inherits the branch dependencies of every definition that may reach its
//! operands. The default Levioso configuration instead lets the hardware
//! propagate dependencies through the rename map, which is both more
//! precise and interprocedurally sound; see `levioso_core`.

use crate::bitset::BitSet;
use crate::cfg::FunctionCfg;
use levioso_isa::{Program, Reg};
use std::collections::BTreeMap;

/// Reaching-definitions solution for one function.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Definition sites: `defs[id] = (instruction index, defined register)`.
    pub defs: Vec<(u32, Reg)>,
    def_of_instr: BTreeMap<u32, usize>,
    /// Per-block IN set over definition ids.
    block_in: Vec<BitSet>,
}

impl ReachingDefs {
    /// Computes reaching definitions for `cfg`.
    ///
    /// Registers are assumed dead at function entry: lev64 functions receive
    /// arguments in registers, so this is an *under*-approximation across
    /// calls — which is exactly why the static variant exists only as an
    /// ablation (see crate docs).
    pub fn compute(cfg: &FunctionCfg, program: &Program) -> Self {
        // Enumerate definitions.
        let mut defs: Vec<(u32, Reg)> = Vec::new();
        let mut def_of_instr = BTreeMap::new();
        let mut defs_of_reg: BTreeMap<Reg, Vec<usize>> = BTreeMap::new();
        for i in cfg.instrs() {
            if let Some(rd) = program.instrs[i as usize].dest() {
                let id = defs.len();
                defs.push((i, rd));
                def_of_instr.insert(i, id);
                defs_of_reg.entry(rd).or_default().push(id);
            }
        }
        let nd = defs.len();

        // Per-block GEN/KILL.
        let nb = cfg.blocks.len();
        let mut gen = vec![BitSet::new(nd); nb];
        let mut kill = vec![BitSet::new(nd); nb];
        for (bi, b) in cfg.blocks.iter().enumerate() {
            for i in b.instrs() {
                if let Some(&id) = def_of_instr.get(&i) {
                    let (_, rd) = defs[id];
                    for &other in &defs_of_reg[&rd] {
                        if other != id {
                            kill[bi].insert(other);
                        }
                        // A later def in the same block re-kills; handled by
                        // overwriting gen below.
                    }
                    // Remove same-register earlier gens of this block.
                    let mut new_gen = BitSet::new(nd);
                    for g in gen[bi].iter() {
                        if defs[g].1 != rd {
                            new_gen.insert(g);
                        }
                    }
                    new_gen.insert(id);
                    gen[bi] = new_gen;
                }
            }
        }

        // Iterate IN/OUT to fixpoint.
        let mut block_in = vec![BitSet::new(nd); nb];
        let mut block_out = vec![BitSet::new(nd); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in 0..nb {
                let mut inp = BitSet::new(nd);
                for &p in &cfg.blocks[bi].preds {
                    inp.union_with(&block_out[p]);
                }
                if inp != block_in[bi] {
                    block_in[bi] = inp;
                    changed = true;
                }
                // OUT = GEN ∪ (IN − KILL)
                let mut out = gen[bi].clone();
                for d in block_in[bi].iter() {
                    if !kill[bi].contains(d) {
                        out.insert(d);
                    }
                }
                if out != block_out[bi] {
                    block_out[bi] = out;
                    changed = true;
                }
            }
        }

        ReachingDefs { defs, def_of_instr, block_in }
    }

    /// Definition id of the value produced by `instr`, if any.
    pub fn def_of(&self, instr: u32) -> Option<usize> {
        self.def_of_instr.get(&instr).copied()
    }

    /// Definition ids that may reach the use of `reg` at `instr`.
    ///
    /// # Panics
    ///
    /// Panics if `instr` does not belong to the analyzed function.
    pub fn reaching_at(
        &self,
        cfg: &FunctionCfg,
        _program: &Program,
        instr: u32,
        reg: Reg,
    ) -> Vec<usize> {
        if reg.is_zero() {
            return Vec::new();
        }
        let bi = cfg.block_of(instr).expect("instruction not in function");
        // Walk the block applying defs until we hit `instr`.
        let mut live: BTreeMap<Reg, Vec<usize>> = BTreeMap::new();
        for d in self.block_in[bi].iter() {
            live.entry(self.defs[d].1).or_default().push(d);
        }
        for i in cfg.blocks[bi].instrs() {
            if i == instr {
                break;
            }
            if let Some(&id) = self.def_of_instr.get(&i) {
                live.insert(self.defs[id].1, vec![id]);
            }
        }
        live.get(&reg).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use levioso_isa::assemble;
    use levioso_isa::reg::*;

    fn setup(src: &str) -> (Program, FunctionCfg, ReachingDefs) {
        let p = assemble("t", src).unwrap();
        let cfg = build_cfg(&p);
        let f = cfg.functions[0].clone();
        let rd = ReachingDefs::compute(&f, &p);
        (p, f, rd)
    }

    fn def_instrs(rd: &ReachingDefs, ids: Vec<usize>) -> Vec<u32> {
        let mut v: Vec<u32> = ids.into_iter().map(|d| rd.defs[d].0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn straight_line_last_def_wins() {
        let (p, f, rd) = setup("li a0, 1\nli a0, 2\nmv a1, a0\nhalt");
        let ids = rd.reaching_at(&f, &p, 2, A0);
        assert_eq!(def_instrs(&rd, ids), vec![1]);
    }

    #[test]
    fn diamond_merges_both_defs() {
        let (p, f, rd) = setup(
            r"
            beqz a0, else     # 0
            li a1, 1          # 1
            j join            # 2
        else:
            li a1, 2          # 3
        join:
            mv a2, a1         # 4
            halt
        ",
        );
        let ids = rd.reaching_at(&f, &p, 4, A1);
        assert_eq!(def_instrs(&rd, ids), vec![1, 3], "both arm defs reach the join");
    }

    #[test]
    fn loop_carried_definition_reaches_body() {
        let (p, f, rd) = setup(
            r"
            li a0, 5          # 0
        loop:
            addi a0, a0, -1   # 1
            bnez a0, loop     # 2
            halt
        ",
        );
        // The use of a0 at instruction 1 sees both the initial def (0) and
        // the loop-carried def (1 itself, from the previous iteration).
        let ids = rd.reaching_at(&f, &p, 1, A0);
        assert_eq!(def_instrs(&rd, ids), vec![0, 1]);
    }

    #[test]
    fn x0_has_no_definitions() {
        let (p, f, rd) = setup("add a0, zero, zero\nhalt");
        assert!(rd.reaching_at(&f, &p, 0, ZERO).is_empty());
    }

    #[test]
    fn kill_is_per_register() {
        let (p, f, rd) = setup("li a0, 1\nli a1, 2\nadd a2, a0, a1\nhalt");
        assert_eq!(def_instrs(&rd, rd.reaching_at(&f, &p, 2, A0)), vec![0]);
        assert_eq!(def_instrs(&rd, rd.reaching_at(&f, &p, 2, A1)), vec![1]);
    }
}
