//! The Levioso annotation pass: program → per-instruction true branch
//! dependencies.
//!
//! This is the software half of the co-design. For every instruction it
//! computes the set of conditional branches whose outcome the instruction
//! truly depends on and encodes it as [`levioso_isa::Annotations`]:
//!
//! 1. **Control dependence** (always included): the transitive
//!    Ferrante–Ottenstein–Warren control dependence computed from the
//!    post-dominator tree — the region between each branch and its
//!    reconvergence point.
//! 2. **Static register dataflow closure** (optional,
//!    [`AnnotateConfig::static_dataflow`]): an instruction inherits the
//!    dependencies of every definition that may reach its operands. The
//!    default configuration leaves this to the hardware's rename-time
//!    propagation instead (see `levioso_core`), which is interprocedurally
//!    sound; the static closure exists as the paper-style ablation and is
//!    only sound for programs without cross-function data flows.
//!
//! Anything the analysis cannot prove well-formed — unreachable code,
//! functions with branches into other functions, blocks with no path to an
//! exit — is annotated [`DepSet::AllOlder`], which degrades those
//! instructions to the hardware-only conservative behaviour (never to an
//! unsound one).

use crate::bitset::BitSet;
use crate::cfg::{build_cfg, FunctionCfg, ProgramCfg};
use crate::ctrldep::{control_dependence, ControlDeps};
use crate::dataflow::ReachingDefs;
use crate::dom::immediate_postdominators;
use levioso_isa::{Annotations, DepSet, Program};

/// Configuration for the annotation pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnotateConfig {
    /// Also close dependencies over static register dataflow (the "static
    /// Levioso" ablation). Default `false`: control dependence only, with
    /// dataflow propagation done in hardware.
    pub static_dataflow: bool,
}

/// Whole-program analysis artifacts, exposed for inspection, tests, and the
/// motivation experiment (F1).
#[derive(Debug)]
pub struct Analysis {
    /// The per-function control-flow graphs.
    pub cfg: ProgramCfg,
    /// Per-function immediate post-dominators (indexed like
    /// `cfg.functions`).
    pub ipdoms: Vec<Vec<Option<usize>>>,
    /// Per-function transitive control dependence.
    pub ctrl: Vec<ControlDeps>,
}

impl Analysis {
    /// Runs CFG construction, post-dominance, and control dependence.
    pub fn of(program: &Program) -> Self {
        let cfg = build_cfg(program);
        let mut ipdoms = Vec::with_capacity(cfg.functions.len());
        let mut ctrl = Vec::with_capacity(cfg.functions.len());
        for f in &cfg.functions {
            let ipdom = immediate_postdominators(f);
            ctrl.push(control_dependence(f, program, &ipdom));
            ipdoms.push(ipdom);
        }
        Analysis { cfg, ipdoms, ctrl }
    }

    /// The reconvergence point of the conditional branch at `branch_instr`:
    /// the first instruction of its immediate post-dominator block. Returns
    /// `None` for non-branches, unanalyzable code, or branches with no
    /// reconvergence (paths that never rejoin before exit).
    pub fn reconvergence_point(&self, program: &Program, branch_instr: u32) -> Option<u32> {
        if !program.instrs.get(branch_instr as usize)?.is_branch() {
            return None;
        }
        let fi = self.cfg.function_of.get(branch_instr as usize).copied().flatten()?;
        let f = &self.cfg.functions[fi];
        if !f.analyzable {
            return None;
        }
        let b = f.block_of(branch_instr)?;
        let reconv = self.ipdoms[fi][b]?;
        if reconv == f.exit() {
            None
        } else {
            Some(f.blocks[reconv].start)
        }
    }
}

/// Computes annotations for `program` under `config`.
pub fn compute_annotations(program: &Program, config: &AnnotateConfig) -> Annotations {
    let analysis = Analysis::of(program);
    let n = program.instrs.len();
    let mut sets: Vec<DepSet> = vec![DepSet::AllOlder; n];

    let (entry_deps, entry_conservative) = interprocedural_entry_deps(program, &analysis);

    for (fi, f) in analysis.cfg.functions.iter().enumerate() {
        let ctrl = &analysis.ctrl[fi];
        if !f.analyzable || !ctrl.complete || entry_conservative[fi] {
            continue; // leave AllOlder
        }
        if config.static_dataflow {
            annotate_function_static(program, f, ctrl, &mut sets);
            // Add the interprocedural entry dependencies on top.
            if !entry_deps[fi].is_empty() {
                for i in f.instrs() {
                    if let DepSet::Exact(v) = &mut sets[i as usize] {
                        v.extend(entry_deps[fi].iter().copied());
                        v.sort_unstable();
                        v.dedup();
                    }
                }
            }
        } else {
            for (bi, b) in f.blocks.iter().enumerate() {
                let mut deps = ctrl.deps_of_block(bi);
                deps.extend(entry_deps[fi].iter().copied());
                deps.sort_unstable();
                deps.dedup();
                for i in b.instrs() {
                    sets[i as usize] = DepSet::Exact(deps.clone());
                }
            }
        }
    }

    Annotations::new(sets)
}

/// Interprocedural closure: a function's body is control-dependent on every
/// branch guarding any of its (transitive) call sites, so each function
/// inherits `entry_deps = ⋃ over call sites (local deps of the call ∪
/// entry_deps of the caller)`. Functions called from unanalyzable code are
/// flagged conservative. Call sites in statically unreachable code are
/// ignored: with decode-time branch-target verification (which the
/// simulated frontend performs), wrong-path fetch only ever follows static
/// CFG paths, so statically unreachable code is fetched only behind an
/// unresolved indirect jump — and indirect jumps are hardware barriers.
fn interprocedural_entry_deps(
    program: &Program,
    analysis: &Analysis,
) -> (Vec<std::collections::BTreeSet<u32>>, Vec<bool>) {
    use std::collections::BTreeSet;
    let nfuncs = analysis.cfg.functions.len();
    let mut entry_deps: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nfuncs];
    let mut conservative = vec![false; nfuncs];

    // Map function entry instruction -> function index.
    let entry_to_fi: std::collections::BTreeMap<u32, usize> =
        analysis.cfg.functions.iter().enumerate().map(|(fi, f)| (f.entry_instr, fi)).collect();

    // Collect reachable call sites: (caller fi, callee fi, call instr).
    let mut call_sites: Vec<(usize, usize, u32)> = Vec::new();
    for (i, ins) in program.instrs.iter().enumerate() {
        if let levioso_isa::Instr::Jal { rd, target } = *ins {
            if !rd.is_zero() {
                let Some(caller) = analysis.cfg.function_of[i].map(Some).unwrap_or(None) else {
                    continue; // unreachable call site
                };
                if let Some(&callee) = entry_to_fi.get(&target) {
                    call_sites.push((caller, callee, i as u32));
                }
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for &(caller, callee, call_instr) in &call_sites {
            let caller_f = &analysis.cfg.functions[caller];
            let caller_ctrl = &analysis.ctrl[caller];
            if !caller_f.analyzable || !caller_ctrl.complete || conservative[caller] {
                if !conservative[callee] {
                    conservative[callee] = true;
                    changed = true;
                }
                continue;
            }
            let mut add: BTreeSet<u32> = entry_deps[caller].clone();
            if let Some(bi) = caller_f.block_of(call_instr) {
                add.extend(caller_ctrl.deps_of_block(bi));
            }
            for d in add {
                if entry_deps[callee].insert(d) {
                    changed = true;
                }
            }
        }
    }

    (entry_deps, conservative)
}

/// Static variant: control dependence closed over register dataflow.
fn annotate_function_static(
    program: &Program,
    f: &FunctionCfg,
    ctrl: &ControlDeps,
    sets: &mut [DepSet],
) {
    let rd = ReachingDefs::compute(f, program);
    let nb = ctrl.branches.len();

    // Dense instruction list of the function for fixpoint iteration.
    let instrs: Vec<u32> = f.instrs().collect();
    let pos_of = |i: u32| instrs.binary_search(&i).expect("function instruction");

    // Initialise with block-level control dependence.
    let mut dep_bits: Vec<BitSet> = instrs
        .iter()
        .map(|&i| {
            let bi = f.block_of(i).expect("claimed instruction has a block");
            ctrl.block_deps[bi].clone()
        })
        .collect();

    // Fixpoint: inherit dependencies through reaching definitions.
    let mut changed = true;
    while changed {
        changed = false;
        for (k, &i) in instrs.iter().enumerate() {
            let ins = program.instrs[i as usize];
            let mut inherit = BitSet::new(nb);
            for src in ins.sources() {
                for d in rd.reaching_at(f, program, i, src) {
                    let (def_instr, _) = rd.defs[d];
                    inherit.union_with(&dep_bits[pos_of(def_instr)]);
                }
            }
            if dep_bits[k].union_with(&inherit) {
                changed = true;
            }
        }
    }

    for (k, &i) in instrs.iter().enumerate() {
        let mut v: Vec<u32> = dep_bits[k].iter().map(|b| ctrl.branches[b].1).collect();
        v.sort_unstable();
        sets[i as usize] = DepSet::Exact(v);
    }
}

/// Annotates `program` in place with the default configuration (control
/// dependence in the annotation, dataflow left to hardware propagation) and
/// returns a reference to the annotations.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = levioso_isa::assemble("t", "beqz a0, x\nld a1, 0(a2)\nx: halt")?;
/// levioso_compiler::annotate(&mut p);
/// assert!(p.annotations.is_some());
/// # Ok(())
/// # }
/// ```
pub fn annotate(program: &mut Program) -> &Annotations {
    annotate_with(program, &AnnotateConfig::default())
}

/// Annotates `program` in place under `config`.
pub fn annotate_with<'p>(program: &'p mut Program, config: &AnnotateConfig) -> &'p Annotations {
    let a = compute_annotations(program, config);
    program.annotations = Some(a);
    program.annotations.as_ref().expect("just set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use levioso_isa::assemble;

    fn deps(program: &Program, a: &Annotations, i: u32) -> Vec<u32> {
        let _ = program;
        match a.deps_of(i as usize) {
            DepSet::Exact(v) => v.clone(),
            DepSet::AllOlder => panic!("instruction {i} unexpectedly conservative"),
        }
    }

    #[test]
    fn filter_scan_load_is_independent_of_filter_branch() {
        // The canonical Levioso win: the next-element load (5) depends on
        // the loop branch (6) but NOT on the data-dependent filter branch
        // (2).
        let mut p = assemble(
            "filter",
            r"
            li   a0, 0          # 0  i = 0
        loop:
            ld   t0, 0(a1)      # 1  x = a[i]
            blez t0, skip       # 2  filter branch (data dependent)
            add  a2, a2, t0     # 3  sum += x
        skip:
            addi a1, a1, 8      # 4
            addi a0, a0, 1      # 5
            blt  a0, a3, loop   # 6  loop branch
            halt                # 7
        ",
        )
        .unwrap();
        let a = annotate(&mut p).clone();
        assert_eq!(deps(&p, &a, 3), vec![2, 6], "guarded work depends on filter + loop");
        assert_eq!(deps(&p, &a, 1), vec![6], "the load depends only on the loop branch");
        assert_eq!(deps(&p, &a, 4), vec![6]);
        assert_eq!(deps(&p, &a, 7), Vec::<u32>::new());
    }

    #[test]
    fn static_dataflow_propagates_through_registers() {
        // Post-reconvergence instruction consuming a value defined
        // differently in the two arms must inherit the branch dependency in
        // the static variant.
        let mut p = assemble(
            "phi",
            r"
            beqz a0, else     # 0
            li   a1, 8        # 1
            j    join         # 2
        else:
            li   a1, 16       # 3
        join:
            add  a2, a1, a3   # 4 consumes the phi value
            add  a4, a3, a3   # 5 independent
            halt              # 6
        ",
        )
        .unwrap();
        let a = annotate_with(&mut p, &AnnotateConfig { static_dataflow: true }).clone();
        assert_eq!(deps(&p, &a, 4), vec![0], "phi consumer inherits the branch");
        assert_eq!(deps(&p, &a, 5), Vec::<u32>::new(), "independent add stays clean");
        // Control-only variant leaves instruction 4 clean (hardware will
        // propagate instead).
        let c = compute_annotations(&p, &AnnotateConfig::default());
        assert_eq!(deps(&p, &c, 4), Vec::<u32>::new());
    }

    #[test]
    fn static_dataflow_handles_loop_carried_deps() {
        let mut p = assemble(
            "loopdep",
            r"
            li   a0, 4         # 0
            li   a1, 0         # 1
        loop:
            beqz a2, skip      # 2
            addi a1, a1, 1     # 3  a1 defined under branch 2
        skip:
            addi a0, a0, -1    # 4
            bnez a0, loop      # 5
            add  a3, a1, a1    # 6  consumes a1 after the loop
            halt               # 7
        ",
        )
        .unwrap();
        let a = annotate_with(&mut p, &AnnotateConfig { static_dataflow: true }).clone();
        // a1's def at 3 is control-dependent on branches 2 and 5; the
        // post-loop consumer inherits both through dataflow.
        assert_eq!(deps(&p, &a, 6), vec![2, 5]);
        // The independent decrement chain only carries the loop branch via
        // its own loop-carried dataflow (4 depends on itself reaching
        // around the back edge, which is control-dependent on 5).
        assert_eq!(deps(&p, &a, 4), vec![5]);
    }

    #[test]
    fn unreachable_code_is_conservative() {
        let mut p = assemble("t", "halt\nld a0, 0(a1)").unwrap();
        let a = annotate(&mut p).clone();
        assert_eq!(*a.deps_of(1), DepSet::AllOlder);
        assert_eq!(*a.deps_of(0), DepSet::Exact(vec![]));
    }

    #[test]
    fn infinite_loop_function_is_conservative() {
        let mut p = assemble("t", "x: beqz a0, x\nj x\nhalt").unwrap();
        let a = annotate(&mut p).clone();
        assert_eq!(*a.deps_of(0), DepSet::AllOlder);
    }

    #[test]
    fn reconvergence_points() {
        let p = assemble(
            "t",
            r"
            beqz a0, else
            nop
            j join
        else:
            nop
        join:
            halt
        ",
        )
        .unwrap();
        let an = Analysis::of(&p);
        assert_eq!(an.reconvergence_point(&p, 0), Some(4));
        assert_eq!(an.reconvergence_point(&p, 1), None, "not a branch");
    }

    #[test]
    fn annotations_validate_against_program() {
        let mut p = assemble(
            "t",
            r"
            li a0, 3
        loop:
            beqz a1, skip
            addi a2, a2, 1
        skip:
            addi a0, a0, -1
            bnez a0, loop
            halt
        ",
        )
        .unwrap();
        annotate(&mut p);
        p.validate().expect("annotated program still validates");
    }

    #[test]
    fn callee_inherits_call_site_guards() {
        let mut p = assemble(
            "t",
            r"
            beqz a0, skip   # 0
            call f          # 1
        skip:
            halt            # 2
        f:
            add a0, a0, a0  # 3
            ret             # 4
        ",
        )
        .unwrap();
        let a = annotate(&mut p).clone();
        assert_eq!(deps(&p, &a, 1), vec![0], "call site is control dependent");
        // Callee body inherits the branch guarding its only call site.
        assert_eq!(deps(&p, &a, 3), vec![0]);
        assert_eq!(deps(&p, &a, 4), vec![0]);
    }

    #[test]
    fn entry_deps_union_over_call_sites_and_nest() {
        let mut p = assemble(
            "t",
            r"
            beqz a0, second   # 0
            call f            # 1
            halt              # 2
        second:
            beqz a1, out      # 3
            call f            # 4
        out:
            halt              # 5
        f:
            call g            # 6
            ret               # 7
        g:
            nop               # 8
            ret               # 9
        ",
        )
        .unwrap();
        let a = annotate(&mut p).clone();
        // f is called under branch 0 (taken side of its fall-through) and
        // under branches 0+3 on the second path: union = {0, 3}.
        assert_eq!(deps(&p, &a, 6), vec![0, 3]);
        // g inherits f's entry deps plus f-local deps of the call (none).
        assert_eq!(deps(&p, &a, 8), vec![0, 3]);
    }

    #[test]
    fn unconditional_call_keeps_callee_clean() {
        let mut p = assemble(
            "t",
            r"
            call f          # 0
            halt            # 1
        f:
            add a0, a0, a0  # 2
            ret             # 3
        ",
        )
        .unwrap();
        let a = annotate(&mut p).clone();
        assert_eq!(deps(&p, &a, 2), Vec::<u32>::new());
    }
}
