//! Control-dependence computation (Ferrante–Ottenstein–Warren).
//!
//! Block `X` is control-dependent on branch block `B` when `B` has one
//! successor through which execution *must* reach `X` and another through
//! which it may avoid `X` — equivalently, `X` post-dominates some successor
//! of `B` but not `B` itself. The region control-dependent on `B` is
//! exactly the code between `B` and its reconvergence point (its immediate
//! post-dominator).
//!
//! Levioso needs the *transitive* closure: an instruction guarded by an
//! inner branch that is itself guarded by an outer branch truly depends on
//! both.

use crate::bitset::BitSet;
use crate::cfg::FunctionCfg;

/// Control-dependence result for one function.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// Function-local branch list: `(block id, branch instruction index)`.
    pub branches: Vec<(usize, u32)>,
    /// For each block, the transitive set of branch ids (indices into
    /// `branches`) it is control-dependent on.
    pub block_deps: Vec<BitSet>,
    /// Whether every block had a post-dominator; when false the caller must
    /// fall back to conservative annotation for the affected blocks.
    pub complete: bool,
}

impl ControlDeps {
    /// Branch *instruction indices* (sorted) that `block` transitively
    /// depends on.
    pub fn deps_of_block(&self, block: usize) -> Vec<u32> {
        let mut v: Vec<u32> = self.block_deps[block].iter().map(|b| self.branches[b].1).collect();
        v.sort_unstable();
        v
    }
}

/// Computes transitive control dependence for `cfg` given its immediate
/// post-dominators (from [`crate::dom::immediate_postdominators`]).
pub fn control_dependence(
    cfg: &FunctionCfg,
    program: &levioso_isa::Program,
    ipdom: &[Option<usize>],
) -> ControlDeps {
    let branches = cfg.branch_points(program);
    let n_blocks = cfg.blocks.len();
    let n_branches = branches.len();
    let mut block_deps = vec![BitSet::new(n_branches); n_blocks];
    let mut complete = true;

    // Direct dependence: for each branch B and each successor S of B's
    // block, walk the post-dominator tree from S up to (exclusive) the
    // reconvergence point ipdom(B), marking every block on the way.
    for (bid, &(bblock, _)) in branches.iter().enumerate() {
        let reconv = ipdom[bblock];
        if reconv.is_none() {
            complete = false;
        }
        for &s in &cfg.blocks[bblock].succs {
            let mut runner = s;
            loop {
                if Some(runner) == reconv || runner == cfg.exit() {
                    break;
                }
                block_deps[runner].insert(bid);
                match ipdom[runner] {
                    Some(up) if up != runner => runner = up,
                    _ => {
                        // No path to exit (infinite loop region): stop and
                        // record incompleteness.
                        complete = false;
                        break;
                    }
                }
            }
        }
    }

    // Transitive closure over the control-dependence graph: a block
    // inherits the dependencies of every branch it depends on.
    let mut changed = true;
    while changed {
        changed = false;
        for x in 0..n_blocks {
            // Collect inherited sets first to appease the borrow checker.
            let mut inherited: Vec<usize> = Vec::new();
            for b in block_deps[x].iter() {
                inherited.push(branches[b].0);
            }
            for src in inherited {
                if src != x {
                    let (a, b) = two_mut(&mut block_deps, x, src);
                    changed |= a.union_with(b);
                }
            }
        }
    }

    ControlDeps { branches, block_deps, complete }
}

fn two_mut<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::dom::immediate_postdominators;
    use levioso_isa::{assemble, Program};

    fn analyze(src: &str) -> (Program, crate::cfg::ProgramCfg, ControlDeps) {
        let p = assemble("t", src).unwrap();
        let cfg = build_cfg(&p);
        let f = cfg.functions[0].clone();
        let ipdom = immediate_postdominators(&f);
        let deps = control_dependence(&f, &p, &ipdom);
        (p, cfg, deps)
    }

    /// Instruction-level helper: branch instruction indices that the block
    /// containing `instr` depends on.
    fn deps_of_instr(cfg: &crate::cfg::ProgramCfg, deps: &ControlDeps, instr: u32) -> Vec<u32> {
        let f = &cfg.functions[0];
        deps.deps_of_block(f.block_of(instr).unwrap())
    }

    #[test]
    fn diamond_arms_depend_join_does_not() {
        let (_, cfg, deps) = analyze(
            r"
            beqz a0, else      # 0
            addi a1, a1, 1     # 1 (then arm)
            j join             # 2
        else:
            addi a1, a1, 2     # 3 (else arm)
        join:
            halt               # 4
        ",
        );
        assert_eq!(deps_of_instr(&cfg, &deps, 1), vec![0]);
        assert_eq!(deps_of_instr(&cfg, &deps, 3), vec![0]);
        assert_eq!(deps_of_instr(&cfg, &deps, 4), Vec::<u32>::new(), "join is independent");
        assert_eq!(deps_of_instr(&cfg, &deps, 0), Vec::<u32>::new(), "branch itself independent");
        assert!(deps.complete);
    }

    #[test]
    fn nested_if_is_transitively_dependent() {
        let (_, cfg, deps) = analyze(
            r"
            beqz a0, end       # 0 outer
            beqz a1, end       # 1 inner (depends on 0)
            addi a2, a2, 1     # 2 (depends on 0 and 1)
        end:
            halt               # 3
        ",
        );
        assert_eq!(deps_of_instr(&cfg, &deps, 1), vec![0]);
        assert_eq!(deps_of_instr(&cfg, &deps, 2), vec![0, 1]);
        assert_eq!(deps_of_instr(&cfg, &deps, 3), Vec::<u32>::new());
    }

    #[test]
    fn loop_body_depends_on_loop_branch_not_code_after() {
        let (_, cfg, deps) = analyze(
            r"
            li a0, 3           # 0
        loop:
            addi a0, a0, -1    # 1
            bnez a0, loop      # 2
            addi a1, a1, 7     # 3 after loop
            halt               # 4
        ",
        );
        // The loop body block (1-2) is control-dependent on its own branch
        // (the back edge decides whether another iteration executes).
        assert_eq!(deps_of_instr(&cfg, &deps, 1), vec![2]);
        // Code after the loop does not depend on the loop branch.
        assert_eq!(deps_of_instr(&cfg, &deps, 3), Vec::<u32>::new());
    }

    #[test]
    fn if_inside_loop() {
        let (_, cfg, deps) = analyze(
            r"
            li a0, 4           # 0
        loop:
            beqz a1, skip      # 1 data-ish branch
            addi a2, a2, 1     # 2 guarded work
        skip:
            addi a0, a0, -1    # 3 independent of branch 1
            bnez a0, loop      # 4 loop branch
            halt               # 5
        ",
        );
        // Guarded work depends on both the if and the loop branch.
        assert_eq!(deps_of_instr(&cfg, &deps, 2), vec![1, 4]);
        // The post-if code in the loop depends only on the loop branch.
        assert_eq!(deps_of_instr(&cfg, &deps, 3), vec![4]);
        // The if branch itself depends on the loop branch.
        assert_eq!(deps_of_instr(&cfg, &deps, 1), vec![4]);
        assert_eq!(deps_of_instr(&cfg, &deps, 5), Vec::<u32>::new());
    }

    #[test]
    fn incomplete_when_no_postdominator() {
        let (_, _, deps) = analyze("x: beqz a0, x\nj x\nhalt");
        assert!(!deps.complete);
    }
}
