//! # levioso-stats — metrics aggregation and report rendering
//!
//! Small, dependency-light utilities shared by the experiment harnesses:
//! geometric means (the aggregation the paper's figures use), aligned text
//! tables, figure series, and JSON export of raw results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use levioso_support::{Histogram, Json, JsonError};
use std::fmt;

/// Geometric mean of strictly positive values.
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive (geometric means of
/// slowdown ratios are only meaningful for positive inputs).
///
/// ```
/// let g = levioso_stats::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (sum / values.len() as f64).exp()
}

/// Arithmetic mean (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// An aligned text table with a title, rendered for terminal reports and
/// EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. `"T1: simulated core configuration"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row should match `headers.len()`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in `{}`", self.title);
        self.rows.push(cells);
        self
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = widths[i] - c.chars().count();
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = c.chars().next().is_some_and(|ch| ch.is_ascii_digit() || ch == '-')
                    && c.chars().all(|ch| {
                        ch.is_ascii_digit() || matches!(ch, '.' | '-' | '+' | '%' | 'x' | '±')
                    });
                if numeric && i > 0 {
                    s.push_str(&" ".repeat(pad));
                    s.push_str(c);
                } else {
                    s.push_str(c);
                    s.push_str(&" ".repeat(pad));
                }
            }
            s.trim_end().to_string()
        };
        let mut out = format!("## {}\n\n", self.title);
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders one or more [`Histogram`]s side by side as an aligned table:
/// one row per log2 bucket that is non-empty in *any* series, one count
/// column per series, plus a summary row with count / mean / p99-upper.
///
/// Used by the delay-attribution report (`--attrib`, `levitrace`) to show
/// per-rule blocked-cycle distributions next to each other.
pub fn histogram_table(title: impl Into<String>, series: &[(&str, &Histogram)]) -> Table {
    let mut headers: Vec<&str> = vec!["delay (cycles)"];
    headers.extend(series.iter().map(|(name, _)| *name));
    let mut t = Table::new(title, &headers);
    let mut indices: Vec<usize> =
        series.iter().flat_map(|(_, h)| h.buckets().map(|(i, _, _, _)| i)).collect();
    indices.sort_unstable();
    indices.dedup();
    for i in indices {
        let lo = Histogram::bucket_lo(i);
        let hi = Histogram::bucket_hi(i);
        let label = if lo == hi { format!("{lo}") } else { format!("{lo}..{hi}") };
        let mut row = vec![label];
        for (_, h) in series {
            let n = h.buckets().find(|&(j, _, _, _)| j == i).map_or(0, |(_, _, _, n)| n);
            row.push(if n == 0 { "-".to_string() } else { n.to_string() });
        }
        t.push_row(row);
    }
    let mut summary = vec!["n / mean / p99".to_string()];
    for (_, h) in series {
        summary.push(format!("{} / {:.1} / {}", h.count(), h.mean(), h.quantile_hi(0.99)));
    }
    t.push_row(summary);
    t
}

/// One row of a noninterference leak matrix: scheme name, gate role, and a
/// `(leaky, total)` cell count per observer.
pub type LeakMatrixRow = (String, String, Vec<(usize, usize)>);

/// Renders a noninterference leak matrix: one row per scheme (name plus its
/// gate role), one column per observer, each cell either `clean` or
/// `LEAK k/N` where `k` of `N` fuzzed cells diverged under that observer.
///
/// Used by `table4_noninterference` (`levioso-nisec`) to report the two-run
/// fuzzing campaign.
///
/// # Panics
///
/// Panics if any row's per-observer count list does not match `observers`
/// in length (that would render a misaligned matrix).
pub fn leak_matrix_table(
    title: impl Into<String>,
    observers: &[&str],
    rows: &[LeakMatrixRow],
) -> Table {
    let mut headers: Vec<&str> = vec!["scheme", "gate role"];
    headers.extend(observers);
    let mut t = Table::new(title, &headers);
    for (scheme, role, counts) in rows {
        assert_eq!(counts.len(), observers.len(), "one (leaky, total) pair per observer");
        let mut row = vec![scheme.clone(), role.clone()];
        row.extend(counts.iter().map(|&(leaky, total)| {
            if leaky == 0 {
                "clean".to_string()
            } else {
                format!("LEAK {leaky}/{total}")
            }
        }));
        t.push_row(row);
    }
    t
}

/// One named series of `(x-label, y)` points — a bar group or line in a
/// figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (e.g. a scheme).
    pub name: String,
    /// Points in x order.
    pub points: Vec<(String, f64)>,
}

/// A figure: several series over a shared x axis, rendered as a table plus
/// a crude text bar chart (enough to eyeball shapes in a terminal).
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title (e.g. `"F2: overhead vs unsafe baseline"`).
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        Figure { title: title.into(), y_label: y_label.into(), series: Vec::new() }
    }

    /// Adds a series.
    pub fn push_series(
        &mut self,
        name: impl Into<String>,
        points: Vec<(String, f64)>,
    ) -> &mut Self {
        self.series.push(Series { name: name.into(), points });
        self
    }

    /// Renders the figure as an aligned value table (x labels as rows,
    /// series as columns).
    pub fn render(&self) -> String {
        let mut headers: Vec<&str> = vec!["x"];
        headers.extend(self.series.iter().map(|s| s.name.as_str()));
        let mut t = Table::new(format!("{} [{}]", self.title, self.y_label), &headers);
        if let Some(first) = self.series.first() {
            for (i, (x, _)) in first.points.iter().enumerate() {
                let mut row = vec![x.clone()];
                for s in &self.series {
                    row.push(s.points.get(i).map_or("-".to_string(), |(_, v)| format!("{v:.3}")));
                }
                t.push_row(row);
            }
        }
        t.render()
    }

    /// Serializes the figure to pretty JSON (for external plotting).
    pub fn to_json(&self) -> String {
        let series = self
            .series
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::str(&s.name)),
                    (
                        "points",
                        Json::Arr(
                            s.points
                                .iter()
                                .map(|(x, y)| Json::Arr(vec![Json::str(x), Json::F64(*y)]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("title", Json::str(&self.title)),
            ("y_label", Json::str(&self.y_label)),
            ("series", Json::Arr(series)),
        ])
        .emit_pretty()
    }

    /// Parses a figure back from [`Figure::to_json`] output.
    pub fn from_json(text: &str) -> Result<Figure, JsonError> {
        let bad = |message: &str| JsonError { pos: 0, message: message.to_string() };
        let v = Json::parse(text)?;
        let field_str = |key: &str| -> Result<String, JsonError> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| bad(&format!("missing string field `{key}`")))?
                .to_string())
        };
        let mut figure = Figure::new(field_str("title")?, field_str("y_label")?);
        let series = v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing array field `series`"))?;
        for s in series {
            let name =
                s.get("name").and_then(Json::as_str).ok_or_else(|| bad("series missing `name`"))?;
            let mut points = Vec::new();
            for point in s
                .get("points")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("series missing `points`"))?
            {
                let pair = point.as_arr().filter(|p| p.len() == 2);
                let (x, y) = match pair {
                    Some([x, y]) => (x.as_str(), y.as_f64()),
                    _ => (None, None),
                };
                match (x, y) {
                    (Some(x), Some(y)) => points.push((x.to_string(), y)),
                    _ => return Err(bad("point is not an [x-label, y] pair")),
                }
            }
            figure.push_series(name, points);
        }
        Ok(figure)
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 8.0]) - 2.828_427).abs() < 1e-5);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1.5".into()]);
        t.push_row(vec!["b".into(), "120.25".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("alpha"));
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quo\"\"te\""));
    }

    #[test]
    fn histogram_table_unions_buckets_across_series() {
        let mut a = Histogram::new();
        a.record_n(1, 5);
        a.record(10);
        let mut b = Histogram::new();
        b.record_n(3, 2);
        let t = histogram_table("delays", &[("exec", &a), ("xmit", &b)]);
        assert_eq!(t.headers, vec!["delay (cycles)", "exec", "xmit"]);
        // Union of non-empty buckets: {1}, {2..3}, {8..15}, plus summary.
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0], vec!["1", "5", "-"]);
        assert_eq!(t.rows[1], vec!["2..3", "-", "2"]);
        assert_eq!(t.rows[2], vec!["8..15", "1", "-"]);
        assert!(t.rows[3][0].starts_with("n / mean"));
        assert!(t.rows[3][1].starts_with("6 / "));
    }

    #[test]
    fn leak_matrix_formats_clean_and_leaky_cells() {
        let t = leak_matrix_table(
            "Table 4",
            &["commit-timing", "cache-line"],
            &[
                ("unsafe".into(), "must leak".into(), vec![(61, 64), (64, 64)]),
                ("levioso".into(), "must be clean".into(), vec![(0, 64), (0, 64)]),
            ],
        );
        assert_eq!(t.headers, vec!["scheme", "gate role", "commit-timing", "cache-line"]);
        assert_eq!(t.rows[0], vec!["unsafe", "must leak", "LEAK 61/64", "LEAK 64/64"]);
        assert_eq!(t.rows[1], vec!["levioso", "must be clean", "clean", "clean"]);
    }

    #[test]
    #[should_panic]
    fn leak_matrix_rejects_ragged_observer_counts() {
        let _ = leak_matrix_table(
            "Table 4",
            &["commit-timing", "cache-line"],
            &[("unsafe".into(), "must leak".into(), vec![(1, 64)])],
        );
    }

    #[test]
    fn figure_round_trips_through_json() {
        let mut f = Figure::new("F2", "slowdown");
        f.push_series("levioso", vec![("w1".into(), 1.2), ("w2".into(), 1.1)]);
        f.push_series("esc \"quoted\"", vec![("w1".into(), -0.5)]);
        let j = f.to_json();
        let back = Figure::from_json(&j).unwrap();
        assert_eq!(back, f);
        assert!(f.render().contains("levioso"));
    }

    #[test]
    fn figure_from_json_rejects_malformed_documents() {
        assert!(Figure::from_json("[]").is_err());
        assert!(Figure::from_json("{\"title\": \"t\"}").is_err());
        let e = Figure::from_json("{oops").unwrap_err();
        assert!(e.to_string().contains("JSON error"));
    }
}
