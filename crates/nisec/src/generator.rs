//! Secret-aware random program generation.
//!
//! Extends the seeded generator shape from `crates/uarch/tests/differential.rs`
//! with *speculative-leak gadgets*: blocks whose secret load is architecturally
//! dead (guarded by a branch that always skips it) but transiently reachable
//! under misprediction. Around the gadgets sit blocks of ordinary public
//! compute, so the secret-dependent events a leaky scheme produces are buried
//! in realistic pipeline noise rather than sitting alone in a toy trace.
//!
//! # Low-equivalence discipline
//!
//! A generated [`SecretProgram`] fixes everything *public*: the instruction
//! stream, the initial values of every public memory word, and the initial
//! public registers. Only the words at [`SecretProgram::secret_addrs`] differ
//! between the two runs of a pair. Two structural invariants make the pair
//! *low-equivalent* in the Guarnieri sense (identical public projection of the
//! initial state, secrets architecturally dead):
//!
//! * **Register partition** — public ops use only `a0..a7`/`t0..t2` (plus the
//!   `gp` pool base); gadgets use only `s2..s7`. No secret value can reach a
//!   public address or branch operand, even transiently.
//! * **Architecturally dead secrets** — each gadget's guard branch compares a
//!   chased value that is always `0`, so the architectural path always skips
//!   the secret load. The secret is only ever read on a mispredicted path.
//!   [`assert_pair_low_equivalent`] checks the consequence on the sequential
//!   reference machine: final register files and public memory agree exactly
//!   across the pair.
//!
//! The second invariant is also what lets STT pass the gate: STT only blocks
//! *speculatively accessed* data, so the secrets must never be loaded
//! architecturally.

use levioso_isa::reg::{GP, ZERO};
use levioso_isa::{AluOp, BranchCond, Instr, Machine, MemWidth, Program, Reg};
use levioso_support::Rng;

/// Base of the public scratch pool addressed off `gp` (same convention as the
/// differential generator).
pub const POOL_BASE: i64 = 0x1000;
/// Number of 8-byte words in the public pool.
pub const POOL_WORDS: usize = 40;
/// Base of the probe oracle: [`ORACLE_LINES`] cache lines that the transient
/// transmit indexes by secret and the architectural probes sweep afterwards.
pub const ORACLE_BASE: i64 = 0x2000;
/// Number of oracle lines (the transmit uses `secret & (ORACLE_LINES - 1)`).
pub const ORACLE_LINES: usize = 8;
/// Base of the secret region: one 8-byte cell per gadget, 64 bytes apart so
/// each secret owns a cache line.
pub const SECRET_BASE: i64 = 0x8000;
/// Base of the pointer-chase region: two cells per gadget, used to keep each
/// gadget's guard branch unresolved for two serialized DRAM misses.
pub const CHASE_BASE: i64 = 0x4_0000;

/// Cache line size assumed by the gadget shape (matches `CoreConfig`).
const LINE: i64 = 64;

/// A generated program with its public initial state and the location of its
/// architecturally-dead secrets.
#[derive(Debug, Clone)]
pub struct SecretProgram {
    /// The instruction stream (un-annotated; callers run
    /// `Scheme::prepare` per scheme to attach real compiler annotations).
    pub program: Program,
    /// Public memory initialization, identical across both runs of a pair.
    pub public_mem: Vec<(u64, i64)>,
    /// Public register initialization, identical across both runs of a pair.
    pub reg_init: Vec<(Reg, i64)>,
    /// Address of each gadget's secret cell (the *only* state allowed to
    /// differ between the two runs of a pair).
    pub secret_addrs: Vec<u64>,
}

/// Public-register helper: `a0..a7` or `t0..t2`, never an `s` register.
fn public_reg<R: Rng>(rng: &mut R) -> Reg {
    if rng.bool_any() {
        Reg::new(rng.u8_in(10..18))
    } else {
        Reg::new(rng.u8_in(5..8))
    }
}

const WIDTHS: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];
const ALU: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Xor,
    AluOp::And,
    AluOp::Or,
    AluOp::Mul,
    AluOp::Sltu,
    AluOp::Sra,
];
const BRANCH: [BranchCond; 3] = [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt];

/// One public op (the differential-test mix, restricted to public registers
/// and the public pool).
#[derive(Debug, Clone)]
enum Op {
    Alu(AluOp, Reg, Reg, Reg),
    Imm(AluOp, Reg, Reg, i64),
    Load(MemWidth, bool, Reg, i64),
    Store(MemWidth, Reg, i64),
    FwdBranch(BranchCond, Reg, Reg, u8),
}

fn arb_op<R: Rng>(rng: &mut R) -> Op {
    match rng.weighted(&[3, 2, 3, 3, 3]) {
        0 => Op::Alu(*rng.pick(&ALU), public_reg(rng), public_reg(rng), public_reg(rng)),
        1 => Op::Imm(*rng.pick(&ALU), public_reg(rng), public_reg(rng), rng.i64_in(-64..64)),
        2 => Op::Load(
            *rng.pick(&WIDTHS),
            rng.bool_any(),
            public_reg(rng),
            rng.i64_in(0..(POOL_WORDS as i64 * 8 - 8)),
        ),
        3 => Op::Store(
            *rng.pick(&WIDTHS),
            public_reg(rng),
            rng.i64_in(0..(POOL_WORDS as i64 * 8 - 8)),
        ),
        _ => Op::FwdBranch(*rng.pick(&BRANCH), public_reg(rng), public_reg(rng), rng.u8_in(1..6)),
    }
}

/// Emits a public block. Forward branches are clamped to the end of *this*
/// block so no architectural public branch targets a gadget interior.
fn emit_public_block(instrs: &mut Vec<Instr>, ops: &[Op]) {
    let base = instrs.len() as u32;
    let n = ops.len() as u32;
    for (k, op) in ops.iter().enumerate() {
        let at = base + k as u32;
        instrs.push(match *op {
            Op::Alu(op, rd, rs1, rs2) => Instr::Alu { op, rd, rs1, rs2 },
            Op::Imm(op, rd, rs1, imm) => Instr::AluImm { op, rd, rs1, imm },
            Op::Load(width, signed, rd, offset) => {
                Instr::Load { width, signed, rd, base: GP, offset }
            }
            Op::Store(width, src, offset) => Instr::Store { width, src, base: GP, offset },
            Op::FwdBranch(cond, rs1, rs2, skip) => {
                Instr::Branch { cond, rs1, rs2, target: (at + 1 + skip as u32).min(base + n) }
            }
        });
    }
}

/// Emits gadget `i`: a guard branch kept unresolved by a two-deep cold
/// pointer chase (~2× DRAM latency), an architecturally-dead transient body
/// that loads the secret and transmits `secret & (ORACLE_LINES-1)` into the
/// oracle, and a serialized architectural probe sweep over the oracle lines.
///
/// The chase cells hold `mem[c] = c + 64`, `mem[c + 64] = 0`, so the guard
/// `beq s2, zero` is *always* architecturally taken (skipping the body) while
/// the cold gshare counters predict it not-taken — the body only ever
/// executes transiently. The probe sweep interleaves `rdcycle` serializers
/// between the oracle loads so a warm line at a secret-dependent position
/// shifts every later probe's commit cycle (this is what makes the unsafe
/// baseline visibly leaky even to the commit-timing observer).
fn emit_gadget(instrs: &mut Vec<Instr>, i: usize) {
    let (s2, s3, s4, s5, s6, s7) =
        (Reg::new(18), Reg::new(19), Reg::new(20), Reg::new(21), Reg::new(22), Reg::new(23));
    let chase = CHASE_BASE + i as i64 * 2 * LINE;
    let secret = SECRET_BASE + i as i64 * LINE;

    instrs.push(Instr::AluImm { op: AluOp::Add, rd: s2, rs1: ZERO, imm: chase });
    let ld = |rd: Reg, base: Reg, offset: i64| Instr::Load {
        width: MemWidth::D,
        signed: true,
        rd,
        base,
        offset,
    };
    instrs.push(ld(s2, s2, 0));
    instrs.push(ld(s2, s2, 0));
    instrs.push(Instr::AluImm { op: AluOp::Add, rd: s3, rs1: ZERO, imm: secret });
    instrs.push(Instr::AluImm { op: AluOp::Add, rd: s6, rs1: ZERO, imm: ORACLE_BASE });
    // Guard: architecturally always taken (s2 chased to 0), predicted
    // not-taken while cold. Skips the 5-instruction transient body.
    let guard_at = instrs.len() as u32;
    instrs.push(Instr::Branch { cond: BranchCond::Eq, rs1: s2, rs2: ZERO, target: guard_at + 6 });
    instrs.push(ld(s4, s3, 0));
    instrs.push(Instr::AluImm { op: AluOp::And, rd: s5, rs1: s4, imm: ORACLE_LINES as i64 - 1 });
    instrs.push(Instr::AluImm { op: AluOp::Sll, rd: s5, rs1: s5, imm: 6 });
    instrs.push(Instr::Alu { op: AluOp::Add, rd: s5, rs1: s5, rs2: s6 });
    instrs.push(ld(s7, s5, 0));
    // Architectural probe sweep, serialized with rdcycle.
    for line in 0..ORACLE_LINES as i64 {
        instrs.push(ld(s7, s6, line * LINE));
        instrs.push(Instr::RdCycle { rd: s7 });
    }
}

/// Generates one secret-aware program: alternating public blocks and 1–2
/// leak gadgets, plus the public initial state the pair shares.
pub fn gen_program<R: Rng>(rng: &mut R) -> SecretProgram {
    let n_gadgets = rng.usize_in(1..3);

    let mut instrs = vec![Instr::AluImm { op: AluOp::Add, rd: GP, rs1: ZERO, imm: POOL_BASE }];
    for i in 0..n_gadgets {
        let ops: Vec<Op> = (0..rng.usize_in(4..16)).map(|_| arb_op(rng)).collect();
        emit_public_block(&mut instrs, &ops);
        emit_gadget(&mut instrs, i);
    }
    let ops: Vec<Op> = (0..rng.usize_in(4..16)).map(|_| arb_op(rng)).collect();
    emit_public_block(&mut instrs, &ops);
    instrs.push(Instr::Halt);

    let mut public_mem = Vec::new();
    for w in 0..POOL_WORDS {
        public_mem.push(((POOL_BASE + w as i64 * 8) as u64, rng.i64_in(-1 << 20..1 << 20)));
    }
    for i in 0..n_gadgets {
        let chase = CHASE_BASE + i as i64 * 2 * LINE;
        public_mem.push((chase as u64, chase + LINE));
        public_mem.push(((chase + LINE) as u64, 0));
    }

    let reg_init: Vec<(Reg, i64)> =
        (10..18).map(|r| (Reg::new(r), rng.i64_in(-1 << 16..1 << 16))).collect();

    let secret_addrs = (0..n_gadgets).map(|i| (SECRET_BASE + i as i64 * LINE) as u64).collect();

    SecretProgram { program: Program::new("nisec", instrs), public_mem, reg_init, secret_addrs }
}

/// Draws one secret pair per gadget. The two values always select different
/// oracle lines (`a & 7 != b & 7`), so a scheme that lets the transient
/// transmit land is guaranteed to produce distinguishable cache states.
pub fn gen_secret_pair<R: Rng>(rng: &mut R, n_gadgets: usize) -> Vec<(i64, i64)> {
    (0..n_gadgets)
        .map(|_| {
            let a = rng.i64_in(0..256);
            let mask = ORACLE_LINES as i64 - 1;
            let b = loop {
                let b = rng.i64_in(0..256);
                if b & mask != a & mask {
                    break b;
                }
            };
            (a, b)
        })
        .collect()
}

/// Seeds a sequential reference [`Machine`] with the program's public state
/// and the given per-gadget secrets.
fn seeded_machine(sp: &SecretProgram, secrets: &[i64]) -> Machine {
    let mut m = Machine::new();
    for &(addr, v) in &sp.public_mem {
        m.mem.write_i64(addr, v);
    }
    for (&addr, &s) in sp.secret_addrs.iter().zip(secrets) {
        m.mem.write_i64(addr, s);
    }
    for &(r, v) in &sp.reg_init {
        m.set_reg(r, v);
    }
    m
}

/// Checks the low-equivalence consequence on the sequential reference
/// machine: running both members of the pair architecturally must yield
/// identical final register files and identical public memory, because the
/// secrets are architecturally dead.
///
/// # Panics
///
/// Panics (with the program listing) if either run fails or any public
/// state diverges — that would mean the generator produced a program whose
/// secret is architecturally live, which would invalidate every verdict the
/// harness reports for it.
pub fn assert_pair_low_equivalent(sp: &SecretProgram, pair: &[(i64, i64)]) {
    let a: Vec<i64> = pair.iter().map(|&(a, _)| a).collect();
    let b: Vec<i64> = pair.iter().map(|&(_, b)| b).collect();
    let mut ma = seeded_machine(sp, &a);
    let mut mb = seeded_machine(sp, &b);
    ma.run(&sp.program, 1_000_000).expect("secret run A diverged architecturally");
    mb.run(&sp.program, 1_000_000).expect("secret run B diverged architecturally");
    assert_eq!(
        ma.regs(),
        mb.regs(),
        "final register file differs across a low-equivalent pair:\n{}",
        sp.program.to_asm_string()
    );
    for &(addr, _) in &sp.public_mem {
        assert_eq!(
            ma.mem.read_i64(addr),
            mb.mem.read_i64(addr),
            "public word {addr:#x} differs across a low-equivalent pair"
        );
    }
}
