//! The two-run noninterference fuzzing driver and its leak gate.
//!
//! For every (program, secret-pair, scheme) cell the driver runs the
//! simulator twice — identical public state, differing secrets — records the
//! full pipeline event stream with a [`Recorder`], projects it through every
//! [`Observer`], and diffs the projections. A divergence is a leak for that
//! observer's contract.
//!
//! The gate enforces two properties at once:
//!
//! * **non-vacuity** — the unsafe baseline must be flagged leaky on at least
//!   one cell for *every* observer; a gate that cannot catch the known-leaky
//!   scheme proves nothing when the secure schemes come back green.
//! * **cleanliness** — every delaying scheme in [`ENFORCED_CLEAN`] must show
//!   zero divergences on every cell and every observer.

use crate::cellcache;
use crate::generator::{gen_program, gen_secret_pair, SecretProgram};
use crate::observer::{diff, Divergence, Observer, Recorder};
use levioso_core::Scheme;
use levioso_stats::{leak_matrix_table, Table};
use levioso_support::{Json, Pool, Xoshiro256pp};
use levioso_uarch::{CoreConfig, Simulator};
use std::time::Instant;

/// Default master seed for the fuzzing campaign (distinct from the bench
/// sweep seed so the two corpora are uncorrelated).
pub const DEFAULT_SEED: u64 = 0x1e71_0600_5eed_2024;

/// Schemes the gate requires to be observation-clean on every cell. The two
/// remaining members of `Scheme::ALL` are informational: `delay-on-miss`
/// (expected clean here — the secret line is never architecturally warm, so
/// its hit-only transient load never returns data) and `levioso-ctrl-only`
/// (the known-unsound ablation).
pub const ENFORCED_CLEAN: [Scheme; 6] = [
    Scheme::Fence,
    Scheme::Stt,
    Scheme::CommitDelay,
    Scheme::ExecuteDelay,
    Scheme::Levioso,
    Scheme::LeviosoStatic,
];

/// Fuzzing campaign shape.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of generated programs.
    pub programs: usize,
    /// Secret pairs drawn per program (cells = `programs × pairs_per_program`).
    pub pairs_per_program: usize,
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Worker threads (`0` = honor `LEVIOSO_THREADS`, default all cores).
    pub threads: usize,
}

impl FuzzConfig {
    /// Smoke tier: 16 programs × 4 pairs = 64 cells per scheme.
    pub fn smoke(threads: usize) -> Self {
        FuzzConfig { programs: 16, pairs_per_program: 4, seed: DEFAULT_SEED, threads }
    }

    /// Paper tier: 48 programs × 4 pairs = 192 cells per scheme.
    pub fn paper(threads: usize) -> Self {
        FuzzConfig { programs: 48, pairs_per_program: 4, seed: DEFAULT_SEED, threads }
    }

    /// Total cells per scheme.
    pub fn cells(&self) -> usize {
        self.programs * self.pairs_per_program
    }
}

/// Verdicts for one (program, pair, scheme) cell: one optional divergence
/// per observer, in `Observer::ALL` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Scheme run in this cell.
    pub scheme: Scheme,
    /// Program index within the campaign.
    pub program: usize,
    /// Pair index within the program.
    pub pair: usize,
    /// First divergence per observer (`Observer::ALL` order), `None` = clean.
    pub diverged: Vec<Option<Divergence>>,
}

/// The full campaign result: every cell verdict plus the gate logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Schemes fuzzed, in run order.
    pub schemes: Vec<Scheme>,
    /// Cells per scheme.
    pub cells: usize,
    /// Master seed the campaign derived from.
    pub seed: u64,
    /// Per-cell verdicts (cell-major, scheme-minor — deterministic order).
    pub results: Vec<CellResult>,
}

/// Runs both members of one pair under one scheme and returns the two
/// recorded event streams.
fn record_pair(
    sp: &SecretProgram,
    secrets: &[(i64, i64)],
    scheme: Scheme,
) -> [Vec<crate::observer::Ev>; 2] {
    [0usize, 1].map(|side| {
        let mut program = sp.program.clone();
        scheme.prepare(&mut program);
        let mut sim = Simulator::new(&program, CoreConfig::default());
        for &(addr, v) in &sp.public_mem {
            sim.mem.write_i64(addr, v);
        }
        for (&addr, &(a, b)) in sp.secret_addrs.iter().zip(secrets) {
            sim.mem.write_i64(addr, if side == 0 { a } else { b });
        }
        for &(r, v) in &sp.reg_init {
            sim.set_reg(r, v);
        }
        sim.attach_tracer(Box::new(Recorder::default()));
        sim.run(scheme.policy().as_ref()).unwrap_or_else(|e| {
            panic!("{} diverged on fuzzed program: {e}\n{}", scheme.name(), program.to_asm_string())
        });
        sim.take_tracer()
            .expect("tracer attached above")
            .into_any()
            .downcast::<Recorder>()
            .expect("recorder downcast")
            .events
    })
}

/// Runs the fuzzing campaign: `config.cells()` cells × `schemes`, two
/// simulations per cell, diffed under every observer.
///
/// Determinism: program and secret-pair generation consume per-program RNG
/// streams split from the master seed *in order, before any worker runs*,
/// and the job list has a fixed order that [`Pool::run_with_costs`]
/// preserves in its results — so the report is identical at any thread
/// count. Cell verdicts are replayed from the [`cellcache`] when a
/// persisted cell matches the generated inputs; divergences round-trip
/// exactly, so warm, cold, and mixed cache campaigns are byte-identical.
pub fn fuzz(config: &FuzzConfig, schemes: &[Scheme]) -> FuzzReport {
    /// A generated program plus its secret pairs (one `Vec<(a, b)>` per pair
    /// index, one `(a, b)` per gadget).
    type CorpusEntry = (SecretProgram, Vec<Vec<(i64, i64)>>);
    let mut master = Xoshiro256pp::seed_from_u64(config.seed);
    let corpus: Vec<CorpusEntry> = (0..config.programs)
        .map(|_| {
            let mut rng = master.split();
            let sp = gen_program(&mut rng);
            let pairs = (0..config.pairs_per_program)
                .map(|_| gen_secret_pair(&mut rng, sp.secret_addrs.len()))
                .collect();
            (sp, pairs)
        })
        .collect();

    let mut jobs: Vec<(usize, usize, Scheme)> = Vec::new();
    for p in 0..config.programs {
        for pair in 0..config.pairs_per_program {
            for &scheme in schemes {
                jobs.push((p, pair, scheme));
            }
        }
    }

    let core = CoreConfig::default();
    let keys: Vec<String> = jobs
        .iter()
        .map(|&(p, pair, scheme)| {
            let (sp, pairs) = &corpus[p];
            cellcache::cell_key(sp, &pairs[pair], scheme.name(), &core)
        })
        .collect();
    let costs: Vec<u64> = keys
        .iter()
        .map(|key| {
            cellcache::with(|c| c.estimate_cost(key)).unwrap_or(levioso_support::pool::UNKNOWN_COST)
        })
        .collect();

    let pool = if config.threads == 0 { Pool::from_env() } else { Pool::new(config.threads) };
    let results = pool.run_with_costs(&jobs, &costs, |i, &(p, pair, scheme)| {
        let label = cellcache::cell_label(scheme.name(), p, pair);
        if let Some(diverged) = cellcache::with(|c| c.lookup(&label, &keys[i]))
            .and_then(|doc| cellcache::diverged_from_json(&doc))
        {
            return CellResult { scheme, program: p, pair, diverged };
        }
        let started = Instant::now();
        let (sp, pairs) = &corpus[p];
        let [a, b] = record_pair(sp, &pairs[pair], scheme);
        let diverged: Vec<Option<Divergence>> =
            Observer::ALL.iter().map(|&o| diff(o, &a, &b)).collect();
        cellcache::with(|c| {
            c.store(
                &label,
                &keys[i],
                &cellcache::diverged_to_json(&diverged),
                started.elapsed().as_nanos() as u64,
            )
        });
        CellResult { scheme, program: p, pair, diverged }
    });

    FuzzReport { schemes: schemes.to_vec(), cells: config.cells(), seed: config.seed, results }
}

impl FuzzReport {
    /// Number of leaky cells for a scheme under one observer.
    pub fn leaks(&self, scheme: Scheme, observer: Observer) -> usize {
        let oi = Observer::ALL.iter().position(|&o| o == observer).expect("known observer");
        self.results.iter().filter(|c| c.scheme == scheme && c.diverged[oi].is_some()).count()
    }

    /// The first leaky cell for a scheme under one observer, if any.
    pub fn first_leak(&self, scheme: Scheme, observer: Observer) -> Option<&CellResult> {
        let oi = Observer::ALL.iter().position(|&o| o == observer).expect("known observer");
        self.results.iter().find(|c| c.scheme == scheme && c.diverged[oi].is_some())
    }

    /// Gate role of a scheme in this report (rendered in the table).
    fn role(scheme: Scheme) -> &'static str {
        if scheme == Scheme::Unsafe {
            "must leak (vacuity check)"
        } else if ENFORCED_CLEAN.contains(&scheme) {
            "must be clean"
        } else {
            "informational"
        }
    }

    /// Every gate violation, rendered as one line each. Empty = gate green.
    ///
    /// Violations are (a) *vacuity*: the unsafe baseline came back clean
    /// under some observer, i.e. the campaign could not have caught a leak
    /// there; (b) *leak*: an [`ENFORCED_CLEAN`] scheme diverged anywhere.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut fails = Vec::new();
        for &observer in &Observer::ALL {
            if self.schemes.contains(&Scheme::Unsafe) && self.leaks(Scheme::Unsafe, observer) == 0 {
                fails.push(format!(
                    "vacuity: unsafe baseline clean under the {observer} observer across all {} \
                     cells — this gate could not catch a real leak",
                    self.cells
                ));
            }
            for &scheme in &ENFORCED_CLEAN {
                if !self.schemes.contains(&scheme) {
                    continue;
                }
                let n = self.leaks(scheme, observer);
                if n > 0 {
                    let cell = self.first_leak(scheme, observer).expect("n > 0");
                    let oi = Observer::ALL.iter().position(|&o| o == observer).expect("known");
                    fails.push(format!(
                        "leak: {} diverged on {n}/{} cells under the {observer} observer; first \
                         at program {} pair {}: {}",
                        scheme.name(),
                        self.cells,
                        cell.program,
                        cell.pair,
                        cell.diverged[oi].as_ref().expect("leaky cell")
                    ));
                }
            }
        }
        fails
    }

    /// The leak matrix as a [`Table`] (one row per scheme, one column per
    /// observer).
    pub fn table(&self) -> Table {
        let observers: Vec<&str> = Observer::ALL.iter().map(|o| o.name()).collect();
        let rows: Vec<levioso_stats::LeakMatrixRow> = self
            .schemes
            .iter()
            .map(|&s| {
                (
                    s.name().to_string(),
                    Self::role(s).to_string(),
                    Observer::ALL.iter().map(|&o| (self.leaks(s, o), self.cells)).collect(),
                )
            })
            .collect();
        leak_matrix_table(
            format!("Table 4: two-run noninterference fuzz, {} cells/scheme", self.cells),
            &observers,
            &rows,
        )
    }

    /// Renders the report: the leak matrix, the unsafe baseline's first
    /// divergence per observer (proof the reporting pipeline works), and the
    /// gate verdict.
    pub fn render(&self) -> String {
        let mut out = self.table().render();
        if self.schemes.contains(&Scheme::Unsafe) {
            for &observer in &Observer::ALL {
                if let Some(cell) = self.first_leak(Scheme::Unsafe, observer) {
                    let oi = Observer::ALL.iter().position(|&o| o == observer).expect("known");
                    out.push_str(&format!(
                        "\nunsafe / {observer}: first divergence at program {} pair {}: {}\n",
                        cell.program,
                        cell.pair,
                        cell.diverged[oi].as_ref().expect("leaky cell")
                    ));
                }
            }
        }
        let fails = self.gate_failures();
        if fails.is_empty() {
            out.push_str("\ngate: PASS (unsafe non-vacuous, all delaying schemes clean)\n");
        } else {
            out.push_str("\ngate: FAIL\n");
            for f in &fails {
                out.push_str(&format!("  {f}\n"));
            }
        }
        out
    }

    /// JSON summary (leak counts per scheme × observer, plus the seed).
    pub fn to_json(&self) -> String {
        let schemes = self
            .schemes
            .iter()
            .map(|&s| {
                Json::obj([
                    ("scheme", Json::str(s.name())),
                    ("role", Json::str(Self::role(s))),
                    (
                        "leaks",
                        Json::obj(
                            Observer::ALL
                                .iter()
                                .map(|&o| (o.name(), Json::I64(self.leaks(s, o) as i64))),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("experiment", Json::str("table4_noninterference")),
            ("seed", Json::str(format!("{:#x}", self.seed))),
            ("cells_per_scheme", Json::I64(self.cells as i64)),
            ("gate_failures", Json::Arr(self.gate_failures().into_iter().map(Json::Str).collect())),
            ("schemes", Json::Arr(schemes)),
        ])
        .emit_pretty()
    }
}
