//! Contract observers over the [`TraceSink`] event stream.
//!
//! Following the hardware-software-contracts taxonomy (Guarnieri et al.),
//! each observer is a *projection* of one recorded pipeline event stream;
//! noninterference for an observer means the projections of two
//! low-equivalent runs are identical. Three observers are provided, ordered
//! from coarse to fine:
//!
//! * [`Observer::CommitTiming`] — the committed-instruction stream with
//!   cycle timestamps: what an architectural attacker with a cycle counter
//!   sees (the `ct` contract — timing included, or it could not catch cache
//!   interference from a transient transmit).
//! * [`Observer::CacheLine`] — the sequence of cache-line addresses filled
//!   or flushed by demand accesses plus committed-store lines, *without*
//!   timestamps: the classic cache-attacker observation.
//! * [`Observer::FullTrace`] — every recorded pipeline event: fetches,
//!   issues, policy blocks, squashes, commits, with cycles and addresses.
//!   The strongest (finest) observer; anything leaky under the other two is
//!   leaky here.
//!
//! Events deliberately record **no data values**. Under a *secure* delaying
//! scheme the wrong-path register file legitimately holds secret-dependent
//! values (the secret load may execute; only its *transmission* is blocked),
//! so an observer that recorded results would flag every scheme as leaky and
//! the gate would be vacuously red. Addresses, PCs, cycles, and blame rules
//! are exactly the signals a microarchitectural attacker can sample.

use levioso_uarch::trace::{Blame, TraceSink};
use levioso_uarch::{DynInstr, Seq};
use std::any::Any;

/// Cache line size used for address coarsening (matches `CoreConfig`).
const LINE_MASK: u64 = !63;

/// One recorded pipeline event (data values intentionally absent; see the
/// module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// Instruction fetched.
    Fetch {
        /// Cycle of the fetch.
        cycle: u64,
        /// Program counter fetched.
        pc: u32,
    },
    /// Instruction renamed into the ROB.
    Dispatch {
        /// Cycle of the dispatch.
        cycle: u64,
        /// Dynamic sequence number.
        seq: Seq,
        /// Program counter.
        pc: u32,
    },
    /// Instruction issued to a functional unit.
    Issue {
        /// Cycle of the issue.
        cycle: u64,
        /// Dynamic sequence number.
        seq: Seq,
        /// Program counter.
        pc: u32,
        /// Effective address, for memory instructions.
        addr: Option<u64>,
        /// Whether the access changed cache state (demand access or flush;
        /// hit-only invisible accesses are excluded by the core).
        touched_cache: bool,
        /// Whether the access *filled* a line (L1 miss) or flushed one —
        /// i.e. changed cache *content*, not just replacement state. This is
        /// what the cache-line observer watches.
        filled: bool,
    },
    /// The speculation policy delayed an otherwise-ready instruction.
    Block {
        /// Cycle of the blocked issue attempt.
        cycle: u64,
        /// Dynamic sequence number.
        seq: Seq,
        /// Program counter.
        pc: u32,
        /// Delay-attribution rule that fired.
        rule: &'static str,
    },
    /// A load was served by store-to-load forwarding.
    Forward {
        /// Cycle of the forward.
        cycle: u64,
        /// Load's sequence number.
        seq: Seq,
        /// Supplying store's sequence number.
        store_seq: Seq,
    },
    /// A control instruction resolved.
    Resolve {
        /// Cycle of the resolution.
        cycle: u64,
        /// Dynamic sequence number.
        seq: Seq,
        /// Program counter.
        pc: u32,
        /// Whether the prediction was wrong.
        mispredicted: bool,
    },
    /// An in-flight instruction was squashed.
    Squash {
        /// Cycle of the squash.
        cycle: u64,
        /// Squashed sequence number.
        seq: Seq,
        /// Squashed program counter.
        pc: u32,
    },
    /// Instruction wrote back its result.
    Writeback {
        /// Cycle of the writeback.
        cycle: u64,
        /// Dynamic sequence number.
        seq: Seq,
        /// Program counter.
        pc: u32,
    },
    /// Instruction committed architecturally.
    Commit {
        /// Cycle of the commit.
        cycle: u64,
        /// Dynamic sequence number.
        seq: Seq,
        /// Program counter.
        pc: u32,
        /// Cache line written, for committed stores.
        store_line: Option<u64>,
    },
}

impl std::fmt::Display for Ev {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Ev::Fetch { cycle, pc } => write!(f, "@{cycle} fetch pc={pc}"),
            Ev::Dispatch { cycle, seq, pc } => write!(f, "@{cycle} dispatch #{seq} pc={pc}"),
            Ev::Issue { cycle, seq, pc, addr, touched_cache, filled } => {
                write!(f, "@{cycle} issue #{seq} pc={pc}")?;
                if let Some(a) = addr {
                    write!(f, " addr={a:#x}")?;
                }
                if touched_cache {
                    write!(f, " [cache]")?;
                }
                if filled {
                    write!(f, " [fill]")?;
                }
                Ok(())
            }
            Ev::Block { cycle, seq, pc, rule } => {
                write!(f, "@{cycle} block #{seq} pc={pc} rule={rule}")
            }
            Ev::Forward { cycle, seq, store_seq } => {
                write!(f, "@{cycle} forward #{seq} from store #{store_seq}")
            }
            Ev::Resolve { cycle, seq, pc, mispredicted } => {
                write!(f, "@{cycle} resolve #{seq} pc={pc} mispredicted={mispredicted}")
            }
            Ev::Squash { cycle, seq, pc } => write!(f, "@{cycle} squash #{seq} pc={pc}"),
            Ev::Writeback { cycle, seq, pc } => write!(f, "@{cycle} writeback #{seq} pc={pc}"),
            Ev::Commit { cycle, seq, pc, store_line } => {
                write!(f, "@{cycle} commit #{seq} pc={pc}")?;
                if let Some(l) = store_line {
                    write!(f, " store-line={l:#x}")?;
                }
                Ok(())
            }
        }
    }
}

/// A [`TraceSink`] that records the full event stream for later projection.
#[derive(Debug, Default)]
pub struct Recorder {
    /// The recorded events, in hook-firing order.
    pub events: Vec<Ev>,
}

impl TraceSink for Recorder {
    fn on_fetch(&mut self, cycle: u64, pc: u32, _instr: &levioso_isa::Instr) {
        self.events.push(Ev::Fetch { cycle, pc });
    }

    fn on_dispatch(&mut self, cycle: u64, instr: &DynInstr) {
        self.events.push(Ev::Dispatch { cycle, seq: instr.seq, pc: instr.pc });
    }

    fn on_issue(&mut self, cycle: u64, instr: &DynInstr) {
        self.events.push(Ev::Issue {
            cycle,
            seq: instr.seq,
            pc: instr.pc,
            addr: instr.mem_addr,
            touched_cache: instr.touched_cache,
            filled: instr.holds_mshr || matches!(instr.instr, levioso_isa::Instr::Flush { .. }),
        });
    }

    fn on_policy_block(&mut self, cycle: u64, instr: &DynInstr, blame: &Blame) {
        self.events.push(Ev::Block { cycle, seq: instr.seq, pc: instr.pc, rule: blame.rule });
    }

    fn on_forward(&mut self, cycle: u64, instr: &DynInstr, store_seq: Seq) {
        self.events.push(Ev::Forward { cycle, seq: instr.seq, store_seq });
    }

    fn on_resolve(&mut self, cycle: u64, instr: &DynInstr, mispredicted: bool) {
        self.events.push(Ev::Resolve { cycle, seq: instr.seq, pc: instr.pc, mispredicted });
    }

    fn on_squash(&mut self, cycle: u64, seq: Seq, pc: u32) {
        self.events.push(Ev::Squash { cycle, seq, pc });
    }

    fn on_writeback(&mut self, cycle: u64, instr: &DynInstr) {
        self.events.push(Ev::Writeback { cycle, seq: instr.seq, pc: instr.pc });
    }

    fn on_commit(&mut self, cycle: u64, instr: &DynInstr) {
        let store_line =
            if instr.instr.is_store() { instr.mem_addr.map(|a| a & LINE_MASK) } else { None };
        self.events.push(Ev::Commit { cycle, seq: instr.seq, pc: instr.pc, store_line });
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// One observation contract: a projection of the recorded event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observer {
    /// Committed (pc, cycle) pairs — the architectural+timing contract.
    CommitTiming,
    /// Cache-line addresses of fills/flushes and committed stores, no
    /// timestamps — the cache-attacker contract.
    CacheLine,
    /// Every recorded event — the finest contract.
    FullTrace,
}

impl Observer {
    /// All observers, coarse to fine (fixed order used by reports).
    pub const ALL: [Observer; 3] =
        [Observer::CommitTiming, Observer::CacheLine, Observer::FullTrace];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Observer::CommitTiming => "commit-timing",
            Observer::CacheLine => "cache-line",
            Observer::FullTrace => "full-trace",
        }
    }
}

impl std::fmt::Display for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One projected observation: the compared key plus the index of its source
/// event in the full stream (context only — never part of equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Obs {
    /// The value two runs must agree on.
    pub key: ObsKey,
    /// Index of the source event in the recorder's stream.
    pub src: usize,
}

/// The compared portion of an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKey {
    /// A cache-line address (cache-line observer).
    Line(u64),
    /// A committed pc at a cycle (commit-timing observer).
    Commit {
        /// Committed program counter.
        pc: u32,
        /// Commit cycle.
        cycle: u64,
    },
    /// A verbatim event (full-trace observer).
    Event(Ev),
}

impl std::fmt::Display for ObsKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ObsKey::Line(l) => write!(f, "line {l:#x}"),
            ObsKey::Commit { pc, cycle } => write!(f, "commit pc={pc} @{cycle}"),
            ObsKey::Event(ev) => write!(f, "{ev}"),
        }
    }
}

/// Projects a recorded event stream through an observer.
pub fn project(observer: Observer, events: &[Ev]) -> Vec<Obs> {
    let mut out = Vec::new();
    for (src, &ev) in events.iter().enumerate() {
        let key = match observer {
            Observer::CommitTiming => match ev {
                Ev::Commit { cycle, pc, .. } => Some(ObsKey::Commit { pc, cycle }),
                _ => None,
            },
            Observer::CacheLine => match ev {
                Ev::Issue { addr: Some(a), filled: true, .. } => Some(ObsKey::Line(a & LINE_MASK)),
                Ev::Commit { store_line: Some(l), .. } => Some(ObsKey::Line(l)),
                _ => None,
            },
            Observer::FullTrace => Some(ObsKey::Event(ev)),
        };
        if let Some(key) = key {
            out.push(Obs { key, src });
        }
    }
    out
}

/// The first point where two projected observation streams differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index into the projected streams of the first mismatch.
    pub index: usize,
    /// Rendered observation from run A (`"<end of trace>"` if A is shorter).
    pub a: String,
    /// Rendered observation from run B (`"<end of trace>"` if B is shorter).
    pub b: String,
    /// Delay-attribution rule of the nearest policy-block event preceding
    /// the divergent observation in run A's full stream, if any — the
    /// context the gate reports so a leak can be traced to the rule that
    /// should have (but did not) delay the transmitter. Owned (not
    /// `&'static str`) so divergences round-trip through the persisted
    /// sweep-cell cache.
    pub rule_context: Option<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "obs #{}: A: {} | B: {} | last rule: {}",
            self.index,
            self.a,
            self.b,
            self.rule_context.as_deref().unwrap_or("<none>")
        )
    }
}

/// Diffs two runs under an observer: projects both full streams and returns
/// the first divergent observation, or `None` if the projections agree.
pub fn diff(observer: Observer, a_events: &[Ev], b_events: &[Ev]) -> Option<Divergence> {
    let a = project(observer, a_events);
    let b = project(observer, b_events);
    let end = "<end of trace>".to_string();
    for i in 0..a.len().max(b.len()) {
        let (oa, ob) = (a.get(i), b.get(i));
        if oa.map(|o| o.key) != ob.map(|o| o.key) {
            let src = oa.map(|o| o.src).unwrap_or(a_events.len());
            let rule_context =
                a_events[..src.min(a_events.len())].iter().rev().find_map(|ev| match *ev {
                    Ev::Block { rule, .. } => Some(rule.to_string()),
                    _ => None,
                });
            return Some(Divergence {
                index: i,
                a: oa.map(|o| o.key.to_string()).unwrap_or_else(|| end.clone()),
                b: ob.map(|o| o.key.to_string()).unwrap_or_else(|| end.clone()),
                rule_context,
            });
        }
    }
    None
}
