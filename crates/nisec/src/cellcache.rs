//! The nisec-side binding of the sweep-cell cache.
//!
//! `levioso_bench` keys its perf cells in `levioso_bench::cellcache`; this
//! module does the same for the noninterference fuzz cells so `table4`
//! reuses the one persisted store under `target/sweep-cache/<fingerprint>/`
//! (bench depends on this crate, so the binding must live here — the two
//! modules share the store through `levioso_support::cache`, not through
//! each other). Key namespaces cannot collide: every key's first line names
//! its kind.
//!
//! A nisec cell is `(generated program, secret pair, scheme)` — and unlike
//! perf cells the generated inputs *are* derived from the campaign RNG, so
//! the key embeds the concrete generated artifacts (program text, memory
//! images, register init, secret values), never the seed. Two campaigns
//! that generate the same cell share it; a seed change that changes the
//! inputs misses naturally.
//!
//! The cached payload is the cell's verdict: one optional [`Divergence`]
//! per observer, in `Observer::ALL` order. Divergences round-trip exactly
//! (owned strings), so warm and cold campaigns render byte-identical
//! reports — the same determinism contract the perf sweeps pin.

use crate::generator::SecretProgram;
use crate::observer::{Divergence, Observer};
use levioso_support::cache::{Cache, CacheReport};
use levioso_support::{Json, TieredCache};
use levioso_uarch::{core_fingerprint, CoreConfig};
use std::sync::{OnceLock, RwLock};

/// Version of the nisec cell-key/result layout. Part of every key, so a
/// layout change turns old cells into plain misses instead of parse errors.
const CELL_FORMAT: u32 = 1;

fn handle() -> &'static RwLock<TieredCache> {
    static CACHE: OnceLock<RwLock<TieredCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        // Environment-configured process cache feeds the telemetry
        // registry under `{cache=nisec}`; `configure`d replacements
        // (tests, --no-cache) keep detached counters.
        RwLock::new(TieredCache::plain(Cache::from_env(core_fingerprint())).with_metrics("nisec"))
    })
}

/// Replaces the process-global cache with a plain disk-only store (tests
/// point it at a temp dir or disable it; `--no-cache` installs
/// [`Cache::disabled`]). The serve loop opts into the in-memory hot tier
/// via [`enable_hot_tier`].
pub fn configure(cache: Cache) {
    configure_tiered(TieredCache::plain(cache));
}

/// Replaces the process-global cache with an explicit tier stack.
pub fn configure_tiered(cache: TieredCache) {
    *handle().write().expect("nisec cell cache lock") = cache;
}

/// Layers a process-lifetime in-memory hot tier above the current disk
/// cache (idempotent; keeps an existing tier's resident cells).
pub fn enable_hot_tier() {
    handle().write().expect("nisec cell cache lock").enable_hot_tier();
}

/// Runs `f` against the process-global cache.
pub fn with<R>(f: impl FnOnce(&TieredCache) -> R) -> R {
    f(&handle().read().expect("nisec cell cache lock"))
}

/// Whether the global cache can hit at all.
pub fn enabled() -> bool {
    with(|c| c.enabled())
}

/// Counter snapshot of the global cache.
pub fn report() -> CacheReport {
    with(|c| c.report())
}

/// Zeroes the global cache's counters.
pub fn reset_counters() {
    with(|c| c.reset_counters());
}

/// The cache key of one noninterference cell: everything the two recorded
/// runs depend on — the generated program and initial state, the concrete
/// secret pair, the scheme, the core config, and the observer list the
/// verdict vector is ordered by.
pub fn cell_key(
    sp: &SecretProgram,
    secrets: &[(i64, i64)],
    scheme_name: &str,
    config: &CoreConfig,
) -> String {
    use std::fmt::Write;
    let mut key = String::with_capacity(256);
    let _ = writeln!(key, "levioso-nisec-cell-key/{CELL_FORMAT}");
    let _ = writeln!(key, "kind: noninterference");
    let _ = writeln!(
        key,
        "program: {}",
        levioso_support::cache::stable_hash_hex(sp.program.to_asm_string().as_bytes())
    );
    let mut state = String::new();
    for (addr, val) in &sp.public_mem {
        let _ = writeln!(state, "mem {addr:#x}={val}");
    }
    for (reg, val) in &sp.reg_init {
        let _ = writeln!(state, "reg {reg:?}={val}");
    }
    let _ = writeln!(
        key,
        "public_state: {}",
        levioso_support::cache::stable_hash_hex(state.as_bytes())
    );
    let _ = writeln!(key, "secret_addrs: {:?}", sp.secret_addrs);
    let _ = writeln!(key, "secrets: {secrets:?}");
    let _ = writeln!(key, "scheme: {scheme_name}");
    let _ = writeln!(key, "config: {config:?}");
    let names: Vec<&str> = Observer::ALL.iter().map(|o| o.name()).collect();
    let _ = writeln!(key, "observers: {}", names.join(","));
    key
}

/// The human label recorded for a cell on a miss.
pub fn cell_label(scheme_name: &str, program: usize, pair: usize) -> String {
    format!("t4/{scheme_name}/p{program}.{pair}")
}

/// Serializes one cell verdict — `None` per clean observer, the divergence
/// otherwise, in `Observer::ALL` order.
pub fn diverged_to_json(diverged: &[Option<Divergence>]) -> Json {
    let per_observer = diverged
        .iter()
        .map(|d| match d {
            None => Json::Null,
            Some(d) => Json::obj([
                ("index", Json::I64(i64::try_from(d.index).expect("obs index fits i64"))),
                ("a", Json::str(&d.a)),
                ("b", Json::str(&d.b)),
                ("rule_context", d.rule_context.as_deref().map_or(Json::Null, Json::str)),
            ]),
        })
        .collect();
    Json::obj([("diverged", Json::Arr(per_observer))])
}

/// Exact inverse of [`diverged_to_json`]; `None` on any shape mismatch
/// (wrong observer count included — a stale vector must never be trusted).
pub fn diverged_from_json(doc: &Json) -> Option<Vec<Option<Divergence>>> {
    let arr = doc.get("diverged")?.as_arr()?;
    if arr.len() != Observer::ALL.len() {
        return None;
    }
    arr.iter()
        .map(|entry| match entry {
            Json::Null => Some(None),
            other => {
                let rule_context = match other.get("rule_context")? {
                    Json::Null => None,
                    rule => Some(rule.as_str()?.to_string()),
                };
                Some(Some(Divergence {
                    index: usize::try_from(other.get("index")?.as_i64()?).ok()?,
                    a: other.get("a")?.as_str()?.to_string(),
                    b: other.get("b")?.as_str()?.to_string(),
                    rule_context,
                }))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::gen_program;
    use levioso_support::Xoshiro256pp;

    fn sample_diverged() -> Vec<Option<Divergence>> {
        vec![
            None,
            Some(Divergence {
                index: 4,
                a: "line 0x1c0".to_string(),
                b: "<end of trace>".to_string(),
                rule_context: Some("shadow-load".to_string()),
            }),
            Some(Divergence {
                index: 0,
                a: "@3 fetch pc=0".to_string(),
                b: "@4 fetch pc=0".to_string(),
                rule_context: None,
            }),
        ]
    }

    #[test]
    fn diverged_round_trips_exactly() {
        let d = sample_diverged();
        assert_eq!(diverged_from_json(&diverged_to_json(&d)), Some(d));
        let clean = vec![None, None, None];
        assert_eq!(diverged_from_json(&diverged_to_json(&clean)), Some(clean));
    }

    #[test]
    fn diverged_round_trips_through_emitted_text() {
        let d = sample_diverged();
        let text = diverged_to_json(&d).emit();
        let parsed = Json::parse(&text).expect("emitted JSON parses");
        assert_eq!(diverged_from_json(&parsed), Some(d));
    }

    #[test]
    fn wrong_observer_count_is_rejected() {
        let doc = diverged_to_json(&[None, None]);
        assert_eq!(diverged_from_json(&doc), None);
    }

    #[test]
    fn keys_separate_every_input_dimension() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let sp_a = gen_program(&mut rng);
        let sp_b = gen_program(&mut rng);
        let secrets: Vec<(i64, i64)> = sp_a.secret_addrs.iter().map(|_| (1, 2)).collect();
        let other: Vec<(i64, i64)> = sp_a.secret_addrs.iter().map(|_| (1, 3)).collect();
        let config = CoreConfig::default();
        let key = cell_key(&sp_a, &secrets, "levioso", &config);
        assert_eq!(key, cell_key(&sp_a, &secrets, "levioso", &config), "deterministic");
        assert_ne!(key, cell_key(&sp_b, &secrets, "levioso", &config), "program");
        assert_ne!(key, cell_key(&sp_a, &other, "levioso", &config), "secret pair");
        assert_ne!(key, cell_key(&sp_a, &secrets, "fence", &config), "scheme");
    }
}
