//! Two-run noninterference fuzzing for speculation policies.
//!
//! The security tables in `levioso-attacks` check five hand-built gadgets —
//! valuable as known-answer tests, but a scheme could pass them for the
//! wrong reason. This crate provides the principled complement from the
//! hardware-software-contracts line of work (Guarnieri et al.; ProSpeCT):
//! for a chosen *observer* (contract), run every scheme on randomly
//! generated programs twice — two initial states that agree on everything
//! public and differ only in designated secret memory — and require the two
//! observation streams to be identical. Any divergence is a leak under that
//! contract, reported with the first divergent event and its
//! delay-attribution rule context.
//!
//! The three modules mirror the three moving parts:
//!
//! * [`generator`] — secret-aware random programs with paired low-equivalent
//!   initial states (the differential-test generator extended with
//!   speculative-leak gadgets whose secrets are architecturally dead);
//! * [`observer`] — the contract observers as projections of one recorded
//!   `TraceSink` event stream (commit-timing, cache-line, full-trace);
//! * [`harness`] — the driver, report, and the CI gate's two-sided check:
//!   delaying schemes must be clean *and* the unsafe baseline must be caught
//!   (non-vacuity), so a green gate is evidence rather than absence of
//!   signal.
//!
//! [`cellcache`] binds the campaign to the repo-wide sweep-cell cache
//! (`levioso_support::cache`): each `(program, pair, scheme)` verdict is
//! keyed by its concrete generated inputs and persisted, so a re-run under
//! an unchanged core fingerprint replays verdicts instead of simulating.

#![warn(missing_docs)]

pub mod cellcache;
pub mod generator;
pub mod harness;
pub mod observer;

pub use generator::{assert_pair_low_equivalent, gen_program, gen_secret_pair, SecretProgram};
pub use harness::{fuzz, CellResult, FuzzConfig, FuzzReport, DEFAULT_SEED, ENFORCED_CLEAN};
pub use observer::{diff, project, Divergence, Ev, Obs, ObsKey, Observer, Recorder};
