//! Self-tests of the noninterference gate: non-vacuity (the canary — the
//! unsafe baseline — must be caught by every observer), cleanliness of the
//! delaying schemes, observer-coarseness relations, generator low-equivalence,
//! and thread-count determinism of the report.

use levioso_core::Scheme;
use levioso_isa::reg::{A1, A2, A3, A4, A5, ZERO};
use levioso_isa::{AluOp, BranchCond, Instr, MemWidth, Program};
use levioso_nisec::{
    assert_pair_low_equivalent, diff, fuzz, gen_program, gen_secret_pair, FuzzConfig, Observer,
    Recorder, ENFORCED_CLEAN,
};
use levioso_support::Xoshiro256pp;
use levioso_uarch::{CoreConfig, Simulator};

/// A small deterministic campaign config shared by the self-tests.
fn tiny(threads: usize) -> FuzzConfig {
    FuzzConfig { programs: 6, pairs_per_program: 2, seed: 0x5eed, threads }
}

/// The always-run canary: the unsafe baseline must be flagged leaky on at
/// least one cell for *every* observer. If this fails, the gate's green on
/// the secure schemes is vacuous.
#[test]
fn unsafe_baseline_is_caught_by_every_observer() {
    let report = fuzz(&tiny(0), &[Scheme::Unsafe]);
    for observer in Observer::ALL {
        let n = report.leaks(Scheme::Unsafe, observer);
        assert!(
            n > 0,
            "vacuity: unsafe baseline clean under the {observer} observer on all {} cells",
            report.cells
        );
    }
    assert!(
        report.gate_failures().is_empty(),
        "unsafe-only campaign must pass the gate (vacuity satisfied, no enforced scheme ran): {:?}",
        report.gate_failures()
    );
}

/// Every delaying scheme the gate enforces must be observation-clean on
/// every cell of the same campaign that catches the unsafe baseline.
#[test]
fn enforced_delaying_schemes_are_clean() {
    let report = fuzz(&tiny(0), &ENFORCED_CLEAN);
    for &scheme in &ENFORCED_CLEAN {
        for observer in Observer::ALL {
            assert_eq!(
                report.leaks(scheme, observer),
                0,
                "{} leaked under the {observer} observer: {:?}",
                scheme.name(),
                report.first_leak(scheme, observer)
            );
        }
    }
    assert!(report.gate_failures().is_empty(), "{:?}", report.gate_failures());
}

/// Universal coarseness over real runs: whenever the full-trace projection
/// of a cell agrees, every coarser projection agrees too (they are all pure
/// functions of the same recorded stream).
#[test]
fn coarser_observers_agree_wherever_full_trace_agrees() {
    let report = fuzz(&tiny(0), &[Scheme::Unsafe, Scheme::Levioso]);
    let full = Observer::ALL.iter().position(|&o| o == Observer::FullTrace).unwrap();
    for cell in &report.results {
        if cell.diverged[full].is_none() {
            for (oi, d) in cell.diverged.iter().enumerate() {
                assert!(
                    d.is_none(),
                    "{} program {} pair {}: clean full trace but {} diverged: {:?}",
                    cell.scheme.name(),
                    cell.program,
                    cell.pair,
                    Observer::ALL[oi],
                    d
                );
            }
        }
    }
}

/// Records one run of `program` under `scheme` with the given secret.
fn record(
    program: &Program,
    scheme: Scheme,
    secret_addr: u64,
    secret: i64,
) -> Vec<levioso_nisec::Ev> {
    let mut p = program.clone();
    scheme.prepare(&mut p);
    let mut sim = Simulator::new(&p, CoreConfig::default());
    sim.mem.write_i64(secret_addr, secret);
    sim.attach_tracer(Box::new(Recorder::default()));
    sim.run(scheme.policy().as_ref()).expect("run");
    sim.take_tracer().unwrap().into_any().downcast::<Recorder>().unwrap().events
}

/// Strict-coarseness witness: a program where the secret influences control
/// flow (and hence the full event trace and commit timing) but not the set
/// of cache lines filled. The cache-line observer must call it clean while
/// the full-trace observer flags it — so cache-line is *strictly* coarser,
/// not merely equal.
#[test]
fn cache_line_observer_is_strictly_coarser_than_full_trace() {
    const SECRET: i64 = 0x8000;
    const PROBE: i64 = 0x2000;
    let ld = |rd, base, offset| Instr::Load { width: MemWidth::D, signed: true, rd, base, offset };
    let program = Program::new(
        "witness",
        vec![
            Instr::AluImm { op: AluOp::Add, rd: A1, rs1: ZERO, imm: SECRET },
            ld(A2, A1, 0),
            Instr::AluImm { op: AluOp::And, rd: A3, rs1: A2, imm: 1 },
            // Taken iff the secret's low bit is 0: the secret decides the
            // committed path (and the misprediction), nothing else.
            Instr::Branch { cond: BranchCond::Eq, rs1: A3, rs2: ZERO, target: 5 },
            Instr::Nop,
            Instr::AluImm { op: AluOp::Add, rd: A4, rs1: ZERO, imm: PROBE },
            ld(A5, A4, 0),
            Instr::Halt,
        ],
    );
    // Low bits differ, so the two runs take different architectural paths;
    // both runs fill exactly {secret line, probe line}.
    let a = record(&program, Scheme::Unsafe, SECRET as u64, 2);
    let b = record(&program, Scheme::Unsafe, SECRET as u64, 3);
    assert!(
        diff(Observer::FullTrace, &a, &b).is_some(),
        "witness must diverge under the full-trace observer"
    );
    assert!(
        diff(Observer::CommitTiming, &a, &b).is_some(),
        "witness commits different paths, so commit-timing must diverge too"
    );
    assert_eq!(
        diff(Observer::CacheLine, &a, &b),
        None,
        "witness fills the same lines in both runs; the cache-line observer must be blind to it"
    );
}

/// The generator's low-equivalence contract, checked on the sequential
/// reference machine: secrets are architecturally dead, so final registers
/// and public memory agree across every generated pair.
#[test]
fn generated_pairs_are_low_equivalent() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xd15c);
    for _ in 0..24 {
        let sp = gen_program(&mut rng);
        for _ in 0..2 {
            let pair = gen_secret_pair(&mut rng, sp.secret_addrs.len());
            assert_eq!(pair.len(), sp.secret_addrs.len());
            for &(a, b) in &pair {
                assert_ne!(a & 7, b & 7, "pair must select distinct oracle lines");
            }
            assert_pair_low_equivalent(&sp, &pair);
        }
    }
}

/// The report is a pure function of the seed: any thread count produces the
/// identical report, divergence strings included.
#[test]
fn report_is_deterministic_across_thread_counts() {
    let schemes = [Scheme::Unsafe, Scheme::Levioso, Scheme::Stt];
    let one = fuzz(&tiny(1), &schemes);
    let four = fuzz(&tiny(4), &schemes);
    assert_eq!(one, four);
    assert_eq!(one.render(), four.render());
    assert_eq!(one.to_json(), four.to_json());
}
