//! Warm-cache replay of the noninterference campaign: a persisted cell's
//! verdict must round-trip exactly, so a fully warm campaign renders a
//! byte-identical report without running a single simulation.
//!
//! This file is its own test binary (one process), so reconfiguring the
//! process-global cache handle cannot race the campaign tests in
//! `noninterference.rs`.

use levioso_core::Scheme;
use levioso_nisec::{cellcache, fuzz, FuzzConfig, DEFAULT_SEED};
use levioso_support::Cache;

#[test]
fn warm_campaign_replays_byte_identical_reports() {
    let root = std::env::temp_dir().join(format!("levioso-nisec-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create temp cache root");
    cellcache::configure(Cache::new(root, "test-v1"));

    let config = FuzzConfig { programs: 4, pairs_per_program: 2, seed: DEFAULT_SEED, threads: 2 };
    let schemes = [Scheme::Unsafe, Scheme::Levioso];

    let cold = fuzz(&config, &schemes);
    let cold_report = cellcache::report();
    assert!(cold_report.misses > 0, "cold campaign must compute cells");
    assert_eq!(cold_report.hits, 0, "cold campaign cannot hit an empty cache");

    cellcache::reset_counters();
    let warm = fuzz(&config, &schemes);
    let warm_report = cellcache::report();
    assert_eq!(cold, warm, "replayed verdicts must equal computed ones, divergences included");
    assert_eq!(cold.render(), warm.render(), "rendered reports are byte-identical");
    assert_eq!(cold.to_json(), warm.to_json());
    assert_eq!(warm_report.misses, 0, "fully warm campaign must not re-simulate");
    assert_eq!(warm_report.hits, cold_report.misses, "every cold cell replays");

    // Warm replay is also thread-count independent (the cold campaign
    // already is — pinned by `noninterference.rs`).
    cellcache::reset_counters();
    let warm_serial = fuzz(&FuzzConfig { threads: 1, ..config.clone() }, &schemes);
    assert_eq!(cold, warm_serial);

    cellcache::configure(Cache::disabled());
}
