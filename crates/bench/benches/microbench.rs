//! Microbenchmarks on the in-tree `levioso-support` wall-clock runner:
//! simulator throughput per scheme (the F2 kernel), the annotation pass,
//! and the hot substrate components.
//!
//! These measure *host* wall-time of the tools themselves; the paper's
//! figures (simulated cycles) come from the `fig*` binaries. Under
//! `cargo bench` each benchmark is sampled with warmup; under `cargo test`
//! every body runs once as a smoke test.

use levioso_core::Scheme;
use levioso_support::bench::{BatchSize, Bench};
use levioso_uarch::{CoreConfig, Simulator};
use levioso_workloads::{suite, Scale};
use std::hint::black_box;

fn scheme_throughput(c: &mut Bench) {
    let workload =
        suite(Scale::Smoke).into_iter().find(|w| w.name == "filter_scan").expect("kernel exists");
    let mut group = c.group("simulate_filter_scan");
    group.sample_size(10);
    for scheme in Scheme::HEADLINE {
        let mut program = workload.program.clone();
        scheme.prepare(&mut program);
        group.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new(&program, CoreConfig::default());
                    workload.apply_memory(&mut sim);
                    sim
                },
                |mut sim| {
                    black_box(sim.run(scheme.policy().as_ref()).expect("runs"));
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// The scheduler core loop in isolation: one fixed workload under one fixed
/// scheme, reported as host wall-clock per simulated megacycle (the number
/// the PR-level throughput trajectory in `results/BENCH_sim_throughput.json`
/// tracks at sweep granularity).
fn sim_core_loop(c: &mut Bench) {
    let workload =
        suite(Scale::Smoke).into_iter().find(|w| w.name == "filter_scan").expect("kernel exists");
    let scheme = Scheme::Levioso;
    let mut program = workload.program.clone();
    scheme.prepare(&mut program);
    // Calibrate: simulated cycles for one run of this fixed cell.
    let sim_cycles = {
        let mut sim = Simulator::new(&program, CoreConfig::default());
        workload.apply_memory(&mut sim);
        sim.run(scheme.policy().as_ref()).expect("runs").cycles
    };
    let mut group = c.group("sim_core_loop");
    group.sample_size(10);
    group.bench_function("wall_per_simulated_megacycle", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(&program, CoreConfig::default());
                workload.apply_memory(&mut sim);
                sim
            },
            |mut sim| {
                black_box(sim.run(scheme.policy().as_ref()).expect("runs"));
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
    eprintln!("sim_core_loop: {sim_cycles} simulated cycles per iteration (divide the per-iteration wall time by {:.3} to get wall-clock per simulated megacycle)", sim_cycles as f64 / 1.0e6);
}

fn annotation_pass(c: &mut Bench) {
    let workloads = suite(Scale::Smoke);
    let mut group = c.group("annotate");
    group.sample_size(20);
    for w in workloads.into_iter().take(3) {
        group.bench_function(w.name, |b| {
            b.iter_batched(
                || w.program.clone(),
                |mut p| {
                    levioso_compiler::annotate(&mut p);
                    black_box(p);
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn cache_hierarchy(c: &mut Bench) {
    use levioso_uarch::{Hierarchy, HierarchyConfig};
    c.bench_function("hierarchy_access_stream", |b| {
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        let mut now = 0u64;
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..1024u64 {
                now += 1;
                total += h.access(black_box(i * 64 % (1 << 20)), now);
            }
            black_box(total)
        });
    });
}

fn interpreter_throughput(c: &mut Bench) {
    let workload =
        suite(Scale::Smoke).into_iter().find(|w| w.name == "crc32").expect("kernel exists");
    c.bench_function("interpreter_crc32", |b| {
        b.iter_batched(
            || {
                let mut m = levioso_isa::Machine::new();
                for &(a, v) in &workload.memory {
                    m.mem.write_i64(a, v);
                }
                m
            },
            |mut m| {
                m.run(&workload.program, 100_000_000).expect("halts");
                black_box(m.retired())
            },
            BatchSize::SmallInput,
        );
    });
}

fn dominator_analysis(c: &mut Bench) {
    // A branchy program with many blocks exercises the CFG + postdominator
    // + control-dependence pipeline.
    let source: String = {
        let mut s = String::from("arr a @ 0x100000;\nfn main() {\n let i = 0;\n let x = 0;\n");
        s.push_str(" while (i < 100) {\n");
        for k in 0..40 {
            s.push_str(&format!("  if (a[i] > {k}) {{ x = x + {k}; }}\n"));
        }
        s.push_str("  i = i + 1;\n }\n a[200] = x;\n}\n");
        s
    };
    let program =
        levioso_compiler::levi::compile_unannotated("branchy", &source).expect("compiles");
    c.bench_function("analyze_branchy_cfg", |b| {
        b.iter(|| black_box(levioso_compiler::Analysis::of(black_box(&program))));
    });
}

fn main() {
    let mut bench = Bench::from_args();
    scheme_throughput(&mut bench);
    sim_core_loop(&mut bench);
    annotation_pass(&mut bench);
    cache_hierarchy(&mut bench);
    interpreter_throughput(&mut bench);
    dominator_analysis(&mut bench);
    bench.finish();
}
