//! Pins the CLI contracts every experiment binary shares — most
//! importantly that the `--no-cache`/`--resume` mutual exclusion prints
//! the *one* message defined in `levioso_bench::cli`, from every binary
//! (they all parse through the shared `util.rs`, so a drifted copy would
//! mean someone forked the parser).

use levioso_bench::cli::{RESUME_CACHE_DISABLED, RESUME_NO_CACHE_CONFLICT};
use std::process::Command;

/// Every binary that takes the shared sweep flags, including the nisec
/// gate (`table4_noninterference`) and the driver (`all`).
const BINARIES: &[&str] = &[
    env!("CARGO_BIN_EXE_all"),
    env!("CARGO_BIN_EXE_fig1_motivation"),
    env!("CARGO_BIN_EXE_fig2_overhead"),
    env!("CARGO_BIN_EXE_fig3_ablation"),
    env!("CARGO_BIN_EXE_fig4_rob_sweep"),
    env!("CARGO_BIN_EXE_fig5_mem_sweep"),
    env!("CARGO_BIN_EXE_fig6_transient_fills"),
    env!("CARGO_BIN_EXE_fig7_hint_budget"),
    env!("CARGO_BIN_EXE_table1_config"),
    env!("CARGO_BIN_EXE_table2_security"),
    env!("CARGO_BIN_EXE_table3_annotation"),
    env!("CARGO_BIN_EXE_table4_noninterference"),
];

fn short_name(bin: &str) -> &str {
    std::path::Path::new(bin).file_name().and_then(|n| n.to_str()).unwrap_or(bin)
}

#[test]
fn no_cache_resume_conflict_message_is_shared_verbatim() {
    for bin in BINARIES {
        let out = Command::new(bin)
            .args(["--no-cache", "--resume"])
            .output()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{}: conflicting flags must exit 2 (stderr: {stderr})",
            short_name(bin)
        );
        assert!(
            stderr.contains(RESUME_NO_CACHE_CONFLICT),
            "{}: stderr does not carry the shared message {RESUME_NO_CACHE_CONFLICT:?}: {stderr}",
            short_name(bin)
        );
    }
}

#[test]
fn resume_with_env_disabled_cache_message_is_shared_verbatim() {
    for bin in BINARIES {
        let out = Command::new(bin)
            .args(["--resume"])
            .env("LEVIOSO_SWEEP_CACHE", "off")
            .output()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{}: must exit 2", short_name(bin));
        assert!(
            stderr.contains(RESUME_CACHE_DISABLED),
            "{}: stderr does not carry the shared message {RESUME_CACHE_DISABLED:?}: {stderr}",
            short_name(bin)
        );
    }
}

/// Spawns `bin` at smoke tier against the given cache/results dirs and
/// returns its one `run-summary:` stderr line.
fn summary_line(bin: &str, base: &std::path::Path) -> String {
    let out = Command::new(bin)
        .args(["--smoke", "--quiet", "--threads", "1"])
        .env("LEVIOSO_SWEEP_CACHE_DIR", base.join("cache"))
        .env("LEVIOSO_RESULTS_DIR", base.join("results"))
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{}: {stderr}", short_name(bin));
    let lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with("run-summary: ")).collect();
    assert_eq!(
        lines.len(),
        1,
        "{}: expected exactly one run-summary line, stderr: {stderr}",
        short_name(bin)
    );
    lines[0].to_string()
}

/// Parses `key=<u64>` out of a run-summary line.
fn summary_field(line: &str, key: &str) -> u64 {
    let prefix = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(prefix.as_str()))
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        .parse()
        .unwrap_or_else(|e| panic!("bad {key} in {line}: {e}"))
}

#[test]
fn run_summary_line_is_shared_and_fed_from_the_registry() {
    let base = std::env::temp_dir().join(format!("levioso-cli-summary-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create temp dir");

    // A table binary runs no sweep: every counter is zero, and the line's
    // shape is the one `levioso_bench::cli::run_summary` renders, verbatim.
    let line = summary_line(env!("CARGO_BIN_EXE_table1_config"), &base);
    assert!(
        line.starts_with(
            "run-summary: cells=0 l1_hits=0 l2_hits=0 misses=0 poisoned=0 wall_seconds="
        ),
        "{line}"
    );
    let wall: f64 = line.rsplit_once("wall_seconds=").expect("wall field").1.parse().expect("f64");
    assert!(wall.is_finite() && wall >= 0.0);

    // A cold figure run computes fresh cells: the registry's cell counter
    // and the cache's miss counter agree (throughput honesty), no hits.
    let cold = summary_line(env!("CARGO_BIN_EXE_fig1_motivation"), &base);
    let cells = summary_field(&cold, "cells");
    assert!(cells > 0, "{cold}");
    assert_eq!(cells, summary_field(&cold, "misses"), "{cold}");
    assert_eq!(summary_field(&cold, "l1_hits") + summary_field(&cold, "l2_hits"), 0, "{cold}");

    // The same run against the now-warm disk cache: every cell is an L2
    // hit, nothing recomputes — the summary reads the same atomics the
    // telemetry snapshot exports.
    let warm = summary_line(env!("CARGO_BIN_EXE_fig1_motivation"), &base);
    assert_eq!(summary_field(&warm, "cells"), 0, "{warm}");
    assert_eq!(summary_field(&warm, "misses"), 0, "{warm}");
    assert_eq!(summary_field(&warm, "l2_hits"), cells, "{warm}");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn serve_rejects_per_run_flags() {
    for flags in [["--serve", "x", "--check"], ["--serve", "x", "--resume"]] {
        let out = Command::new(env!("CARGO_BIN_EXE_all")).args(flags).output().expect("spawn all");
        assert_eq!(out.status.code(), Some(2), "{flags:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--serve runs a daemon"), "{stderr}");
    }
}

#[test]
fn serve_flag_is_driver_only() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig2_overhead"))
        .args(["--serve", "x"])
        .output()
        .expect("spawn fig2_overhead");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument `--serve`"), "{stderr}");
}
