//! Pins the CLI contracts every experiment binary shares — most
//! importantly that the `--no-cache`/`--resume` mutual exclusion prints
//! the *one* message defined in `levioso_bench::cli`, from every binary
//! (they all parse through the shared `util.rs`, so a drifted copy would
//! mean someone forked the parser).

use levioso_bench::cli::{RESUME_CACHE_DISABLED, RESUME_NO_CACHE_CONFLICT};
use std::process::Command;

/// Every binary that takes the shared sweep flags, including the nisec
/// gate (`table4_noninterference`) and the driver (`all`).
const BINARIES: &[&str] = &[
    env!("CARGO_BIN_EXE_all"),
    env!("CARGO_BIN_EXE_fig1_motivation"),
    env!("CARGO_BIN_EXE_fig2_overhead"),
    env!("CARGO_BIN_EXE_fig3_ablation"),
    env!("CARGO_BIN_EXE_fig4_rob_sweep"),
    env!("CARGO_BIN_EXE_fig5_mem_sweep"),
    env!("CARGO_BIN_EXE_table1_config"),
    env!("CARGO_BIN_EXE_table2_security"),
    env!("CARGO_BIN_EXE_table3_annotation"),
    env!("CARGO_BIN_EXE_table4_noninterference"),
];

fn short_name(bin: &str) -> &str {
    std::path::Path::new(bin).file_name().and_then(|n| n.to_str()).unwrap_or(bin)
}

#[test]
fn no_cache_resume_conflict_message_is_shared_verbatim() {
    for bin in BINARIES {
        let out = Command::new(bin)
            .args(["--no-cache", "--resume"])
            .output()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{}: conflicting flags must exit 2 (stderr: {stderr})",
            short_name(bin)
        );
        assert!(
            stderr.contains(RESUME_NO_CACHE_CONFLICT),
            "{}: stderr does not carry the shared message {RESUME_NO_CACHE_CONFLICT:?}: {stderr}",
            short_name(bin)
        );
    }
}

#[test]
fn resume_with_env_disabled_cache_message_is_shared_verbatim() {
    for bin in BINARIES {
        let out = Command::new(bin)
            .args(["--resume"])
            .env("LEVIOSO_SWEEP_CACHE", "off")
            .output()
            .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{}: must exit 2", short_name(bin));
        assert!(
            stderr.contains(RESUME_CACHE_DISABLED),
            "{}: stderr does not carry the shared message {RESUME_CACHE_DISABLED:?}: {stderr}",
            short_name(bin)
        );
    }
}

#[test]
fn serve_rejects_per_run_flags() {
    for flags in [["--serve", "x", "--check"], ["--serve", "x", "--resume"]] {
        let out = Command::new(env!("CARGO_BIN_EXE_all")).args(flags).output().expect("spawn all");
        assert_eq!(out.status.code(), Some(2), "{flags:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--serve runs a daemon"), "{stderr}");
    }
}

#[test]
fn serve_flag_is_driver_only() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig2_overhead"))
        .args(["--serve", "x"])
        .output()
        .expect("spawn fig2_overhead");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument `--serve`"), "{stderr}");
}
