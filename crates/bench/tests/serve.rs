//! Serve-mode contracts.
//!
//! In-process: the serve loop's failure discipline — malformed request
//! JSON, unknown selectors, fingerprint mismatches, and body/filename id
//! disagreements produce *error response files* (never a crash), and
//! requests older than the server are skipped without a response.
//!
//! End-to-end (spawned binaries): a served `all --smoke --check` report is
//! byte-identical to the cold CLI run at `--threads 1` and `--threads 8`,
//! the second served request answers entirely from the in-memory hot tier
//! (zero disk reads, zero recomputes — proven by the response's
//! `l1/l2/miss` split), and the server's `BENCH_serve_latency.json` /
//! `BENCH_sim_throughput.json` snapshots pass `perfcheck`.

use levioso_bench::serve::{Poll, Server, SHUTDOWN_SELECTOR};
use levioso_support::jobdir::{self, Request, Response, ERROR_STATUS};
use levioso_support::Json;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("levioso-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn request(id: &str, selector: &str) -> Request {
    Request {
        id: id.to_string(),
        selector: selector.to_string(),
        tier: "smoke".to_string(),
        threads: 1,
        // Empty = accept any core revision; the mismatch test sets its own.
        fingerprint: String::new(),
    }
}

fn read_response(dir: &Path, id: &str) -> Response {
    let path = jobdir::response_path(dir, id);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no response file {}: {e}", path.display()));
    Response::from_json(&Json::parse(&text).expect("response is JSON")).expect("response parses")
}

/// Writes a request *after* the server's start so it reads as fresh.
fn submit(server_born: &Server, dir: &Path, req: &Request) {
    let _ = server_born; // the ordering (server first) is the point
    std::thread::sleep(Duration::from_millis(20));
    req.write(dir).expect("write request");
}

#[test]
fn malformed_request_json_yields_an_error_response_not_a_crash() {
    let dir = tmpdir("malformed");
    let mut server = Server::new();
    std::thread::sleep(Duration::from_millis(20));
    std::fs::write(dir.join("bad-req.req.json"), "{ this is not json").unwrap();
    assert_eq!(server.poll_once(&dir), Poll::Handled(1));
    assert!(!jobdir::request_path(&dir, "bad-req").exists(), "request file must be consumed");
    let resp = read_response(&dir, "bad-req");
    assert!(!resp.ok);
    assert_eq!(resp.status, ERROR_STATUS);
    assert!(resp.report.is_empty());
    let error = resp.error.expect("error reason");
    assert!(error.contains("malformed request JSON"), "{error}");
}

#[test]
fn unknown_selector_yields_an_error_response() {
    let dir = tmpdir("unknown-selector");
    let mut server = Server::new();
    submit(&server, &dir, &request("req-fig99", "fig99"));
    assert_eq!(server.poll_once(&dir), Poll::Handled(1));
    let resp = read_response(&dir, "req-fig99");
    assert!(!resp.ok);
    assert_eq!(resp.status, ERROR_STATUS);
    let error = resp.error.expect("error reason");
    assert!(error.contains("unknown selector \"fig99\""), "{error}");
    assert!(error.contains("\"check\""), "the error should list valid selectors: {error}");
}

#[test]
fn unknown_tier_yields_an_error_response() {
    let dir = tmpdir("unknown-tier");
    let mut server = Server::new();
    let mut req = request("req-turbo", "check");
    req.tier = "turbo".to_string();
    submit(&server, &dir, &req);
    assert_eq!(server.poll_once(&dir), Poll::Handled(1));
    let resp = read_response(&dir, "req-turbo");
    assert!(!resp.ok);
    let error = resp.error.expect("error reason");
    assert!(error.contains("unknown tier \"turbo\""), "{error}");
}

#[test]
fn stale_request_is_skipped_with_no_response() {
    let dir = tmpdir("stale");
    request("old-req", "check").write(&dir).expect("write request");
    std::thread::sleep(Duration::from_millis(30));
    // The server is born *after* the request file: its client is presumed
    // gone, so the request is consumed but never answered.
    let mut server = Server::new();
    assert_eq!(server.poll_once(&dir), Poll::Handled(1));
    assert!(!jobdir::request_path(&dir, "old-req").exists(), "stale request must be consumed");
    assert!(!jobdir::response_path(&dir, "old-req").exists(), "a stale request gets no response");
    assert_eq!(server.poll_once(&dir), Poll::Idle);
}

#[test]
fn body_id_mismatching_filename_is_refused() {
    let dir = tmpdir("id-mismatch");
    let mut server = Server::new();
    std::thread::sleep(Duration::from_millis(20));
    let req = request("alpha", "check");
    jobdir::write_atomic(&dir, "beta.req.json", &req.to_json()).expect("write mismatched file");
    assert_eq!(server.poll_once(&dir), Poll::Handled(1));
    let resp = read_response(&dir, "beta");
    assert!(!resp.ok);
    let error = resp.error.expect("error reason");
    assert!(error.contains("does not match its filename id"), "{error}");
}

#[test]
fn core_fingerprint_mismatch_is_refused() {
    let dir = tmpdir("fingerprint");
    let mut server = Server::new();
    let mut req = request("req-old-core", "check");
    req.fingerprint = "bogus-core-rev".to_string();
    submit(&server, &dir, &req);
    assert_eq!(server.poll_once(&dir), Poll::Handled(1));
    let resp = read_response(&dir, "req-old-core");
    assert!(!resp.ok);
    let error = resp.error.expect("error reason");
    assert!(error.contains("core fingerprint mismatch"), "{error}");
    assert!(error.contains("restart the server"), "{error}");
}

#[test]
fn shutdown_selector_stops_the_loop_and_is_acknowledged() {
    let dir = tmpdir("shutdown");
    let mut server = Server::new();
    submit(&server, &dir, &request("req-bye", SHUTDOWN_SELECTOR));
    assert_eq!(server.poll_once(&dir), Poll::Shutdown);
    let resp = read_response(&dir, "req-bye");
    assert!(resp.ok);
    assert_eq!(resp.status, 0);
}

// ---------------------------------------------------------------------------
// End-to-end: spawned server + levq client.
// ---------------------------------------------------------------------------

/// Kills the spawned server if the test panics before shutting it down.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn levq(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_levq"))
        .arg(dir)
        .args(args)
        .args(["--timeout-secs", "120"])
        .output()
        .expect("spawn levq")
}

/// Extracts `(l1_hits, l2_hits, misses)` from levq's greppable stderr line.
fn levq_split(out: &Output) -> (u64, u64, u64) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr
        .lines()
        .find(|l| l.starts_with("levq: id="))
        .unwrap_or_else(|| panic!("no levq summary line in stderr: {stderr}"));
    let field = |key: &str| -> u64 {
        let prefix = format!("{key}=");
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(prefix.as_str()))
            .unwrap_or_else(|| panic!("no {key} in {line}"))
            .parse()
            .unwrap_or_else(|e| panic!("bad {key} in {line}: {e}"))
    };
    (field("l1_hits"), field("l2_hits"), field("misses"))
}

#[test]
fn served_smoke_check_is_byte_identical_to_the_cold_cli_and_warms_the_memory_tier() {
    let base = tmpdir("e2e");
    let jobs = base.join("jobs");
    let results = base.join("results");
    let server = Command::new(env!("CARGO_BIN_EXE_all"))
        .args(["--serve", jobs.to_str().unwrap()])
        .env("LEVIOSO_SWEEP_CACHE_DIR", base.join("cache"))
        .env("LEVIOSO_RESULTS_DIR", &results)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn all --serve");
    let mut server = KillOnDrop(server);
    // The server creates the job directory before it starts polling; a
    // request written before the server's birth would read as stale.
    let ready = Instant::now();
    while !jobs.exists() {
        assert!(ready.elapsed() < Duration::from_secs(30), "server never created the job dir");
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(300));

    // Request 1: the cold smoke check at 1 thread. Fills both cache tiers.
    let cold = levq(&jobs, &["check", "--smoke", "--threads", "1", "--id", "req1-cold"]);
    assert!(
        cold.status.success(),
        "cold served check failed: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let (_, _, cold_misses) = levq_split(&cold);
    assert!(cold_misses > 0, "a cold server must compute fresh cells");
    assert!(!cold.stdout.is_empty(), "the check report must not be empty");

    // Request 2: same check at 8 threads. Byte-identical report, answered
    // entirely from the in-memory tier: zero disk reads, zero recomputes.
    let warm = levq(&jobs, &["check", "--smoke", "--threads", "8", "--id", "req2-warm"]);
    assert!(
        warm.status.success(),
        "warm served check failed: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "served reports must be byte-identical across thread counts"
    );
    let (warm_l1, warm_l2, warm_misses) = levq_split(&warm);
    assert!(warm_l1 > 0, "the warm request must hit the memory tier");
    assert_eq!(warm_l2, 0, "a warm request must not read the disk cache");
    assert_eq!(warm_misses, 0, "a warm request must not recompute cells");

    // Request 3: a table selector, pinned against the library render the
    // cold `table1_config` binary prints (render + trailing newline).
    let table = levq(&jobs, &["table1_config", "--smoke", "--id", "req3-table"]);
    assert!(table.status.success());
    assert_eq!(
        String::from_utf8_lossy(&table.stdout),
        format!("{}\n", levioso_bench::config_table().render())
    );

    // Request 4: the noninterference gate from the same process. Its
    // cells live in the *nisec* cache, which never feeds the busy-time
    // meter — the throughput snapshot's cells == misses invariant below
    // must survive this request (it regressed once).
    let t4 = levq(&jobs, &["table4", "--smoke", "--id", "req4-nisec"]);
    assert!(t4.status.success(), "{}", String::from_utf8_lossy(&t4.stderr));
    let (_, _, t4_misses) = levq_split(&t4);
    assert!(t4_misses > 0, "a cold nisec campaign must compute fresh cells");

    // Request 5: `status`. The introspection document must reconcile
    // *exactly* with the sum of the per-response cache splits — the
    // registry counters and the response deltas are the same atomics.
    let status = levq(&jobs, &["status", "--smoke", "--id", "req5-status"]);
    assert!(status.status.success(), "{}", String::from_utf8_lossy(&status.stderr));
    let status_doc =
        Json::parse(&String::from_utf8_lossy(&status.stdout)).expect("status report is JSON");
    assert_eq!(
        status_doc.get("schema").and_then(Json::as_str),
        Some(levioso_bench::serve::STATUS_SCHEMA)
    );
    assert_eq!(
        status_doc.get("fingerprint").and_then(Json::as_str),
        Some(levioso_uarch::core_fingerprint().as_str()),
        "status reports the serving core's fingerprint"
    );
    assert!(
        status_doc.get("uptime_seconds").and_then(Json::as_f64).expect("uptime") > 0.0,
        "uptime must be positive"
    );
    assert_eq!(
        status_doc.get("requests_served").and_then(Json::as_i64),
        Some(4),
        "four requests executed before this status request"
    );
    let counter = |name: &str| -> u64 {
        status_doc
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_str)
            .map_or(0, |s| s.parse().expect("counter value parses as u64"))
    };
    let both = |stem: &str| -> u64 {
        counter(&format!("{stem}{{cache=bench}}")) + counter(&format!("{stem}{{cache=nisec}}"))
    };
    let splits = [levq_split(&cold), levq_split(&warm), levq_split(&table), levq_split(&t4)];
    let summed = splits.iter().fold((0, 0, 0), |acc, s| (acc.0 + s.0, acc.1 + s.1, acc.2 + s.2));
    assert_eq!(
        (
            both("sweep_cache_l1_hits_total"),
            both("sweep_cache_l2_hits_total"),
            both("sweep_cache_misses_total"),
        ),
        summed,
        "the registry snapshot must reconcile exactly with the summed per-response splits"
    );
    assert_eq!(
        counter("serve_requests_total{outcome=ok,selector=check}"),
        2,
        "both check requests counted ok"
    );
    assert_eq!(counter("serve_requests_total{outcome=ok,selector=table1_config}"), 1);
    assert_eq!(counter("serve_requests_total{outcome=ok,selector=table4}"), 1);

    // The cold CLI at 8 threads, against its own fresh cache: its stdout
    // begins with exactly the bytes the server served.
    let cli = Command::new(env!("CARGO_BIN_EXE_all"))
        .args(["--smoke", "--check", "--threads", "8"])
        .env("LEVIOSO_SWEEP_CACHE_DIR", base.join("cache-cli"))
        .env("LEVIOSO_RESULTS_DIR", base.join("results-cli"))
        .output()
        .expect("spawn cold all --smoke --check");
    assert!(
        cli.status.success(),
        "cold CLI check failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    assert!(
        cli.stdout.starts_with(&cold.stdout),
        "served report must be byte-identical to the cold CLI's report prefix"
    );

    // The latency book: schema, a cold and a warm check wall-clock, one
    // entry per executed request.
    let latency =
        std::fs::read_to_string(results.join("BENCH_serve_latency.json")).expect("latency book");
    let doc = Json::parse(&latency).expect("latency book is JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("levioso-serve-latency/2"));
    let cold_s = doc.get("cold_request_seconds").and_then(Json::as_f64).expect("cold seconds");
    let warm_s = doc.get("warm_request_seconds").and_then(Json::as_f64).expect("warm seconds");
    assert!(cold_s > 0.0 && warm_s > 0.0);
    let entries = doc.get("requests").and_then(Json::as_arr).expect("requests array");
    assert_eq!(entries.len(), 5, "five executed requests in the book");
    // Per-selector latency distributions: both check requests share one
    // histogram, and the percentile fields are ordered.
    let selectors = doc.get("selectors").expect("selectors object");
    let check = selectors.get("check").expect("check selector entry");
    assert_eq!(check.get("count").and_then(Json::as_i64), Some(2));
    let p50 = check.get("p50_seconds").and_then(Json::as_f64).expect("p50");
    let p95 = check.get("p95_seconds").and_then(Json::as_f64).expect("p95");
    let p99 = check.get("p99_seconds").and_then(Json::as_f64).expect("p99");
    assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
    assert_eq!(
        selectors.get("status").and_then(|s| s.get("count")).and_then(Json::as_i64),
        Some(1),
        "the status request itself lands in the latency book"
    );

    // Every accounted request refreshes the metrics mirror.
    let mirror = std::fs::read_to_string(results.join("METRICS_run.json")).expect("metrics mirror");
    let mirror = Json::parse(&mirror).expect("metrics mirror is JSON");
    assert_eq!(mirror.get("schema").and_then(Json::as_str), Some("levioso-metrics/1"));

    // The throughput snapshot keeps perfcheck's invariants across the
    // whole serve session: busy samples only from fresh cells, and the
    // cumulative split records the memory-tier hits.
    let tp = std::fs::read_to_string(results.join("BENCH_sim_throughput.json"))
        .expect("throughput snapshot");
    let tp = Json::parse(&tp).expect("throughput is JSON");
    let current = tp.get("current").expect("current object");
    let cache = current.get("cache").expect("cache object");
    assert_eq!(
        current.get("cells").and_then(Json::as_f64),
        cache.get("misses").and_then(Json::as_f64),
        "every throughput cell corresponds to exactly one cumulative miss"
    );
    assert!(
        cache.get("l1_hits").and_then(Json::as_i64).expect("l1_hits") > 0,
        "the cumulative split must record the memory-tier hits"
    );

    // perfcheck validates both results files end-to-end.
    let pc = Command::new(env!("CARGO_BIN_EXE_perfcheck"))
        .env("LEVIOSO_RESULTS_DIR", &results)
        .output()
        .expect("spawn perfcheck");
    assert!(
        pc.status.success(),
        "perfcheck rejected the serve results: {}",
        String::from_utf8_lossy(&pc.stderr)
    );
    let pc_stdout = String::from_utf8_lossy(&pc.stdout);
    assert!(pc_stdout.contains("SERVE requests=5"), "{pc_stdout}");

    // Clean shutdown via the protocol; the server exits 0.
    let bye = levq(&jobs, &["shutdown", "--id", "req6-bye"]);
    assert!(bye.status.success(), "{}", String::from_utf8_lossy(&bye.stderr));
    let deadline = Instant::now() + Duration::from_secs(30);
    let code = loop {
        if let Some(status) = server.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "server did not exit after shutdown");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(code.success(), "server exited nonzero: {code:?}");

    // The shutdown record: the serve session appends exactly one ledger
    // line, carrying the same per-selector latency distributions the
    // latency book rendered (as microsecond percentile digests).
    let ledger = levioso_support::ledger::load(&results.join("ledger.jsonl"))
        .expect("the serve ledger parses");
    let rec: Vec<_> = ledger.iter().filter(|r| r.source == "serve").collect();
    assert_eq!(rec.len(), 1, "one shutdown record for the whole session");
    assert_eq!(rec[0].fingerprint, levioso_uarch::core_fingerprint());
    assert!(rec[0].cells > 0, "the session simulated fresh cells");
    let check_lat = rec[0]
        .latency
        .iter()
        .find(|(selector, _)| selector == "check")
        .map(|(_, digest)| *digest)
        .expect("a latency digest for the check selector");
    assert_eq!(check_lat.count, 2, "both check requests in one digest");
    assert!(
        check_lat.p50_micros > 0 && check_lat.p50_micros <= check_lat.p95_micros,
        "ordered percentiles: {check_lat:?}"
    );
}
