//! The sweep-cell cache's correctness contracts, end to end:
//!
//! * **determinism** — cold, warm, and mixed caches, at any thread count,
//!   render byte-identical figures (a cache hit returns exactly what the
//!   simulation would have computed);
//! * **poison detection** — a tampered persisted cell fails its integrity
//!   hash, is reported as poisoned, and is recomputed (never trusted);
//! * **invalidation** — a sim-core fingerprint bump (what a `CORE_REV`
//!   bump produces) marks every cell dirty: the next run recomputes all of
//!   them and reports which;
//! * **manifest consistency** — the committed golden snapshots re-digest
//!   to exactly what `results/golden/core_rev.json` records, and every
//!   recorded revision equals the current `CORE_REV`. This catches
//!   hand-edited goldens (which bypass the bless guard) and a `CORE_REV`
//!   bump that forgot to re-bless.
//!
//! The cache handle is process-global, so the tests that reconfigure it
//! serialize on one mutex (the manifest test reads only committed files
//! and needs no lock).

use levioso_bench::{cellcache, corerev, motivation_figure, run_workload, Sweep, Tier};
use levioso_core::Scheme;
use levioso_support::{Cache, CacheReport};
use levioso_uarch::{CoreConfig, CORE_REV};
use levioso_workloads::suite;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes the tests that reconfigure the process-global cache handle.
static GLOBAL_CACHE: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBAL_CACHE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Fresh, empty cache root under the OS temp dir.
fn tmp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("levioso-bench-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp cache root");
    dir
}

/// Renders F1 at smoke scale with `threads` workers and snapshots the
/// cache counters the run produced.
fn figure_bytes(threads: usize) -> (String, CacheReport) {
    cellcache::reset_counters();
    let sweep = Sweep::new(threads);
    let f = motivation_figure(&sweep, Tier::Smoke.scale());
    (format!("{}\n{}", f.render(), f.to_json()), cellcache::report())
}

/// Every persisted cell file in the configured cache's directory, sorted.
fn cell_files() -> Vec<PathBuf> {
    let dir = cellcache::with(|c| c.dir());
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists after a cold run")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn cold_warm_and_mixed_caches_are_byte_identical_at_any_thread_count() {
    let _serial = lock();
    cellcache::configure(Cache::new(tmp_root("coldwarm"), "test-v1"));

    let (cold, cold_report) = figure_bytes(1);
    assert!(cold_report.misses > 0, "cold run must compute cells");
    assert_eq!(cold_report.hits, 0, "cold run cannot hit an empty cache");

    let (warm, warm_report) = figure_bytes(4);
    assert_eq!(cold, warm, "warm replay must be byte-identical to the cold run");
    assert_eq!(warm_report.misses, 0, "fully warm run must not recompute");
    assert_eq!(warm_report.hits, cold_report.misses, "every cold cell replays");

    // Mixed: evict every other cell, forcing a hit/miss interleave.
    let files = cell_files();
    assert!(files.len() > 1, "expected multiple persisted cells");
    for f in files.iter().step_by(2) {
        std::fs::remove_file(f).expect("evict cell");
    }
    let (mixed, mixed_report) = figure_bytes(2);
    assert_eq!(cold, mixed, "mixed cache must also be byte-identical");
    assert!(mixed_report.hits > 0 && mixed_report.misses > 0, "run was genuinely mixed");

    cellcache::configure(Cache::disabled());
}

#[test]
fn tampered_cell_is_detected_as_poisoned_and_recomputed() {
    let _serial = lock();
    cellcache::configure(Cache::new(tmp_root("poison"), "test-v1"));

    let workloads = suite(Tier::Smoke.scale());
    let w = &workloads[0];
    let config = CoreConfig::default();
    let fresh = run_workload(w, Scheme::Levioso, &config);

    // Tamper with the persisted result: bump a digit of the stored cycle
    // count. The envelope still parses and still claims this input, so
    // only the integrity hash can catch it.
    let files = cell_files();
    assert_eq!(files.len(), 1, "one cell persisted");
    let text = std::fs::read_to_string(&files[0]).expect("read cell");
    let at = text.find("\"cycles\"").expect("result stores cycles") + "\"cycles\"".len();
    let digit = at + text[at..].find(|c: char| c.is_ascii_digit()).expect("cycle digits");
    let mut bytes = text.into_bytes();
    bytes[digit] = if bytes[digit] == b'1' { b'2' } else { b'1' };
    std::fs::write(&files[0], bytes).expect("write tampered cell");

    cellcache::reset_counters();
    let recomputed = run_workload(w, Scheme::Levioso, &config);
    let report = cellcache::report();
    assert_eq!(report.poisoned, 1, "tamper must be flagged as poisoning, not a plain miss");
    assert_eq!(report.misses, 1, "poisoned cell recomputes");
    assert_eq!(recomputed, fresh, "recomputed stats match the original simulation");

    // The recompute healed the store: next lookup hits again.
    cellcache::reset_counters();
    assert_eq!(run_workload(w, Scheme::Levioso, &config), fresh);
    let healed = cellcache::report();
    assert_eq!((healed.hits, healed.misses, healed.poisoned), (1, 0, 0));

    cellcache::configure(Cache::disabled());
}

#[test]
fn fingerprint_bump_marks_every_cell_dirty() {
    let _serial = lock();
    let root = tmp_root("bump");
    cellcache::configure(Cache::new(&root, "core-v1"));
    let (before, cold_report) = figure_bytes(2);
    assert!(cold_report.misses > 0);

    // The same store under a bumped fingerprint: nothing may be reused.
    cellcache::configure(Cache::new(&root, "core-v2"));
    let (after, bumped_report) = figure_bytes(2);
    assert_eq!(before, after, "results are identical either way — only the work moved");
    assert_eq!(bumped_report.hits, 0, "a fingerprint bump invalidates every cell");
    assert_eq!(bumped_report.misses, cold_report.misses, "all cells recompute");
    assert_eq!(
        bumped_report.miss_labels.len() as u64,
        bumped_report.misses,
        "each dirty cell is reported by label"
    );

    cellcache::configure(Cache::disabled());
}

#[test]
fn golden_manifest_matches_disk_and_current_core_rev() {
    let manifest = corerev::Manifest::load().expect(
        "results/golden/core_rev.json is missing or unparseable — \
         run `all --smoke --bless` and `all --paper --bless` to record it",
    );
    for tier in [Tier::Smoke, Tier::Paper] {
        let disk = corerev::disk_digest(tier).unwrap_or_else(|| {
            panic!("{} golden snapshots are missing — run `all --{0} --bless`", tier.name())
        });
        let rec = manifest.tier(tier).unwrap_or_else(|| {
            panic!("manifest has no record for the {} tier — re-bless it", tier.name())
        });
        assert_eq!(
            rec.digest,
            disk,
            "{} golden files do not match the manifest: goldens were edited without \
             `--bless` (the bless guard was bypassed) — re-bless the tier",
            tier.name()
        );
        assert_eq!(
            rec.core_rev,
            CORE_REV,
            "{} tier was blessed at CORE_REV {} but the core is now {} — re-bless both tiers \
             so goldens and cache namespace agree",
            tier.name(),
            rec.core_rev,
            CORE_REV
        );
    }
}
