//! Delay-attribution integration tests over the full smoke suite: blame
//! conservation (the sum of blamed cycles equals the simulator's own
//! `policy_delay_cycles`) and the no-observer-effect guarantee (a traced
//! run returns the same statistics as an untraced one) on every
//! `(scheme, workload)` cell.

use levioso_bench::attrib::run_workload_attributed;
use levioso_bench::{run_workload, Sweep};
use levioso_core::Scheme;
use levioso_uarch::CoreConfig;
use levioso_workloads::{suite, Scale, Workload};

#[test]
fn blame_is_conserved_and_invisible_on_every_smoke_cell() {
    let config = CoreConfig::default();
    let workloads = suite(Scale::Smoke);
    let cells: Vec<(Scheme, &Workload)> =
        Scheme::ALL.iter().flat_map(|&scheme| workloads.iter().map(move |w| (scheme, w))).collect();
    let results = Sweep::from_env().map(&cells, |&(scheme, w), _rng| {
        let untraced = run_workload(w, scheme, &config);
        // Asserts blamed_cycles == policy_delay_cycles internally.
        let (traced, attrib) = run_workload_attributed(w, scheme, &config);
        assert_eq!(
            untraced, traced,
            "{} under {scheme}: attaching a sink changed the statistics",
            w.name
        );
        // Per-kind counters partition the same total.
        assert_eq!(
            attrib.kind_cycles.iter().sum::<u64>() + attrib.unattributed_cycles,
            attrib.blamed_cycles(),
            "{} under {scheme}: kind counters do not partition the blame",
            w.name
        );
        (scheme, attrib)
    });
    // The protected schemes must blame something somewhere in the suite,
    // and the unsafe baseline must blame nothing anywhere.
    for &scheme in &Scheme::ALL {
        let total: u64 =
            results.iter().filter(|(s, _)| *s == scheme).map(|(_, a)| a.blamed_cycles()).sum();
        if scheme == Scheme::Unsafe {
            assert_eq!(total, 0, "the unsafe baseline delays nothing");
        } else {
            assert!(total > 0, "{scheme} never delayed anything across the smoke suite");
        }
    }
}

#[test]
fn attribution_rules_carry_the_scheme_vocabulary() {
    let pairs = [
        (Scheme::Levioso, "levioso:"),
        (Scheme::Fence, "fence:"),
        (Scheme::ExecuteDelay, "execute-delay:"),
        (Scheme::CommitDelay, "commit-delay:"),
        (Scheme::Stt, "stt:"),
    ];
    let schemes: Vec<Scheme> = pairs.iter().map(|&(s, _)| s).collect();
    let report = levioso_bench::attribution_report(&Sweep::from_env(), Scale::Smoke, &schemes);
    for ((scheme, attrib), (_, prefix)) in report.iter().zip(&pairs) {
        assert!(
            attrib.rules.keys().any(|r| r.starts_with(prefix)),
            "{scheme}: expected a `{prefix}*` rule somewhere in the suite, got {:?}",
            attrib.rules.keys().collect::<Vec<_>>()
        );
    }
}
