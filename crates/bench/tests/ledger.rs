//! End-to-end contracts for the run ledger and the `levhist` sentinel —
//! the three behaviors the acceptance criteria name, exercised through
//! real spawned binaries rather than library calls:
//!
//! 1. a ledger of 3+ real appended runs passes `levhist --check`;
//! 2. an injected synthetic throughput regression fails it (nonzero
//!    exit, offending series named);
//! 3. a ledger with fewer than the minimum comparable samples refuses
//!    to pass vacuously (exit 4, not 0).
//!
//! Plus the corrupt-ledger discipline: a garbage line is a hard error
//! (exit 2) that names the ledger line, never a silent skip.

use levioso_support::ledger;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("levioso-ledger-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One real measured run: `fig1_motivation --smoke --no-cache --quiet`
/// with results (and therefore the ledger) redirected into `results`.
/// `--no-cache` keeps every cell a genuine recompute, so the appended
/// record carries a real throughput sample.
fn measured_run(results: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_fig1_motivation"))
        .args(["--smoke", "--no-cache", "--quiet", "--threads", "2"])
        .env("LEVIOSO_RESULTS_DIR", results)
        .output()
        .expect("spawn fig1_motivation");
    assert!(out.status.success(), "measured run failed: {}", String::from_utf8_lossy(&out.stderr));
}

fn levhist(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_levhist")).args(args).output().expect("spawn levhist")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn real_runs_pass_injection_fails_and_thin_history_is_vacuous() {
    let base = tmpdir("e2e");
    let results = base.join("results");
    // Four identical measured runs: the fourth is judged against a
    // 3-point window, which keeps the MAD meaningful under timing noise.
    for _ in 0..4 {
        measured_run(&results);
    }
    let path = results.join("ledger.jsonl");
    let records = ledger::load(&path).expect("ledger parses");
    assert_eq!(records.len(), 4, "each run appends exactly one record");
    for r in &records {
        assert_eq!(r.source, "fig1_motivation");
        assert_eq!(r.tier, "smoke");
        assert_eq!(r.threads, 2);
        assert!(r.cells > 0 && r.busy_seconds > 0.0, "--no-cache runs must measure throughput");
    }
    let ledger_arg = path.to_str().unwrap();

    // 1. Real history passes, and says what it judged.
    let pass = levhist(&["--ledger", ledger_arg, "--check"]);
    let pass_out = stdout_of(&pass);
    assert!(
        pass.status.code() == Some(0),
        "healthy ledger must pass: exit={:?}\n{pass_out}{}",
        pass.status.code(),
        stderr_of(&pass)
    );
    assert!(pass_out.contains("LEDGER PASS"), "{pass_out}");
    assert!(pass_out.contains("kilocycles_per_busy_sec[fig1_motivation smoke t2]"), "{pass_out}");

    // 2. Inject a synthetic regression into a scratch copy; the sentinel
    //    must go red and name the degraded series and its ledger line.
    let degraded = base.join("ledger-regressed.jsonl");
    std::fs::copy(&path, &degraded).unwrap();
    let degraded_arg = degraded.to_str().unwrap();
    let inject = levhist(&["--ledger", degraded_arg, "--inject-regression"]);
    assert!(inject.status.success(), "inject failed: {}", stderr_of(&inject));
    let red = levhist(&["--ledger", degraded_arg, "--check"]);
    let red_out = stdout_of(&red);
    assert_eq!(
        red.status.code(),
        Some(1),
        "injected regression must fail the check\n{red_out}{}",
        stderr_of(&red)
    );
    assert!(red_out.contains("LEDGER REGRESSION"), "{red_out}");
    assert!(red_out.contains("kilocycles_per_busy_sec[fig1_motivation smoke t2]"), "{red_out}");
    assert!(red_out.contains("ledger line 5"), "the offending record is named: {red_out}");

    // 3. Thin history refuses to report a pass: two records are below
    //    MIN_SAMPLES for every series, so the check is vacuous (exit 4).
    let thin = base.join("ledger-thin.jsonl");
    let two_lines: String =
        std::fs::read_to_string(&path).unwrap().lines().take(2).map(|l| format!("{l}\n")).collect();
    std::fs::write(&thin, two_lines).unwrap();
    let vacuous = levhist(&["--ledger", thin.to_str().unwrap(), "--check"]);
    assert_eq!(vacuous.status.code(), Some(4), "thin history must not read as green");
    assert!(stderr_of(&vacuous).contains("vacuous"), "{}", stderr_of(&vacuous));

    // Corrupt ledgers are a hard error that names the line, not a skip.
    let corrupt = base.join("ledger-corrupt.jsonl");
    let mut text = std::fs::read_to_string(&path).unwrap();
    text.push_str("{ not a record\n");
    std::fs::write(&corrupt, &text).unwrap();
    let bad = levhist(&["--ledger", corrupt.to_str().unwrap(), "--check"]);
    assert_eq!(bad.status.code(), Some(2), "corrupt ledger is an IO-class failure");
    assert!(stderr_of(&bad).contains(":5:"), "error names the corrupt line: {}", stderr_of(&bad));

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn trends_render_and_json_modes_cover_the_same_series() {
    let base = tmpdir("trends");
    let results = base.join("results");
    measured_run(&results);
    let path = results.join("ledger.jsonl");
    let ledger_arg = path.to_str().unwrap();

    let table = levhist(&["--ledger", ledger_arg]);
    assert!(table.status.success());
    let table_out = stdout_of(&table);
    assert!(table_out.contains("perf trajectory"), "{table_out}");
    assert!(table_out.contains("kilocycles_per_busy_sec[fig1_motivation smoke t2]"), "{table_out}");

    let json = levhist(&["--ledger", ledger_arg, "--once", "--json"]);
    assert!(json.status.success());
    let doc = levioso_support::Json::parse(&stdout_of(&json)).expect("trends JSON parses");
    assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("levioso-ledger-trends/1"));
    let series = doc.get("series").and_then(|s| s.as_arr()).expect("series array");
    assert!(!series.is_empty());
    for s in series {
        // One record per series: present but below the check threshold.
        assert_eq!(s.get("checkable").and_then(|c| c.as_bool()), Some(false));
        assert_eq!(s.get("source").and_then(|v| v.as_str()), Some("fig1_motivation"));
    }

    // An empty ledger renders the hint instead of an empty table.
    let empty = base.join("empty.jsonl");
    std::fs::write(&empty, "").unwrap();
    let hint = levhist(&["--ledger", empty.to_str().unwrap()]);
    assert!(hint.status.success());
    assert!(stdout_of(&hint).contains("no measurable series yet"), "{}", stdout_of(&hint));

    let _ = std::fs::remove_dir_all(&base);
}
