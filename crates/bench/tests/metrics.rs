//! Observer-effect neutrality: telemetry must be strictly observational.
//!
//! The registry's gate (`LEVIOSO_METRICS` / `metrics::set_enabled`) turns
//! pure-telemetry call sites on and off; nothing it gates may influence a
//! result. This test flips the gate in-process and pins that figure
//! renders and their JSON are byte-identical with metrics on and off, at
//! one and at four worker threads — plus that two snapshots of an
//! untouched registry are byte-identical (no timestamps, no iteration-
//! order dependence), which is what makes the `METRICS_run.json` mirror
//! diffable.
//!
//! One test function on purpose: `set_enabled` mutates process-global
//! state, and the default harness runs a file's tests concurrently.

use levioso_bench::{cellcache, Sweep, Tier};
use levioso_support::{metrics, Cache};

#[test]
fn telemetry_gate_never_perturbs_results_and_snapshots_are_stable() {
    // Private temp cache so this test neither reads nor warms the repo's
    // shared sweep-cache (results must be identical either way, but the
    // cache split in play should be this test's own).
    let root =
        std::env::temp_dir().join(format!("levioso-metrics-neutrality-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    cellcache::configure(Cache::new(&root, "metrics-neutrality-v1"));

    let scale = Tier::Smoke.scale();
    let mut runs: Vec<(bool, usize, String, String)> = Vec::new();
    for enabled in [true, false] {
        metrics::set_enabled(enabled);
        for threads in [1usize, 4] {
            let sweep = Sweep::new(threads);
            let f = levioso_bench::motivation_figure(&sweep, scale);
            runs.push((enabled, threads, f.render(), f.to_json()));
        }
    }
    metrics::set_enabled(true);
    let (_, _, render0, json0) = &runs[0];
    for (enabled, threads, render, json) in &runs[1..] {
        assert_eq!(render, render0, "figure render drifted at metrics={enabled} threads={threads}");
        assert_eq!(json, json0, "figure JSON drifted at metrics={enabled} threads={threads}");
    }

    // The core identity the goldens are keyed by must not depend on the
    // telemetry gate either.
    metrics::set_enabled(false);
    let fp_off = levioso_uarch::core_fingerprint();
    metrics::set_enabled(true);
    assert_eq!(levioso_uarch::core_fingerprint(), fp_off);

    // Snapshot determinism: two back-to-back snapshots of an untouched
    // registry are byte-identical, and emitting is order-stable.
    let a = metrics::snapshot_text();
    let b = metrics::snapshot_text();
    assert_eq!(a, b, "idle registry snapshots must be byte-identical");
    assert!(a.contains("\"schema\": \"levioso-metrics/1\""), "{a}");

    cellcache::configure(Cache::disabled());
    let _ = std::fs::remove_dir_all(&root);
}
