//! The golden regression gate as tests: recompute the shape figures and
//! compare them against the recorded snapshots in `results/golden/`.
//!
//! The smoke-tier test runs on every `cargo test --workspace` (the sweeps
//! are bit-deterministic, so opt level doesn't move the numbers). The
//! paper-tier test replays the full evaluation settings and is `#[ignore]`d
//! for time; CI covers the same code path at smoke tier, and
//! `cargo test -p levioso-bench -- --ignored` (or `all --paper --check`)
//! runs the full gate on demand.

use levioso_bench::{gate, Sweep, Tier};

/// Computes the tier's shape figures, asserts the shape invariants hold,
/// and asserts every cell matches its golden snapshot.
fn assert_tier_clean(tier: Tier) {
    let sweep = Sweep::from_env();
    let figures = gate::shape_figures(&sweep, tier);
    let violations = gate::shape_violations(&figures);
    assert!(violations.is_empty(), "shape invariants violated:\n{}", violations.join("\n"));
    let report = gate::check_figures(&figures, tier);
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.cells_checked > 100, "suspiciously few cells: {}", report.cells_checked);
}

#[test]
fn smoke_figures_match_their_golden_snapshots() {
    assert_tier_clean(Tier::Smoke);
}

#[test]
#[ignore = "full paper-tier sweep (~8 min on one core); run with --ignored or `all --paper --check`"]
fn paper_figures_match_their_golden_snapshots_at_full_settings() {
    assert_tier_clean(Tier::Paper);
}
