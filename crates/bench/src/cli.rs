//! Shared CLI contracts and report plumbing for the experiment binaries.
//!
//! Every fig/table binary includes `src/util.rs` as its own module for
//! argument parsing; the pieces that must be *identical across binaries*
//! (error messages asserted by tests, the results-directory anchor, the
//! throughput-snapshot renderer the server reuses) live here in the
//! library so there is exactly one definition.

use crate::{Throughput, Tier};
use std::path::{Path, PathBuf};

/// The one mutual-exclusion message every binary prints for
/// `--no-cache --resume` (asserted verbatim by `tests/cli.rs`).
pub const RESUME_NO_CACHE_CONFLICT: &str =
    "--resume needs the cell cache; it cannot be combined with --no-cache";

/// The message every binary prints when `--resume` is given but the
/// environment disabled the cache.
pub const RESUME_CACHE_DISABLED: &str =
    "--resume needs the cell cache, but LEVIOSO_SWEEP_CACHE=off disabled it";

/// Parses a tier name as used by the job protocol and `LEVIOSO_SCALE`.
pub fn tier_from_name(name: &str) -> Option<Tier> {
    match name {
        "smoke" => Some(Tier::Smoke),
        "paper" => Some(Tier::Paper),
        _ => None,
    }
}

/// Tier selected by the `LEVIOSO_SCALE` environment variable
/// (`smoke`/`paper`; default `paper`), overridable by `--smoke`/`--paper`.
pub fn tier_from_env() -> Tier {
    match std::env::var("LEVIOSO_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => Tier::Smoke,
        _ => Tier::Paper,
    }
}

/// The `results/` directory every binary writes into: the repo root's by
/// default (anchored at the crate manifest, so output lands in the repo
/// regardless of working directory), relocatable via `LEVIOSO_RESULTS_DIR`
/// (integration tests point it at a temp dir so spawned binaries never
/// touch the committed snapshots).
pub fn results_dir() -> PathBuf {
    std::env::var("LEVIOSO_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// Extracts the raw text of a `"key": { ... }` object field from a JSON
/// document by balanced-brace scan. Sufficient for the flat numeric
/// objects `BENCH_sim_throughput.json` stores (no `{`/`}` inside strings).
pub fn json_object_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a `"key": "value"` string field (no escape handling — the
/// throughput snapshot only stores identifier-like strings).
pub fn json_str_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a `"key": true|false` field.
pub fn json_bool_field(doc: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts a `"key": <number>` field.
pub fn json_num_field(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .char_indices()
        .find(|(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .map_or(rest.len(), |(i, _)| i);
    rest[..end].parse().ok()
}

/// Renders `results/BENCH_sim_throughput.json`: the current run's
/// simulator-throughput snapshot (including the sweep-cache split — the
/// meter only samples freshly computed cells, so `perfcheck` needs the
/// hit/miss counts to judge the sample; `l1_hits` is the in-memory hot
/// tier's share, zero outside serve mode) plus the preserved `baseline`
/// object (the pre-change reference recorded by `scripts/perf.sh`; `null`
/// until one is recorded).
pub fn throughput_json(
    t: &Throughput,
    tier: Tier,
    threads: usize,
    wall_seconds: f64,
    cache: &levioso_support::CacheReport,
    cache_enabled: bool,
    baseline: Option<&str>,
) -> String {
    let current = format!(
        "{{\n    \"tier\": \"{}\",\n    \"threads\": {},\n    \"cells\": {},\n    \
         \"sim_cycles\": {},\n    \"retired_instrs\": {},\n    \"busy_seconds\": {:.3},\n    \
         \"wall_seconds\": {:.3},\n    \"cells_per_busy_sec\": {:.3},\n    \
         \"kilocycles_per_busy_sec\": {:.3},\n    \"retired_per_busy_sec\": {:.3},\n    \
         \"cache\": {{ \"enabled\": {}, \"hits\": {}, \"l1_hits\": {}, \"misses\": {}, \
         \"poisoned\": {} }}\n  }}",
        tier.name(),
        threads,
        t.cells,
        t.sim_cycles,
        t.retired,
        t.busy_seconds(),
        wall_seconds,
        t.cells_per_busy_sec(),
        t.kilocycles_per_busy_sec(),
        t.retired_per_busy_sec(),
        cache_enabled,
        cache.hits,
        cache.l1_hits,
        cache.misses,
        cache.poisoned,
    );
    format!(
        "{{\n  \"schema\": \"levioso-sim-throughput/2\",\n  \"current\": {},\n  \"baseline\": {}\n}}\n",
        current,
        baseline.unwrap_or("null"),
    )
}

/// Renders the one end-of-run summary line every fig/table binary prints
/// to stderr (asserted verbatim by `tests/cli.rs`). Fed from the
/// telemetry registry: `cells` is the `sweep_cells_total` counter, the
/// cache split combines the bench and nisec cell caches (whose reports
/// read the registered `sweep_cache_*` counters), and only `wall_seconds`
/// comes from the caller.
pub fn run_summary(wall_seconds: f64) -> String {
    let cells = levioso_support::metrics::counter_value("sweep_cells_total", &[]);
    let bench = crate::cellcache::report();
    let nisec = levioso_nisec::cellcache::report();
    let l1 = bench.l1_hits + nisec.l1_hits;
    let l2 = (bench.hits - bench.l1_hits) + (nisec.hits - nisec.l1_hits);
    format!(
        "run-summary: cells={cells} l1_hits={l1} l2_hits={l2} misses={} poisoned={} \
         wall_seconds={wall_seconds:.3}",
        bench.misses + nisec.misses,
        bench.poisoned + nisec.poisoned,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_round_trip() {
        assert_eq!(tier_from_name("smoke"), Some(Tier::Smoke));
        assert_eq!(tier_from_name("paper"), Some(Tier::Paper));
        assert_eq!(tier_from_name(Tier::Smoke.name()), Some(Tier::Smoke));
        assert_eq!(tier_from_name("Paper"), None);
        assert_eq!(tier_from_name(""), None);
    }

    #[test]
    fn throughput_json_carries_the_tier_split() {
        let t = Throughput { cells: 3, sim_cycles: 9_000, retired: 4_500, busy_nanos: 1_000_000 };
        let cache = levioso_support::CacheReport {
            hits: 10,
            l1_hits: 7,
            misses: 3,
            poisoned: 0,
            stores: 3,
            miss_labels: vec![],
        };
        let doc = throughput_json(&t, Tier::Smoke, 8, 1.5, &cache, true, None);
        assert_eq!(json_str_field(&doc, "schema").as_deref(), Some("levioso-sim-throughput/2"));
        let current = json_object_field(&doc, "current").unwrap();
        let inner = json_object_field(&current, "cache").unwrap();
        assert_eq!(json_num_field(&inner, "hits"), Some(10.0));
        assert_eq!(json_num_field(&inner, "l1_hits"), Some(7.0));
        assert_eq!(json_num_field(&inner, "misses"), Some(3.0));
        assert_eq!(json_bool_field(&inner, "enabled"), Some(true));
        // The document must stay real JSON, not just grep-compatible.
        levioso_support::Json::parse(&doc).expect("throughput snapshot parses");
    }
}
