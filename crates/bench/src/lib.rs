//! # levioso-bench — experiment harnesses for every figure and table
//!
//! One function per experiment of the evaluation (see DESIGN.md §4 for the
//! reconstructed index), shared between the `fig*`/`table*` binaries and
//! the `levioso-support` wall-clock microbenchmarks (`benches/microbench.rs`):
//!
//! | id | function | binary |
//! |----|----------|--------|
//! | T1 | [`config_table`] | `table1_config` |
//! | F1 | [`motivation_figure`] | `fig1_motivation` |
//! | F2 | [`overhead_figure`] | `fig2_overhead` |
//! | F3 | [`ablation_figure`] | `fig3_ablation` |
//! | F4 | [`rob_sweep_figure`] | `fig4_rob_sweep` |
//! | F5 | [`mem_sweep_figure`] | `fig5_mem_sweep` |
//! | T2 | [`security_table`] | `table2_security` |
//! | T3 | [`annotation_table`] | `table3_annotation` |
//! | T4 | [`noninterference_report`] | `table4_noninterference` |
//!
//! Every figure decomposes into independent `(workload, scheme, config)`
//! simulation cells that a [`Sweep`] executor fans out across threads;
//! aggregation happens in fixed cell order, so the emitted numbers are
//! bit-identical at any thread count (see [`sweep`]).
//!
//! Run everything with `cargo run -p levioso-bench --release --bin all`
//! (`--threads N` to size the pool, `--smoke` for the CI tier, `--check`
//! to gate against the golden snapshots in `results/golden/` — see
//! [`gate`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use levioso_core::Scheme;
use levioso_stats::{geomean, Figure, Table};
use levioso_uarch::{CoreConfig, SimStats, TraceSink};
use levioso_workloads::{suite, Scale, Workload};
use std::collections::HashMap;

pub mod attrib;
pub mod cellcache;
pub mod cli;
pub mod corerev;
pub mod gate;
pub mod ledger;
pub mod serve;
pub mod sweep;
pub mod throughput;
pub mod trace_export;

pub use attrib::{attribution_report, render_attribution, AttribSink, AttribStats};
pub use gate::Tier;
pub use sweep::Sweep;
pub use throughput::Throughput;
pub use trace_export::{validate_chrome_trace, ChromeTraceSink, TraceSummary};

/// Runs one workload under one scheme/config and returns its statistics,
/// consulting the sweep-cell cache first (see [`cellcache`]).
///
/// On a cache **miss** the cell simulates, reports its simulated work and
/// host busy time to the global [`throughput`] meter (the timing happens
/// here, inside the worker, so busy-time rates are comparable across
/// thread counts), and persists its stats. On a **hit** the stored stats
/// come back bit-identical to a fresh simulation — the simulator is
/// deterministic and the envelope is integrity-checked — and the
/// throughput meter is deliberately *not* fed: perf samples must only
/// come from freshly computed cells (asserted by `perfcheck`).
///
/// # Panics
///
/// Panics if the simulation fails or the checksum diverges from the
/// reference interpreter — an experiment on wrong results is meaningless.
pub fn run_workload(w: &Workload, scheme: Scheme, config: &CoreConfig) -> SimStats {
    let key = cellcache::workload_key(w, scheme.name(), config, "");
    let label = cellcache::workload_label(w, scheme.name(), "");
    if let Some(stats) =
        cellcache::with(|c| c.lookup(&label, &key)).and_then(|doc| cellcache::stats_from_json(&doc))
    {
        return stats;
    }
    let cell_start = std::time::Instant::now();
    let mut program = w.program.clone();
    scheme.prepare(&mut program);
    let mut sim = levioso_uarch::Simulator::new(&program, config.clone());
    w.apply_memory(&mut sim);
    if null_trace_enabled() {
        sim.attach_tracer(Box::new(levioso_uarch::NullSink));
    }
    let stats = sim
        .run(scheme.policy().as_ref())
        .unwrap_or_else(|e| panic!("{} under {scheme}: {e}", w.name));
    let got = sim.mem.read_i64(w.checksum_addr);
    let expected = w.expected_checksum();
    assert_eq!(got, expected, "{} under {scheme}: checksum mismatch", w.name);
    let busy = cell_start.elapsed();
    throughput::record(stats.cycles, stats.committed, busy);
    cellcache::with(|c| {
        c.store(&label, &key, &cellcache::stats_to_json(&stats), busy.as_nanos() as u64)
    });
    stats
}

/// Parses a `LEVIOSO_TRACE` value: unset or empty means off, `null` means
/// the null-sink A/B mode, anything else is an error. Rejecting unknown
/// values matters because this variable changes what `scripts/perf.sh --ab-trace`
/// measures — a typo (`LEVIOSO_TRACE=nulll`) silently measuring the wrong
/// thing is worse than a crash.
fn parse_trace_env(value: Option<&str>) -> Result<bool, String> {
    match value {
        None | Some("") => Ok(false),
        Some("null") => Ok(true),
        Some(other) => Err(format!(
            "unknown LEVIOSO_TRACE value {other:?}: expected unset, empty, or \"null\""
        )),
    }
}

/// Whether `LEVIOSO_TRACE=null` asked every [`run_workload`] cell to run
/// with a [`levioso_uarch::NullSink`] attached. Used by
/// `scripts/perf.sh --ab-trace` to measure the hook overhead with the
/// tracing branches *taken*; results are unchanged either way (the null
/// sink observes but never perturbs).
///
/// # Panics
///
/// Panics on any other value of `LEVIOSO_TRACE` (see [`parse_trace_env`]).
fn null_trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        let value = std::env::var("LEVIOSO_TRACE").ok();
        parse_trace_env(value.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    })
}

/// Runs one workload with `sink` attached and returns the statistics
/// plus the sink (recover a concrete sink via
/// [`TraceSink::into_any`]). Unlike [`run_workload`] this does **not**
/// feed the global throughput meter: traced cells pay for their
/// observers and would skew the perf baseline.
///
/// # Panics
///
/// Panics if the simulation fails or the checksum diverges.
pub fn run_workload_traced(
    w: &Workload,
    scheme: Scheme,
    config: &CoreConfig,
    sink: Box<dyn TraceSink>,
) -> (SimStats, Box<dyn TraceSink>) {
    let mut program = w.program.clone();
    scheme.prepare(&mut program);
    let mut sim = levioso_uarch::Simulator::new(&program, config.clone());
    w.apply_memory(&mut sim);
    sim.attach_tracer(sink);
    let stats = sim
        .run(scheme.policy().as_ref())
        .unwrap_or_else(|e| panic!("{} under {scheme}: {e}", w.name));
    assert_eq!(
        sim.mem.read_i64(w.checksum_addr),
        w.expected_checksum(),
        "{} under {scheme}: checksum mismatch",
        w.name
    );
    let sink = sim.take_tracer().expect("attached above");
    (stats, sink)
}

/// One simulation cell of a normalized-runtime grid.
struct SimCell<'a> {
    config_idx: usize,
    workload_idx: usize,
    workload: &'a Workload,
    scheme: Scheme,
    config: &'a CoreConfig,
}

/// Per-scheme normalized runtime series — the building block of every
/// slowdown figure.
type SchemeSeries = Vec<(Scheme, Vec<(String, f64)>)>;

/// Runs the full `(config × workload × scheme)` grid in parallel and
/// returns, per config, the per-workload execution time normalized to the
/// unsafe baseline with a trailing geomean row — the aggregation every
/// slowdown figure uses.
///
/// Cells are enumerated in a fixed order (configs outermost, then
/// workloads, then the unsafe baseline followed by each non-unsafe
/// scheme), and aggregation walks that same order, so the output is
/// independent of thread count and completion order.
fn grid_runtimes(
    sweep: &Sweep,
    workloads: &[Workload],
    schemes: &[Scheme],
    configs: &[CoreConfig],
) -> Vec<SchemeSeries> {
    let mut cells: Vec<SimCell<'_>> = Vec::new();
    let mut index: HashMap<(usize, usize, Scheme), usize> = HashMap::new();
    for (ci, config) in configs.iter().enumerate() {
        for (wi, workload) in workloads.iter().enumerate() {
            for scheme in std::iter::once(Scheme::Unsafe)
                .chain(schemes.iter().copied().filter(|&s| s != Scheme::Unsafe))
            {
                index.insert((ci, wi, scheme), cells.len());
                cells.push(SimCell { config_idx: ci, workload_idx: wi, workload, scheme, config });
            }
        }
    }
    let costs: Vec<u64> = cells
        .iter()
        .map(|c| cellcache::estimate_workload_cost(c.workload, c.scheme.name(), c.config, ""))
        .collect();
    let stats = sweep.map_with_costs(&cells, &costs, |cell, _rng| {
        debug_assert!(cell.config_idx < configs.len() && cell.workload_idx < workloads.len());
        run_workload(cell.workload, cell.scheme, cell.config)
    });
    let cycles = |ci: usize, wi: usize, scheme: Scheme| -> f64 {
        stats[index[&(ci, wi, scheme)]].cycles as f64
    };
    configs
        .iter()
        .enumerate()
        .map(|(ci, _)| {
            schemes
                .iter()
                .map(|&scheme| {
                    let mut points: Vec<(String, f64)> = workloads
                        .iter()
                        .enumerate()
                        .map(|(wi, w)| {
                            let b = cycles(ci, wi, Scheme::Unsafe);
                            (w.name.to_string(), cycles(ci, wi, scheme) / b)
                        })
                        .collect();
                    let g = geomean(&points.iter().map(|(_, v)| *v).collect::<Vec<_>>());
                    points.push(("geomean".to_string(), g));
                    (scheme, points)
                })
                .collect()
        })
        .collect()
}

/// Per-workload execution-time normalized to the unsafe baseline for a set
/// of schemes, with a trailing geomean row. Cells run in parallel on
/// `sweep`; the result is identical at any thread count.
pub fn normalized_runtimes(
    sweep: &Sweep,
    workloads: &[Workload],
    schemes: &[Scheme],
    config: &CoreConfig,
) -> SchemeSeries {
    grid_runtimes(sweep, workloads, schemes, std::slice::from_ref(config))
        .pop()
        .expect("one config in, one result out")
}

/// **T1** — the simulated core configuration.
pub fn config_table() -> Table {
    let mut t = Table::new("T1: simulated core configuration", &["parameter", "value"]);
    for (k, v) in CoreConfig::default().table_rows() {
        t.push_row(vec![k, v]);
    }
    t
}

/// **F1** — motivation: conservative speculation shadow vs. true
/// dependencies, per workload (snapshot fractions and mean wait cycles).
pub fn motivation_figure(sweep: &Sweep, scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let costs: Vec<u64> = workloads
        .iter()
        .map(|w| cellcache::estimate_workload_cost(w, Scheme::Levioso.name(), &config, ""))
        .collect();
    let stats = sweep
        .map_with_costs(&workloads, &costs, |w, _rng| run_workload(w, Scheme::Levioso, &config));
    let mut shadow_frac = Vec::new();
    let mut true_frac = Vec::new();
    let mut shadow_wait = Vec::new();
    let mut true_wait = Vec::new();
    for (w, s) in workloads.iter().zip(&stats) {
        shadow_frac.push((w.name.to_string(), s.shadowed_fraction()));
        true_frac.push((w.name.to_string(), s.true_dep_fraction()));
        shadow_wait.push((w.name.to_string(), s.shadow_wait_per_instr()));
        true_wait.push((w.name.to_string(), s.true_wait_per_instr()));
    }
    let mut f = Figure::new(
        "F1: how much of the conservative speculation shadow is real?",
        "fraction / cycles per committed instruction",
    );
    f.push_series("shadowed-at-ready (conservative)", shadow_frac);
    f.push_series("true-dep-at-ready (levioso)", true_frac);
    f.push_series("wait-cycles (conservative)", shadow_wait);
    f.push_series("wait-cycles (levioso)", true_wait);
    f
}

/// **F2** — the headline overhead comparison: normalized execution time per
/// workload + geomean for the headline schemes.
pub fn overhead_figure(sweep: &Sweep, scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let mut f = Figure::new(
        "F2: execution time normalized to the unsafe out-of-order baseline",
        "slowdown (x)",
    );
    for (scheme, points) in normalized_runtimes(sweep, &workloads, &Scheme::HEADLINE, &config) {
        f.push_series(scheme.name(), points);
    }
    f
}

/// **F3** — Levioso ablation: full (hardware dataflow propagation) vs.
/// static (compile-time dataflow closure) vs. control-only (unsound; shown
/// as the precision upper bound).
pub fn ablation_figure(sweep: &Sweep, scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let schemes = [Scheme::Unsafe, Scheme::Levioso, Scheme::LeviosoStatic, Scheme::LeviosoCtrlOnly];
    let mut f = Figure::new(
        "F3: Levioso variants (levioso-ctrl-only is UNSOUND; precision bound only)",
        "slowdown (x)",
    );
    for (scheme, points) in normalized_runtimes(sweep, &workloads, &schemes, &config) {
        f.push_series(scheme.name(), points);
    }
    f
}

/// The kernels used by the sensitivity sweeps (a representative subset so
/// sweeps stay tractable).
pub fn sweep_kernels(scale: Scale) -> Vec<Workload> {
    suite(scale)
        .into_iter()
        .filter(|w| matches!(w.name, "filter_scan" | "hash_join" | "partition" | "binary_search"))
        .collect()
}

/// Shared shape of the two sensitivity sweeps (F4/F5): geomean slowdown of
/// the comprehensive schemes at each swept configuration. The whole
/// `(config × workload × scheme)` grid runs as one parallel wave.
fn sensitivity_figure(
    sweep: &Sweep,
    scale: Scale,
    title: &str,
    labeled_configs: &[(String, CoreConfig)],
) -> Figure {
    let workloads = sweep_kernels(scale);
    let schemes = [Scheme::CommitDelay, Scheme::ExecuteDelay, Scheme::Levioso];
    let configs: Vec<CoreConfig> = labeled_configs.iter().map(|(_, c)| c.clone()).collect();
    let per_config = grid_runtimes(sweep, &workloads, &schemes, &configs);
    let mut f = Figure::new(title, "slowdown (x)");
    let mut per_scheme: Vec<(Scheme, Vec<(String, f64)>)> =
        schemes.iter().map(|&s| (s, Vec::new())).collect();
    for ((label, _), runtimes) in labeled_configs.iter().zip(&per_config) {
        for (scheme, points) in runtimes {
            let g = points.last().expect("geomean row").1;
            per_scheme
                .iter_mut()
                .find(|(s, _)| s == scheme)
                .expect("scheme present")
                .1
                .push((label.clone(), g));
        }
    }
    for (scheme, points) in per_scheme {
        f.push_series(scheme.name(), points);
    }
    f
}

/// **F4** — sensitivity to reorder-buffer size: geomean slowdown of the
/// comprehensive schemes at each ROB size.
pub fn rob_sweep_figure(sweep: &Sweep, scale: Scale, rob_sizes: &[usize]) -> Figure {
    let configs: Vec<(String, CoreConfig)> = rob_sizes
        .iter()
        .map(|&rob| (rob.to_string(), CoreConfig::default().with_rob_size(rob)))
        .collect();
    sensitivity_figure(sweep, scale, "F4: geomean slowdown vs ROB size", &configs)
}

/// **F5** — sensitivity to memory latency: geomean slowdown of the
/// comprehensive schemes at each DRAM latency.
pub fn mem_sweep_figure(sweep: &Sweep, scale: Scale, dram_latencies: &[u64]) -> Figure {
    let configs: Vec<(String, CoreConfig)> = dram_latencies
        .iter()
        .map(|&lat| (lat.to_string(), CoreConfig::default().with_dram_latency(lat)))
        .collect();
    sensitivity_figure(sweep, scale, "F5: geomean slowdown vs DRAM latency", &configs)
}

/// **T2** — the security matrix: every scheme × every attack, measured by
/// actually running the receiver. (Serial: the matrix lives in
/// `levioso-attacks` and is cheap next to the performance sweeps.)
pub fn security_table() -> Table {
    let mut headers = vec!["scheme", "comprehensive?"];
    headers.extend(levioso_attacks::AttackKind::ALL.iter().map(|k| k.name()));
    let mut t =
        Table::new("T2: security evaluation (LEAK = receiver recovered the secret)", &headers);
    for row in levioso_attacks::security_matrix() {
        let mut cells = vec![
            row.scheme.name().to_string(),
            if row.scheme.comprehensive() { "yes" } else { "no" }.to_string(),
        ];
        cells.extend(row.leaks.iter().map(|&l| if l { "LEAK" } else { "blocked" }.to_string()));
        t.push_row(cells);
    }
    t
}

/// **T3** — annotation cost: static dependency-set sizes and hint bits per
/// workload, for both annotation flavours.
pub fn annotation_table(sweep: &Sweep, scale: Scale) -> Table {
    let mut t = Table::new(
        "T3: annotation cost (control-only / static-dataflow flavours)",
        &[
            "workload",
            "instrs",
            "deps/instr (ctrl)",
            "bits/instr (ctrl)",
            "deps/instr (static)",
            "bits/instr (static)",
            "max deps",
        ],
    );
    let workloads = suite(scale);
    let rows = sweep.map(&workloads, |w, _rng| {
        let mut ctrl = w.program.clone();
        levioso_compiler::annotate_with(
            &mut ctrl,
            &levioso_compiler::AnnotateConfig { static_dataflow: false },
        );
        let c = ctrl.annotations.as_ref().expect("annotated").cost();
        let mut full = w.program.clone();
        levioso_compiler::annotate_with(
            &mut full,
            &levioso_compiler::AnnotateConfig { static_dataflow: true },
        );
        let s = full.annotations.as_ref().expect("annotated").cost();
        vec![
            w.name.to_string(),
            c.instructions.to_string(),
            format!("{:.2}", c.deps_per_instr()),
            format!("{:.2}", c.bits_per_instr()),
            format!("{:.2}", s.deps_per_instr()),
            format!("{:.2}", s.bits_per_instr()),
            s.max_deps.max(c.max_deps).to_string(),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    t
}

/// **F6** (extension) — residual transient cache activity: squashed-
/// instruction fills per kilo-instruction under each headline scheme.
/// Zero for the delay-everything baselines; nonzero-but-benign for Levioso
/// (its performance edge); large for the unprotected core.
pub fn transient_fill_figure(sweep: &Sweep, scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let cells: Vec<(Scheme, &Workload)> = Scheme::HEADLINE
        .iter()
        .flat_map(|&scheme| workloads.iter().map(move |w| (scheme, w)))
        .collect();
    let costs: Vec<u64> = cells
        .iter()
        .map(|&(scheme, w)| cellcache::estimate_workload_cost(w, scheme.name(), &config, ""))
        .collect();
    let stats =
        sweep.map_with_costs(&cells, &costs, |&(scheme, w), _rng| run_workload(w, scheme, &config));
    let mut f = Figure::new(
        "F6: transient cache fills per kilo-instruction (residual speculative visibility)",
        "fills / kilo-instruction",
    );
    let mut cursor = cells.iter().zip(&stats);
    for scheme in Scheme::HEADLINE {
        let mut points: Vec<(String, f64)> = Vec::new();
        let mut total_fills = 0u64;
        let mut total_commits = 0u64;
        for _ in &workloads {
            let (&(cell_scheme, w), s) = cursor.next().expect("cell per (scheme, workload)");
            debug_assert_eq!(cell_scheme, scheme);
            total_fills += s.transient_fills;
            total_commits += s.committed;
            points.push((w.name.to_string(), s.transient_fills_pki()));
        }
        points.push((
            "overall".to_string(),
            if total_commits == 0 {
                0.0
            } else {
                total_fills as f64 * 1000.0 / total_commits as f64
            },
        ));
        f.push_series(scheme.name(), points);
    }
    f
}

/// The `extra` cache-key tag of an F7 capped cell.
fn cap_tag(cap: usize) -> String {
    if cap == usize::MAX {
        "cap=uncapped".to_string()
    } else {
        format!("cap={cap}")
    }
}

/// One F7 cell: Levioso with every dependency set larger than `cap`
/// collapsed to the conservative fallback. Cached under the `cap=` extra
/// tag; same hit/miss/throughput semantics as [`run_workload`].
///
/// # Panics
///
/// Panics if the simulation fails or the checksum diverges.
pub fn run_workload_capped(w: &Workload, cap: usize, config: &CoreConfig) -> SimStats {
    let tag = cap_tag(cap);
    let key = cellcache::workload_key(w, Scheme::Levioso.name(), config, &tag);
    let label = cellcache::workload_label(w, Scheme::Levioso.name(), &tag);
    if let Some(stats) =
        cellcache::with(|c| c.lookup(&label, &key)).and_then(|doc| cellcache::stats_from_json(&doc))
    {
        return stats;
    }
    let cell_start = std::time::Instant::now();
    let mut program = w.program.clone();
    Scheme::Levioso.prepare(&mut program);
    let full = program.annotations.clone().expect("annotated");
    program.annotations = Some(full.capped(cap));
    let mut sim = levioso_uarch::Simulator::new(&program, config.clone());
    w.apply_memory(&mut sim);
    let stats = sim
        .run(Scheme::Levioso.policy().as_ref())
        .unwrap_or_else(|e| panic!("{} cap {cap}: {e}", w.name));
    assert_eq!(
        sim.mem.read_i64(w.checksum_addr),
        w.expected_checksum(),
        "{} cap {cap}: checksum mismatch",
        w.name
    );
    let busy = cell_start.elapsed();
    throughput::record(stats.cycles, stats.committed, busy);
    cellcache::with(|c| {
        c.store(&label, &key, &cellcache::stats_to_json(&stats), busy.as_nanos() as u64)
    });
    stats
}

/// **F7** (extension) — annotation hint-budget sweep: geomean slowdown of
/// Levioso when every dependency set larger than the cap collapses to the
/// conservative fallback. Caps model finite ISA hint encodings; `usize::MAX`
/// is the uncapped reference.
pub fn annotation_cap_figure(sweep: &Sweep, scale: Scale, caps: &[usize]) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    // Cell order: all baselines first, then caps × workloads.
    let cells: Vec<(Option<usize>, &Workload)> = workloads
        .iter()
        .map(|w| (None, w))
        .chain(caps.iter().flat_map(|&cap| workloads.iter().map(move |w| (Some(cap), w))))
        .collect();
    let costs: Vec<u64> = cells
        .iter()
        .map(|&(cap, w)| match cap {
            None => cellcache::estimate_workload_cost(w, Scheme::Unsafe.name(), &config, ""),
            Some(cap) => {
                cellcache::estimate_workload_cost(w, Scheme::Levioso.name(), &config, &cap_tag(cap))
            }
        })
        .collect();
    let cycles = sweep.map_with_costs(&cells, &costs, |&(cap, w), _rng| match cap {
        None => run_workload(w, Scheme::Unsafe, &config).cycles as f64,
        Some(cap) => run_workload_capped(w, cap, &config).cycles as f64,
    });
    let baselines = &cycles[..workloads.len()];
    let mut f = Figure::new(
        "F7: levioso geomean slowdown vs annotation budget (max deps encodable per instruction)",
        "slowdown (x)",
    );
    let mut points = Vec::new();
    for (ci, &cap) in caps.iter().enumerate() {
        let capped = &cycles[workloads.len() * (ci + 1)..workloads.len() * (ci + 2)];
        let ratios: Vec<f64> = capped.iter().zip(baselines).map(|(c, b)| c / b).collect();
        let label = if cap == usize::MAX { "uncapped".to_string() } else { cap.to_string() };
        points.push((label, geomean(&ratios)));
    }
    f.push_series("levioso (capped)", points);
    f
}

/// **T4** — the two-run noninterference fuzzing matrix: every scheme ×
/// every observer contract over seeded program/secret-pair cells (see
/// `levioso-nisec`). `threads = 0` honors `LEVIOSO_THREADS`.
pub fn noninterference_report(tier: Tier, threads: usize) -> levioso_nisec::FuzzReport {
    let config = match tier {
        Tier::Smoke => levioso_nisec::FuzzConfig::smoke(threads),
        Tier::Paper => levioso_nisec::FuzzConfig::paper(threads),
    };
    levioso_nisec::fuzz(&config, &Scheme::ALL)
}

/// Extracts the geomean slowdown of `scheme` from an overhead-style figure.
pub fn geomean_of(figure: &Figure, scheme: Scheme) -> Option<f64> {
    figure
        .series
        .iter()
        .find(|s| s.name == scheme.name())?
        .points
        .iter()
        .find(|(x, _)| x == "geomean")
        .map(|(_, v)| *v)
}

/// Convenience wrapper used by examples/tests: overhead (slowdown − 1) of
/// one scheme on one workload at the given scale.
pub fn single_overhead(name: &str, scheme: Scheme, scale: Scale) -> f64 {
    let w = suite(scale).into_iter().find(|w| w.name == name).expect("known workload");
    let base = run_workload(&w, Scheme::Unsafe, &CoreConfig::default()).cycles as f64;
    let s = run_workload(&w, scheme, &CoreConfig::default()).cycles as f64;
    s / base - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_has_all_rows() {
        let t = config_table();
        assert_eq!(t.rows.len(), 7);
        assert!(t.render().contains("ROB"));
    }

    #[test]
    fn t3_reports_all_workloads() {
        let t = annotation_table(&Sweep::new(2), Scale::Smoke);
        assert_eq!(t.rows.len(), 12);
    }

    #[test]
    fn f2_smoke_has_expected_shape() {
        let f = overhead_figure(&Sweep::from_env(), Scale::Smoke);
        assert_eq!(f.series.len(), Scheme::HEADLINE.len());
        let lev = geomean_of(&f, Scheme::Levioso).unwrap();
        let exe = geomean_of(&f, Scheme::ExecuteDelay).unwrap();
        let com = geomean_of(&f, Scheme::CommitDelay).unwrap();
        let fen = geomean_of(&f, Scheme::Fence).unwrap();
        assert!(lev < exe, "levioso {lev:.3} < execute-delay {exe:.3}");
        assert!(exe < com, "execute-delay {exe:.3} < commit-delay {com:.3}");
        // Fence gates *everything* at the same release point execute-delay
        // gates only transmits, so it must cost at least as much. (Its
        // ordering vs commit-delay is workload-dependent.)
        assert!(exe < fen, "execute-delay {exe:.3} < fence {fen:.3}");
        assert!(lev >= 0.99, "slowdowns are >= 1");
    }

    #[test]
    fn trace_env_parsing_rejects_unknown_values() {
        assert_eq!(parse_trace_env(None), Ok(false));
        assert_eq!(parse_trace_env(Some("")), Ok(false));
        assert_eq!(parse_trace_env(Some("null")), Ok(true));
        for bad in ["nulll", "NULL", "1", "off", " null"] {
            let e = parse_trace_env(Some(bad)).unwrap_err();
            assert!(e.contains(&format!("{bad:?}")), "error names the bad value: {e}");
        }
    }

    #[test]
    fn run_workload_validates_checksums() {
        let w = suite(Scale::Smoke).remove(0);
        let s = run_workload(&w, Scheme::Levioso, &CoreConfig::default());
        assert!(s.committed > 0);
    }

    #[test]
    fn normalized_runtimes_identical_across_thread_counts() {
        // A deliberately small grid (2 workloads × 2 schemes + baselines)
        // so this stays a unit test; the full-sweep equivalent is the
        // golden regression suite in tests/golden.rs.
        let workloads: Vec<Workload> = suite(Scale::Smoke).into_iter().take(2).collect();
        let schemes = [Scheme::Unsafe, Scheme::DelayOnMiss];
        let config = CoreConfig::default();
        let one = normalized_runtimes(&Sweep::new(1), &workloads, &schemes, &config);
        let four = normalized_runtimes(&Sweep::new(4), &workloads, &schemes, &config);
        let eight = normalized_runtimes(&Sweep::new(8), &workloads, &schemes, &config);
        assert_eq!(one, four, "1-thread vs 4-thread sweep must be bit-identical");
        assert_eq!(one, eight, "1-thread vs 8-thread sweep must be bit-identical");
        // The unsafe series normalizes to exactly 1.0 everywhere.
        assert!(one[0].1.iter().all(|(_, v)| *v == 1.0));
    }
}
