//! # levioso-bench — experiment harnesses for every figure and table
//!
//! One function per experiment of the evaluation (see DESIGN.md §4 for the
//! reconstructed index), shared between the `fig*`/`table*` binaries and
//! the `levioso-support` wall-clock microbenchmarks (`benches/microbench.rs`):
//!
//! | id | function | binary |
//! |----|----------|--------|
//! | T1 | [`config_table`] | `table1_config` |
//! | F1 | [`motivation_figure`] | `fig1_motivation` |
//! | F2 | [`overhead_figure`] | `fig2_overhead` |
//! | F3 | [`ablation_figure`] | `fig3_ablation` |
//! | F4 | [`rob_sweep_figure`] | `fig4_rob_sweep` |
//! | F5 | [`mem_sweep_figure`] | `fig5_mem_sweep` |
//! | T2 | [`security_table`] | `table2_security` |
//! | T3 | [`annotation_table`] | `table3_annotation` |
//!
//! Run everything with `cargo run -p levioso-bench --release --bin all`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use levioso_core::{Scheme};
use levioso_stats::{geomean, Figure, Table};
use levioso_uarch::{CoreConfig, SimStats};
use levioso_workloads::{suite, Scale, Workload};

/// Runs one workload under one scheme/config and returns its statistics.
///
/// # Panics
///
/// Panics if the simulation fails or the checksum diverges from the
/// reference interpreter — an experiment on wrong results is meaningless.
pub fn run_workload(w: &Workload, scheme: Scheme, config: &CoreConfig) -> SimStats {
    let mut program = w.program.clone();
    scheme.prepare(&mut program);
    let mut sim = levioso_uarch::Simulator::new(&program, config.clone());
    w.apply_memory(&mut sim);
    let stats = sim
        .run(scheme.policy().as_ref())
        .unwrap_or_else(|e| panic!("{} under {scheme}: {e}", w.name));
    let got = sim.mem.read_i64(w.checksum_addr);
    let expected = w.expected_checksum();
    assert_eq!(got, expected, "{} under {scheme}: checksum mismatch", w.name);
    stats
}

/// Per-workload execution-time normalized to the unsafe baseline for a set
/// of schemes, with a trailing geomean row.
fn normalized_runtimes(
    workloads: &[Workload],
    schemes: &[Scheme],
    config: &CoreConfig,
) -> Vec<(Scheme, Vec<(String, f64)>)> {
    let baselines: Vec<f64> = workloads
        .iter()
        .map(|w| run_workload(w, Scheme::Unsafe, config).cycles as f64)
        .collect();
    schemes
        .iter()
        .map(|&scheme| {
            let mut points: Vec<(String, f64)> = workloads
                .iter()
                .zip(&baselines)
                .map(|(w, &b)| {
                    let cycles = if scheme == Scheme::Unsafe {
                        b
                    } else {
                        run_workload(w, scheme, config).cycles as f64
                    };
                    (w.name.to_string(), cycles / b)
                })
                .collect();
            let g = geomean(&points.iter().map(|(_, v)| *v).collect::<Vec<_>>());
            points.push(("geomean".to_string(), g));
            (scheme, points)
        })
        .collect()
}

/// **T1** — the simulated core configuration.
pub fn config_table() -> Table {
    let mut t = Table::new("T1: simulated core configuration", &["parameter", "value"]);
    for (k, v) in CoreConfig::default().table_rows() {
        t.push_row(vec![k, v]);
    }
    t
}

/// **F1** — motivation: conservative speculation shadow vs. true
/// dependencies, per workload (snapshot fractions and mean wait cycles).
pub fn motivation_figure(scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let mut shadow_frac = Vec::new();
    let mut true_frac = Vec::new();
    let mut shadow_wait = Vec::new();
    let mut true_wait = Vec::new();
    for w in suite(scale) {
        let s = run_workload(&w, Scheme::Levioso, &config);
        shadow_frac.push((w.name.to_string(), s.shadowed_fraction()));
        true_frac.push((w.name.to_string(), s.true_dep_fraction()));
        shadow_wait.push((w.name.to_string(), s.shadow_wait_per_instr()));
        true_wait.push((w.name.to_string(), s.true_wait_per_instr()));
    }
    let mut f = Figure::new(
        "F1: how much of the conservative speculation shadow is real?",
        "fraction / cycles per committed instruction",
    );
    f.push_series("shadowed-at-ready (conservative)", shadow_frac);
    f.push_series("true-dep-at-ready (levioso)", true_frac);
    f.push_series("wait-cycles (conservative)", shadow_wait);
    f.push_series("wait-cycles (levioso)", true_wait);
    f
}

/// **F2** — the headline overhead comparison: normalized execution time per
/// workload + geomean for the headline schemes.
pub fn overhead_figure(scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let mut f = Figure::new(
        "F2: execution time normalized to the unsafe out-of-order baseline",
        "slowdown (x)",
    );
    for (scheme, points) in normalized_runtimes(&workloads, &Scheme::HEADLINE, &config) {
        f.push_series(scheme.name(), points);
    }
    f
}

/// **F3** — Levioso ablation: full (hardware dataflow propagation) vs.
/// static (compile-time dataflow closure) vs. control-only (unsound; shown
/// as the precision upper bound).
pub fn ablation_figure(scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let schemes =
        [Scheme::Unsafe, Scheme::Levioso, Scheme::LeviosoStatic, Scheme::LeviosoCtrlOnly];
    let mut f = Figure::new(
        "F3: Levioso variants (levioso-ctrl-only is UNSOUND; precision bound only)",
        "slowdown (x)",
    );
    for (scheme, points) in normalized_runtimes(&workloads, &schemes, &config) {
        f.push_series(scheme.name(), points);
    }
    f
}

/// The kernels used by the sensitivity sweeps (a representative subset so
/// sweeps stay tractable).
pub fn sweep_kernels(scale: Scale) -> Vec<Workload> {
    suite(scale)
        .into_iter()
        .filter(|w| matches!(w.name, "filter_scan" | "hash_join" | "partition" | "binary_search"))
        .collect()
}

/// **F4** — sensitivity to reorder-buffer size: geomean slowdown of the
/// comprehensive schemes at each ROB size.
pub fn rob_sweep_figure(scale: Scale, rob_sizes: &[usize]) -> Figure {
    let workloads = sweep_kernels(scale);
    let schemes = [Scheme::CommitDelay, Scheme::ExecuteDelay, Scheme::Levioso];
    let mut f = Figure::new("F4: geomean slowdown vs ROB size", "slowdown (x)");
    let mut per_scheme: Vec<(Scheme, Vec<(String, f64)>)> =
        schemes.iter().map(|&s| (s, Vec::new())).collect();
    for &rob in rob_sizes {
        let config = CoreConfig::default().with_rob_size(rob);
        for (scheme, points) in normalized_runtimes(&workloads, &schemes, &config) {
            let g = points.last().expect("geomean row").1;
            per_scheme
                .iter_mut()
                .find(|(s, _)| *s == scheme)
                .expect("scheme present")
                .1
                .push((rob.to_string(), g));
        }
    }
    for (scheme, points) in per_scheme {
        f.push_series(scheme.name(), points);
    }
    f
}

/// **F5** — sensitivity to memory latency: geomean slowdown of the
/// comprehensive schemes at each DRAM latency.
pub fn mem_sweep_figure(scale: Scale, dram_latencies: &[u64]) -> Figure {
    let workloads = sweep_kernels(scale);
    let schemes = [Scheme::CommitDelay, Scheme::ExecuteDelay, Scheme::Levioso];
    let mut f = Figure::new("F5: geomean slowdown vs DRAM latency", "slowdown (x)");
    let mut per_scheme: Vec<(Scheme, Vec<(String, f64)>)> =
        schemes.iter().map(|&s| (s, Vec::new())).collect();
    for &lat in dram_latencies {
        let config = CoreConfig::default().with_dram_latency(lat);
        for (scheme, points) in normalized_runtimes(&workloads, &schemes, &config) {
            let g = points.last().expect("geomean row").1;
            per_scheme
                .iter_mut()
                .find(|(s, _)| *s == scheme)
                .expect("scheme present")
                .1
                .push((lat.to_string(), g));
        }
    }
    for (scheme, points) in per_scheme {
        f.push_series(scheme.name(), points);
    }
    f
}

/// **T2** — the security matrix: every scheme × every attack, measured by
/// actually running the receiver.
pub fn security_table() -> Table {
    let mut headers = vec!["scheme", "comprehensive?"];
    headers.extend(levioso_attacks::AttackKind::ALL.iter().map(|k| k.name()));
    let mut t =
        Table::new("T2: security evaluation (LEAK = receiver recovered the secret)", &headers);
    for row in levioso_attacks::security_matrix() {
        let mut cells = vec![
            row.scheme.name().to_string(),
            if row.scheme.comprehensive() { "yes" } else { "no" }.to_string(),
        ];
        cells.extend(row.leaks.iter().map(|&l| if l { "LEAK" } else { "blocked" }.to_string()));
        t.push_row(cells);
    }
    t
}

/// **T3** — annotation cost: static dependency-set sizes and hint bits per
/// workload, for both annotation flavours.
pub fn annotation_table(scale: Scale) -> Table {
    let mut t = Table::new(
        "T3: annotation cost (control-only / static-dataflow flavours)",
        &[
            "workload",
            "instrs",
            "deps/instr (ctrl)",
            "bits/instr (ctrl)",
            "deps/instr (static)",
            "bits/instr (static)",
            "max deps",
        ],
    );
    for w in suite(scale) {
        let mut ctrl = w.program.clone();
        levioso_compiler::annotate_with(
            &mut ctrl,
            &levioso_compiler::AnnotateConfig { static_dataflow: false },
        );
        let c = ctrl.annotations.as_ref().expect("annotated").cost();
        let mut full = w.program.clone();
        levioso_compiler::annotate_with(
            &mut full,
            &levioso_compiler::AnnotateConfig { static_dataflow: true },
        );
        let s = full.annotations.as_ref().expect("annotated").cost();
        t.push_row(vec![
            w.name.to_string(),
            c.instructions.to_string(),
            format!("{:.2}", c.deps_per_instr()),
            format!("{:.2}", c.bits_per_instr()),
            format!("{:.2}", s.deps_per_instr()),
            format!("{:.2}", s.bits_per_instr()),
            s.max_deps.max(c.max_deps).to_string(),
        ]);
    }
    t
}

/// **F6** (extension) — residual transient cache activity: squashed-
/// instruction fills per kilo-instruction under each headline scheme.
/// Zero for the delay-everything baselines; nonzero-but-benign for Levioso
/// (its performance edge); large for the unprotected core.
pub fn transient_fill_figure(scale: Scale) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let mut f = Figure::new(
        "F6: transient cache fills per kilo-instruction (residual speculative visibility)",
        "fills / kilo-instruction",
    );
    for scheme in Scheme::HEADLINE {
        let mut points: Vec<(String, f64)> = Vec::new();
        let mut total_fills = 0u64;
        let mut total_commits = 0u64;
        for w in &workloads {
            let s = run_workload(w, scheme, &config);
            total_fills += s.transient_fills;
            total_commits += s.committed;
            points.push((w.name.to_string(), s.transient_fills_pki()));
        }
        points.push((
            "overall".to_string(),
            if total_commits == 0 { 0.0 } else { total_fills as f64 * 1000.0 / total_commits as f64 },
        ));
        f.push_series(scheme.name(), points);
    }
    f
}

/// **F7** (extension) — annotation hint-budget sweep: geomean slowdown of
/// Levioso when every dependency set larger than the cap collapses to the
/// conservative fallback. Caps model finite ISA hint encodings; `usize::MAX`
/// is the uncapped reference.
pub fn annotation_cap_figure(scale: Scale, caps: &[usize]) -> Figure {
    let config = CoreConfig::default();
    let workloads = suite(scale);
    let baselines: Vec<f64> = workloads
        .iter()
        .map(|w| run_workload(w, Scheme::Unsafe, &config).cycles as f64)
        .collect();
    let mut f = Figure::new(
        "F7: levioso geomean slowdown vs annotation budget (max deps encodable per instruction)",
        "slowdown (x)",
    );
    let mut points = Vec::new();
    for &cap in caps {
        let mut ratios = Vec::new();
        for (w, &b) in workloads.iter().zip(&baselines) {
            let mut program = w.program.clone();
            Scheme::Levioso.prepare(&mut program);
            let full = program.annotations.clone().expect("annotated");
            program.annotations = Some(full.capped(cap));
            let mut sim = levioso_uarch::Simulator::new(&program, config.clone());
            w.apply_memory(&mut sim);
            let stats = sim
                .run(Scheme::Levioso.policy().as_ref())
                .unwrap_or_else(|e| panic!("{} cap {cap}: {e}", w.name));
            assert_eq!(
                sim.mem.read_i64(w.checksum_addr),
                w.expected_checksum(),
                "{} cap {cap}: checksum mismatch",
                w.name
            );
            ratios.push(stats.cycles as f64 / b);
        }
        let label = if cap == usize::MAX { "uncapped".to_string() } else { cap.to_string() };
        points.push((label, geomean(&ratios)));
    }
    f.push_series("levioso (capped)", points);
    f
}

/// Extracts the geomean slowdown of `scheme` from an overhead-style figure.
pub fn geomean_of(figure: &Figure, scheme: Scheme) -> Option<f64> {
    figure
        .series
        .iter()
        .find(|s| s.name == scheme.name())?
        .points
        .iter()
        .find(|(x, _)| x == "geomean")
        .map(|(_, v)| *v)
}

/// Convenience wrapper used by examples/tests: overhead (slowdown − 1) of
/// one scheme on one workload at the given scale.
pub fn single_overhead(name: &str, scheme: Scheme, scale: Scale) -> f64 {
    let w = suite(scale).into_iter().find(|w| w.name == name).expect("known workload");
    let base = run_workload(&w, Scheme::Unsafe, &CoreConfig::default()).cycles as f64;
    let s = run_workload(&w, scheme, &CoreConfig::default()).cycles as f64;
    s / base - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_has_all_rows() {
        let t = config_table();
        assert_eq!(t.rows.len(), 7);
        assert!(t.render().contains("ROB"));
    }

    #[test]
    fn t3_reports_all_workloads() {
        let t = annotation_table(Scale::Smoke);
        assert_eq!(t.rows.len(), 12);
    }

    #[test]
    fn f2_smoke_has_expected_shape() {
        let f = overhead_figure(Scale::Smoke);
        assert_eq!(f.series.len(), Scheme::HEADLINE.len());
        let lev = geomean_of(&f, Scheme::Levioso).unwrap();
        let exe = geomean_of(&f, Scheme::ExecuteDelay).unwrap();
        let com = geomean_of(&f, Scheme::CommitDelay).unwrap();
        let fen = geomean_of(&f, Scheme::Fence).unwrap();
        assert!(lev < exe, "levioso {lev:.3} < execute-delay {exe:.3}");
        assert!(exe < com, "execute-delay {exe:.3} < commit-delay {com:.3}");
        // Fence gates *everything* at the same release point execute-delay
        // gates only transmits, so it must cost at least as much. (Its
        // ordering vs commit-delay is workload-dependent.)
        assert!(exe < fen, "execute-delay {exe:.3} < fence {fen:.3}");
        assert!(lev >= 0.99, "slowdowns are >= 1");
    }

    #[test]
    fn run_workload_validates_checksums() {
        let w = suite(Scale::Smoke).remove(0);
        let s = run_workload(&w, Scheme::Levioso, &CoreConfig::default());
        assert!(s.committed > 0);
    }
}
