//! The golden-snapshot perf-regression gate.
//!
//! The value of this reproduction is its measured *shape* claims
//! (EXPERIMENTS.md): normalized overheads, wait-cycle headroom, crossover
//! orderings. The sweeps are bit-deterministic, so those numbers should
//! never move unless a change means them to. This module pins them:
//!
//! * `results/golden/<tier>/fig*.json` holds one golden [`Figure`]
//!   snapshot per shape figure, regenerated with `all --bless`;
//! * [`check_figures`] compares freshly computed figures against the
//!   snapshots within per-figure declared tolerances and reports every
//!   drifted cell;
//! * [`shape_violations`] checks the orderings the paper's story rests on
//!   (levioso < execute-delay < commit-delay, zero transient fills for
//!   delaying schemes, monotone hint-budget recovery) directly on the
//!   fresh figures, so even a blessed-but-broken snapshot cannot hide a
//!   shape inversion.
//!
//! Two tiers exist: [`Tier::Paper`] (full problem sizes and sweep grids —
//! the numbers EXPERIMENTS.md quotes) and [`Tier::Smoke`] (reduced
//! cycles and grids, fast enough for every CI run).

use crate::sweep::Sweep;
use levioso_stats::Figure;
use levioso_workloads::Scale;
use std::fmt;
use std::path::{Path, PathBuf};

/// Sweep tier: problem scale plus the sensitivity-sweep grids, and which
/// golden directory the results are pinned under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Reduced cycles and grids; the CI gate. Seconds, not minutes.
    Smoke,
    /// Full problem sizes and grids; the numbers EXPERIMENTS.md quotes.
    Paper,
}

impl Tier {
    /// The workload problem scale this tier simulates.
    pub fn scale(self) -> Scale {
        match self {
            Tier::Smoke => Scale::Smoke,
            Tier::Paper => Scale::Paper,
        }
    }

    /// Directory name / CLI name of the tier.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Smoke => "smoke",
            Tier::Paper => "paper",
        }
    }

    /// ROB sizes swept by F4 at this tier.
    pub fn rob_sizes(self) -> &'static [usize] {
        match self {
            Tier::Smoke => &[64, 224],
            Tier::Paper => &[64, 128, 224, 352],
        }
    }

    /// DRAM latencies swept by F5 at this tier.
    pub fn dram_latencies(self) -> &'static [u64] {
        match self {
            Tier::Smoke => &[60, 240],
            Tier::Paper => &[60, 120, 240, 480],
        }
    }

    /// Annotation-budget caps swept by F7 at this tier.
    pub fn caps(self) -> &'static [usize] {
        match self {
            Tier::Smoke => &[0, 2, usize::MAX],
            Tier::Paper => &[0, 1, 2, 3, 4, usize::MAX],
        }
    }

    /// Where this tier's golden snapshots live (anchored at the repo root,
    /// so binaries and `cargo test` agree regardless of working directory).
    pub fn golden_dir(self) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/golden").join(self.name())
    }
}

/// The stable snapshot ids of every shape figure, in report order. The
/// golden manifest's tier digests (see [`crate::corerev`]) hash the files
/// in exactly this order.
pub const SHAPE_IDS: [&str; 7] = [
    "fig1_motivation",
    "fig2_overhead",
    "fig3_ablation",
    "fig4_rob_sweep",
    "fig5_mem_sweep",
    "fig6_transient_fills",
    "fig7_hint_budget",
];

/// Computes every shape figure of the evaluation at `tier`, in report
/// order, labeled with its stable snapshot id (exactly [`SHAPE_IDS`]).
pub fn shape_figures(sweep: &Sweep, tier: Tier) -> Vec<(&'static str, Figure)> {
    let scale = tier.scale();
    let figures = vec![
        ("fig1_motivation", crate::motivation_figure(sweep, scale)),
        ("fig2_overhead", crate::overhead_figure(sweep, scale)),
        ("fig3_ablation", crate::ablation_figure(sweep, scale)),
        ("fig4_rob_sweep", crate::rob_sweep_figure(sweep, scale, tier.rob_sizes())),
        ("fig5_mem_sweep", crate::mem_sweep_figure(sweep, scale, tier.dram_latencies())),
        ("fig6_transient_fills", crate::transient_fill_figure(sweep, scale)),
        ("fig7_hint_budget", crate::annotation_cap_figure(sweep, scale, tier.caps())),
    ];
    debug_assert!(
        figures.iter().map(|(id, _)| *id).eq(SHAPE_IDS),
        "SHAPE_IDS out of sync with shape_figures"
    );
    figures
}

/// Declared relative tolerance for a snapshot id.
///
/// The sweeps are bit-deterministic, so these absorb only float-formatting
/// round-trips (which are exact) plus a safety margin; any genuine change
/// to simulated cycle counts lands orders of magnitude above them.
/// Figures quoted as ratios get the tight default; F1's raw per-instruction
/// means get a slightly looser one because their magnitudes vary more.
pub fn tolerance(id: &str) -> f64 {
    match id {
        "fig1_motivation" => 1e-6,
        _ => 1e-9,
    }
}

/// One reportable difference between fresh results and a golden snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum Drift {
    /// The documents disagree structurally (missing file/series/point) —
    /// always fatal, tolerances don't apply.
    Structure {
        /// Snapshot id (e.g. `fig2_overhead`).
        figure: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A cell's value moved beyond the declared tolerance.
    Value {
        /// Snapshot id.
        figure: String,
        /// Series name (scheme / metric).
        series: String,
        /// X label (workload / sweep point).
        x: String,
        /// The pinned value.
        golden: f64,
        /// The freshly computed value.
        fresh: f64,
        /// Relative tolerance that was exceeded.
        tol: f64,
    },
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drift::Structure { figure, detail } => {
                write!(f, "DRIFT {figure}: {detail}")
            }
            Drift::Value { figure, series, x, golden, fresh, tol } => {
                let denom = golden.abs().max(1.0);
                write!(
                    f,
                    "DRIFT {figure} / {series} @ {x}: golden {golden:.6}, fresh {fresh:.6} \
                     (rel Δ {:+.4}%, tol {:.0e})",
                    (fresh - golden) / denom * 100.0,
                    tol,
                )
            }
        }
    }
}

/// Whether `fresh` matches `golden` within relative tolerance `tol`
/// (relative to `max(1, |golden|)`, so near-zero cells compare absolutely).
fn within(golden: f64, fresh: f64, tol: f64) -> bool {
    (fresh - golden).abs() <= tol * golden.abs().max(1.0)
}

/// Compares a fresh figure against its golden snapshot cell by cell.
pub fn compare_figure(id: &str, fresh: &Figure, golden: &Figure) -> Vec<Drift> {
    let tol = tolerance(id);
    let mut drifts = Vec::new();
    let structure = |detail: String| Drift::Structure { figure: id.to_string(), detail };
    if fresh.title != golden.title {
        drifts.push(structure(format!(
            "title changed: golden `{}`, fresh `{}`",
            golden.title, fresh.title
        )));
    }
    let fresh_names: Vec<&str> = fresh.series.iter().map(|s| s.name.as_str()).collect();
    let golden_names: Vec<&str> = golden.series.iter().map(|s| s.name.as_str()).collect();
    if fresh_names != golden_names {
        drifts.push(structure(format!(
            "series changed: golden {golden_names:?}, fresh {fresh_names:?}"
        )));
        return drifts;
    }
    for (fs, gs) in fresh.series.iter().zip(&golden.series) {
        let fresh_xs: Vec<&str> = fs.points.iter().map(|(x, _)| x.as_str()).collect();
        let golden_xs: Vec<&str> = gs.points.iter().map(|(x, _)| x.as_str()).collect();
        if fresh_xs != golden_xs {
            drifts.push(structure(format!(
                "series `{}` x-labels changed: golden {golden_xs:?}, fresh {fresh_xs:?}",
                fs.name
            )));
            continue;
        }
        for ((x, fv), (_, gv)) in fs.points.iter().zip(&gs.points) {
            if !within(*gv, *fv, tol) {
                drifts.push(Drift::Value {
                    figure: id.to_string(),
                    series: fs.name.clone(),
                    x: x.clone(),
                    golden: *gv,
                    fresh: *fv,
                    tol,
                });
            }
        }
    }
    drifts
}

/// Outcome of a full golden comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Total `(figure, series, x)` cells compared.
    pub cells_checked: usize,
    /// Every difference found, in report order.
    pub drifts: Vec<Drift>,
}

impl CheckReport {
    /// True when nothing drifted.
    pub fn is_clean(&self) -> bool {
        self.drifts.is_empty()
    }

    /// Renders the verdict plus one line per drifted cell.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "golden check OK: {} cells within tolerance\n",
                self.cells_checked
            ));
        } else {
            out.push_str(&format!(
                "golden check FAILED: {} of {} cells drifted\n",
                self.drifts.len(),
                self.cells_checked
            ));
            for d in &self.drifts {
                out.push_str(&format!("  {d}\n"));
            }
            out.push_str(
                "if the new numbers are intended (documented perf change), regenerate with \
                 `--bless` and commit results/golden/\n",
            );
        }
        out
    }
}

/// Checks freshly computed figures against the tier's golden snapshots.
///
/// A missing or unparsable snapshot file is reported as structural drift,
/// not an error: the gate must fail loudly, never skip silently.
pub fn check_figures(figures: &[(&'static str, Figure)], tier: Tier) -> CheckReport {
    let dir = tier.golden_dir();
    let mut cells_checked = 0;
    let mut drifts = Vec::new();
    for (id, fresh) in figures {
        cells_checked += fresh.series.iter().map(|s| s.points.len()).sum::<usize>();
        let path = dir.join(format!("{id}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                drifts.push(Drift::Structure {
                    figure: id.to_string(),
                    detail: format!(
                        "golden snapshot {} unreadable ({e}); run `--bless` to create it",
                        path.display()
                    ),
                });
                continue;
            }
        };
        let golden = match Figure::from_json(&text) {
            Ok(g) => g,
            Err(e) => {
                drifts.push(Drift::Structure {
                    figure: id.to_string(),
                    detail: format!("golden snapshot {} is not a figure: {e}", path.display()),
                });
                continue;
            }
        };
        drifts.extend(compare_figure(id, fresh, &golden));
    }
    CheckReport { cells_checked, drifts }
}

/// Writes the figures as the tier's new golden snapshots; returns the
/// paths written.
///
/// Guarded by the `CORE_REV` manifest (see [`crate::corerev`]): if the new
/// content differs from the recorded bless and `levioso_uarch::CORE_REV`
/// was not bumped, the bless is refused — changed simulated numbers mean
/// changed core semantics, and the cached sweep cells of the old revision
/// must be invalidated by the bump, not silently kept. A successful bless
/// records the tier's new digest + revision in
/// `results/golden/core_rev.json`.
pub fn bless_figures(
    figures: &[(&'static str, Figure)],
    tier: Tier,
) -> std::io::Result<Vec<PathBuf>> {
    let digest = crate::corerev::figures_digest(figures);
    crate::corerev::guard_bless(tier, &digest)
        .map_err(|msg| std::io::Error::new(std::io::ErrorKind::PermissionDenied, msg))?;
    let dir = tier.golden_dir();
    std::fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    for (id, figure) in figures {
        let path = dir.join(format!("{id}.json"));
        std::fs::write(&path, figure.to_json())?;
        written.push(path);
    }
    crate::corerev::record_bless(tier, &digest)?;
    written.push(crate::corerev::manifest_path());
    Ok(written)
}

/// The geomean-row value of a named series, if present.
fn series_geomean(figure: &Figure, name: &str) -> Option<f64> {
    figure
        .series
        .iter()
        .find(|s| s.name == name)?
        .points
        .iter()
        .find(|(x, _)| x == "geomean")
        .map(|(_, v)| *v)
}

fn figure_by_id<'a>(figures: &'a [(&'static str, Figure)], id: &str) -> Option<&'a Figure> {
    figures.iter().find(|(i, _)| *i == id).map(|(_, f)| f)
}

/// Checks the crossover/ordering invariants the paper's story rests on,
/// directly on fresh figures (independent of any snapshot). Returns one
/// human-readable violation per broken invariant; empty means the shape
/// holds.
pub fn shape_violations(figures: &[(&'static str, Figure)]) -> Vec<String> {
    let mut violations = Vec::new();
    fn violated(violations: &mut Vec<String>, cond: bool, msg: String) {
        if !cond {
            violations.push(msg);
        }
    }

    // F2 — the headline ordering: levioso < execute-delay < commit-delay,
    // execute-delay < fence, and nothing beats the unsafe baseline.
    if let Some(f2) = figure_by_id(figures, "fig2_overhead") {
        let g = |name: &str| series_geomean(f2, name);
        if let (Some(lev), Some(exe), Some(com), Some(fen)) =
            (g("levioso"), g("execute-delay"), g("commit-delay"), g("fence"))
        {
            violated(
                &mut violations,
                lev < exe,
                format!("F2: levioso {lev:.3} !< execute-delay {exe:.3}"),
            );
            violated(
                &mut violations,
                exe < com,
                format!("F2: execute-delay {exe:.3} !< commit-delay {com:.3}"),
            );
            violated(
                &mut violations,
                exe < fen,
                format!("F2: execute-delay {exe:.3} !< fence {fen:.3}"),
            );
            for s in &f2.series {
                for (x, v) in &s.points {
                    violated(
                        &mut violations,
                        *v >= 0.99,
                        format!("F2: {} @ {x} = {v:.3} beats unsafe", s.name),
                    );
                }
            }
        } else {
            violations.push("F2: headline series missing".to_string());
        }
    } else {
        violations.push("F2: figure missing".to_string());
    }

    // F3 — hardware dataflow propagation is at least as precise as the
    // static closure.
    if let Some(f3) = figure_by_id(figures, "fig3_ablation") {
        match (series_geomean(f3, "levioso"), series_geomean(f3, "levioso-static")) {
            (Some(lev), Some(stat)) => violated(
                &mut violations,
                lev <= stat * (1.0 + 1e-9),
                format!("F3: levioso {lev:.3} !<= levioso-static {stat:.3}"),
            ),
            _ => violations.push("F3: ablation series missing".to_string()),
        }
    }

    // F4/F5 — the ordering holds at every swept point (no crossover
    // anywhere in the sensitivity range).
    for id in ["fig4_rob_sweep", "fig5_mem_sweep"] {
        let Some(fig) = figure_by_id(figures, id) else {
            violations.push(format!("{id}: figure missing"));
            continue;
        };
        let series = |name: &str| fig.series.iter().find(|s| s.name == name);
        match (series("levioso"), series("execute-delay"), series("commit-delay")) {
            (Some(lev), Some(exe), Some(com)) => {
                for (((x, l), (_, e)), (_, c)) in
                    lev.points.iter().zip(&exe.points).zip(&com.points)
                {
                    violated(
                        &mut violations,
                        l < e,
                        format!("{id} @ {x}: levioso {l:.3} !< execute-delay {e:.3}"),
                    );
                    violated(
                        &mut violations,
                        e < c,
                        format!("{id} @ {x}: execute-delay {e:.3} !< commit-delay {c:.3}"),
                    );
                }
            }
            _ => violations.push(format!("{id}: sweep series missing")),
        }
    }

    // F6 — delaying schemes leave *zero* residual transient fills; the
    // unprotected core leaves plenty.
    if let Some(f6) = figure_by_id(figures, "fig6_transient_fills") {
        for name in ["fence", "delay-on-miss", "commit-delay", "execute-delay"] {
            if let Some(s) = f6.series.iter().find(|s| s.name == name) {
                for (x, v) in &s.points {
                    violated(
                        &mut violations,
                        *v == 0.0,
                        format!("F6: {name} @ {x} = {v:.3} fills (expected 0)"),
                    );
                }
            } else {
                violations.push(format!("F6: series `{name}` missing"));
            }
        }
        match f6
            .series
            .iter()
            .find(|s| s.name == "unsafe")
            .and_then(|s| s.points.iter().find(|(x, _)| x == "overall"))
        {
            Some((_, v)) => {
                violated(
                    &mut violations,
                    *v > 0.0,
                    format!("F6: unsafe overall = {v:.3} (expected > 0)"),
                );
            }
            None => violations.push("F6: unsafe overall cell missing".to_string()),
        }
    }

    // F7 — more hint budget never hurts: slowdown is non-increasing in the
    // cap, so the uncapped point is the floor and cap 0 the ceiling.
    if let Some(f7) = figure_by_id(figures, "fig7_hint_budget") {
        if let Some(s) = f7.series.first() {
            for pair in s.points.windows(2) {
                let (ref xa, a) = pair[0];
                let (ref xb, b) = pair[1];
                violated(
                    &mut violations,
                    b <= a * (1.0 + 1e-9),
                    format!("F7: slowdown rises from {a:.3} @ {xa} to {b:.3} @ {xb}"),
                );
            }
        } else {
            violations.push("F7: series missing".to_string());
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig(points: &[(&str, f64)]) -> Figure {
        let mut f = Figure::new("t", "y");
        f.push_series("s", points.iter().map(|(x, v)| (x.to_string(), *v)).collect::<Vec<_>>());
        f
    }

    #[test]
    fn identical_figures_do_not_drift() {
        let f = fig(&[("a", 1.0), ("b", 2.5)]);
        assert!(compare_figure("fig2_overhead", &f, &f.clone()).is_empty());
    }

    #[test]
    fn value_drift_is_reported_per_cell() {
        let golden = fig(&[("a", 1.0), ("b", 2.5)]);
        let fresh = fig(&[("a", 1.0), ("b", 2.6)]);
        let drifts = compare_figure("fig2_overhead", &fresh, &golden);
        assert_eq!(drifts.len(), 1);
        match &drifts[0] {
            Drift::Value { series, x, golden, fresh, .. } => {
                assert_eq!((series.as_str(), x.as_str()), ("s", "b"));
                assert_eq!((*golden, *fresh), (2.5, 2.6));
            }
            other => panic!("expected value drift, got {other:?}"),
        }
        let line = drifts[0].to_string();
        assert!(line.contains("fig2_overhead") && line.contains("@ b"), "{line}");
    }

    #[test]
    fn tolerance_absorbs_tiny_noise_only() {
        let golden = fig(&[("a", 1.0)]);
        let within = fig(&[("a", 1.0 + 1e-12)]);
        let beyond = fig(&[("a", 1.0 + 1e-6)]);
        assert!(compare_figure("fig2_overhead", &within, &golden).is_empty());
        assert_eq!(compare_figure("fig2_overhead", &beyond, &golden).len(), 1);
    }

    #[test]
    fn structural_changes_are_fatal() {
        let golden = fig(&[("a", 1.0)]);
        let mut renamed = fig(&[("a", 1.0)]);
        renamed.series[0].name = "other".into();
        let drifts = compare_figure("fig1_motivation", &renamed, &golden);
        assert!(matches!(drifts[0], Drift::Structure { .. }));
        let relabeled = fig(&[("z", 1.0)]);
        let drifts = compare_figure("fig1_motivation", &relabeled, &golden);
        assert!(matches!(drifts[0], Drift::Structure { .. }));
    }

    #[test]
    fn missing_snapshot_reports_drift_not_silence() {
        let figures = vec![("fig2_overhead", fig(&[("a", 1.0)]))];
        let report = check_figures(&figures, Tier::Smoke);
        // Whether or not goldens exist on disk, the report must account for
        // the cell; with no snapshot recorded for a bogus location the gate
        // fails loudly.
        assert_eq!(report.cells_checked, 1);
    }

    #[test]
    fn tier_grids_are_reduced_for_smoke() {
        assert!(Tier::Smoke.rob_sizes().len() < Tier::Paper.rob_sizes().len());
        assert!(Tier::Smoke.dram_latencies().len() < Tier::Paper.dram_latencies().len());
        assert!(Tier::Smoke.caps().len() < Tier::Paper.caps().len());
        assert_eq!(Tier::Smoke.golden_dir().file_name().unwrap(), "smoke");
    }

    #[test]
    fn shape_violations_flag_inverted_ordering() {
        // Minimal fig2 with levioso *slower* than commit-delay.
        let mut f2 = Figure::new("F2", "x");
        for (name, g) in [
            ("unsafe", 1.0),
            ("fence", 1.5),
            ("commit-delay", 1.2),
            ("execute-delay", 1.3),
            ("levioso", 1.4),
            ("delay-on-miss", 1.1),
        ] {
            f2.push_series(name, vec![("geomean".to_string(), g)]);
        }
        let violations = shape_violations(&[("fig2_overhead", f2)]);
        assert!(violations.iter().any(|v| v.contains("levioso")), "{violations:?}");
    }
}
