//! The sim-core revision manifest and the bless guard.
//!
//! `levioso_uarch::CORE_REV` names the simulator's *semantic* revision:
//! the cache namespace every sweep cell is stored under, and the version
//! the golden snapshots were recorded against. This module keeps the two
//! honest via a committed manifest, `results/golden/core_rev.json`:
//!
//! ```json
//! {
//!   "schema": "levioso-core-rev/1",
//!   "core_rev": 1,
//!   "tiers": {
//!     "smoke": { "core_rev": 1, "digest": "<32 hex>" },
//!     "paper": { "core_rev": 1, "digest": "<32 hex>" }
//!   }
//! }
//! ```
//!
//! Each tier records a content digest over its golden figure files plus
//! the `CORE_REV` it was blessed at. Two rules are enforced:
//!
//! 1. **The bless guard** ([`guard_bless`], called by
//!    `gate::bless_figures`): re-blessing a tier whose golden *content
//!    changes* while its recorded revision equals the current `CORE_REV`
//!    is refused. If the numbers moved, the semantics moved — bump
//!    `CORE_REV` first, which also invalidates every cached sweep cell.
//! 2. **The manifest consistency test** (`tests/cache.rs`): the on-disk
//!    goldens must re-digest to exactly what the manifest records, and
//!    every recorded revision must equal the current `CORE_REV`. This
//!    catches hand-edited goldens (which bypass the bless guard) and a
//!    `CORE_REV` bump that forgot to re-bless.

use crate::gate::{Tier, SHAPE_IDS};
use levioso_stats::Figure;
use levioso_support::cache::stable_hash_hex;
use levioso_support::Json;
use levioso_uarch::CORE_REV;
use std::path::{Path, PathBuf};

/// Manifest schema tag.
pub const MANIFEST_SCHEMA: &str = "levioso-core-rev/1";

/// Where the committed manifest lives (repo-root anchored).
pub fn manifest_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/golden/core_rev.json")
}

/// Content digest over a tier's freshly computed figures — exactly the
/// bytes `bless_figures` writes, so [`disk_digest`] reproduces it from the
/// files.
pub fn figures_digest(figures: &[(&'static str, Figure)]) -> String {
    let mut bytes = Vec::new();
    for (id, f) in figures {
        bytes.extend_from_slice(id.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(f.to_json().as_bytes());
        bytes.push(b'\n');
    }
    stable_hash_hex(&bytes)
}

/// Content digest over the tier's golden files on disk, `None` if any
/// shape snapshot is missing.
pub fn disk_digest(tier: Tier) -> Option<String> {
    let dir = tier.golden_dir();
    let mut bytes = Vec::new();
    for id in SHAPE_IDS {
        let text = std::fs::read_to_string(dir.join(format!("{id}.json"))).ok()?;
        bytes.extend_from_slice(id.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(text.as_bytes());
        bytes.push(b'\n');
    }
    Some(stable_hash_hex(&bytes))
}

/// One tier's recorded bless: the `CORE_REV` it was blessed at and the
/// content digest of its golden files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierRecord {
    /// `CORE_REV` at bless time.
    pub core_rev: u32,
    /// [`disk_digest`] of the blessed files.
    pub digest: String,
}

/// The parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// The latest `CORE_REV` any tier was blessed at.
    pub core_rev: u32,
    /// Per-tier records, keyed by tier name.
    pub tiers: Vec<(String, TierRecord)>,
}

impl Manifest {
    /// Loads the committed manifest; `None` if absent or unparseable
    /// (treated as "no manifest yet" — the consistency test separately
    /// fails on a corrupt one).
    pub fn load() -> Option<Manifest> {
        Self::load_from(&manifest_path())
    }

    /// Loads a manifest from an explicit path.
    pub fn load_from(path: &Path) -> Option<Manifest> {
        let doc = Json::parse(&std::fs::read_to_string(path).ok()?).ok()?;
        if doc.get("schema").and_then(Json::as_str) != Some(MANIFEST_SCHEMA) {
            return None;
        }
        let core_rev = u32::try_from(doc.get("core_rev")?.as_i64()?).ok()?;
        let Json::Obj(tier_pairs) = doc.get("tiers")? else { return None };
        let mut tiers = Vec::new();
        for (name, entry) in tier_pairs {
            let rec = TierRecord {
                core_rev: u32::try_from(entry.get("core_rev")?.as_i64()?).ok()?,
                digest: entry.get("digest")?.as_str()?.to_string(),
            };
            tiers.push((name.clone(), rec));
        }
        Some(Manifest { core_rev, tiers })
    }

    /// The record for `tier`, if one was ever blessed.
    pub fn tier(&self, tier: Tier) -> Option<&TierRecord> {
        self.tiers.iter().find(|(n, _)| n == tier.name()).map(|(_, r)| r)
    }

    /// Serializes back to the committed JSON form.
    pub fn to_json(&self) -> String {
        let tiers = Json::Obj(
            self.tiers
                .iter()
                .map(|(name, rec)| {
                    (
                        name.clone(),
                        Json::obj([
                            ("core_rev", Json::I64(rec.core_rev as i64)),
                            ("digest", Json::str(&rec.digest)),
                        ]),
                    )
                })
                .collect(),
        );
        let doc = Json::obj([
            ("schema", Json::str(MANIFEST_SCHEMA)),
            ("core_rev", Json::I64(self.core_rev as i64)),
            ("tiers", tiers),
        ]);
        let mut text = doc.emit_pretty();
        text.push('\n');
        text
    }

    /// Writes the manifest to its committed location.
    pub fn save(&self) -> std::io::Result<()> {
        let path = manifest_path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// The bless guard: refuses a re-bless whose golden content changed while
/// the tier's recorded revision still equals the current `CORE_REV`.
///
/// Allowed: first bless of a tier, a re-bless with identical content
/// (no-op), and a re-bless after a `CORE_REV` bump.
pub fn guard_bless(tier: Tier, new_digest: &str) -> Result<(), String> {
    let Some(manifest) = Manifest::load() else { return Ok(()) };
    let Some(rec) = manifest.tier(tier) else { return Ok(()) };
    if rec.digest != new_digest && rec.core_rev == CORE_REV {
        return Err(format!(
            "golden content for the {} tier changed but CORE_REV is still {}: changed simulated \
             numbers mean the core's semantics changed, so cached sweep cells from the old \
             revision are stale. Bump levioso_uarch::CORE_REV (crates/uarch/src/lib.rs), then \
             re-run `--bless` for both tiers.",
            tier.name(),
            CORE_REV
        ));
    }
    Ok(())
}

/// Records a successful bless: updates the tier's record (and the
/// top-level revision) to the current `CORE_REV` and the new digest,
/// preserving the other tiers' records.
pub fn record_bless(tier: Tier, new_digest: &str) -> std::io::Result<()> {
    let mut manifest = Manifest::load().unwrap_or_default();
    manifest.core_rev = CORE_REV;
    let rec = TierRecord { core_rev: CORE_REV, digest: new_digest.to_string() };
    match manifest.tiers.iter_mut().find(|(n, _)| n == tier.name()) {
        Some((_, existing)) => *existing = rec,
        None => manifest.tiers.push((tier.name().to_string(), rec)),
    }
    manifest.save()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            core_rev: 3,
            tiers: vec![
                ("smoke".to_string(), TierRecord { core_rev: 3, digest: "ab".repeat(16) }),
                ("paper".to_string(), TierRecord { core_rev: 2, digest: "cd".repeat(16) }),
            ],
        };
        let text = m.to_json();
        let dir = std::env::temp_dir().join(format!("levioso-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("core_rev.json");
        std::fs::write(&path, &text).unwrap();
        assert_eq!(Manifest::load_from(&path), Some(m));
    }

    #[test]
    fn figures_digest_is_content_sensitive() {
        let mut f = Figure::new("t", "y");
        f.push_series("s", vec![("a".to_string(), 1.0)]);
        let base = figures_digest(&[("fig2_overhead", f.clone())]);
        assert_eq!(base.len(), 32);
        assert_eq!(base, figures_digest(&[("fig2_overhead", f.clone())]), "deterministic");
        let mut g = f.clone();
        g.series[0].points[0].1 = 2.0;
        assert_ne!(base, figures_digest(&[("fig2_overhead", g)]), "value change moves digest");
        assert_ne!(base, figures_digest(&[("fig1_motivation", f)]), "id change moves digest");
    }
}
