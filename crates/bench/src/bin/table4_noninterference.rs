//! T4: the two-run noninterference fuzzing matrix and its leak gate.
//!
//! Runs every scheme on seeded program × secret-pair cells, diffs the
//! observation streams under every contract observer, and exits nonzero if
//! the gate fails — either a delaying scheme leaked, or the unsafe baseline
//! came back clean (vacuity: the campaign could not have caught a leak).
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, false);
    let report = levioso_bench::noninterference_report(opts.tier, opts.threads.unwrap_or(0));
    util::emit(&opts, "table4_noninterference", &report.render(), Some(report.to_json()));
    let fingerprint = levioso_nisec::cellcache::with(|c| c.fingerprint().to_string());
    println!("{}", levioso_nisec::cellcache::report().summary(&fingerprint));
    util::finish(&opts, "table4_noninterference", start);
    let failures = report.gate_failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("table4_noninterference: {f}");
        }
        std::process::exit(1);
    }
}
