//! `levtop`: the live terminal dashboard for a running warm sweep server.
//!
//! Polls a server's `status` selector through the job directory (the same
//! `levioso-sweep-job/1` protocol `levq` speaks), parses the returned
//! `levioso-serve-status/1` document, and renders a refreshing dashboard:
//! cache-tier splits per domain, request counts and rates by selector and
//! outcome, latency percentiles, and worker utilization — everything the
//! `levioso-metrics/1` registry snapshot carries.
//!
//! ```text
//! levtop target/jobs                  # live dashboard, refresh every 2s
//! levtop target/jobs --once           # render one frame and exit
//! levtop target/jobs --once --json    # print the raw status JSON (scripting)
//! ```
//!
//! Exits nonzero if the server never answers within the timeout — so CI
//! can use `levtop <dir> --once --json` as a liveness probe.

use levioso_support::jobdir::{self, Request, Response};
use levioso_support::Json;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::time::{Duration, Instant};

struct Args {
    jobdir: PathBuf,
    tier: String,
    once: bool,
    json: bool,
    interval: Duration,
    timeout: Duration,
}

fn usage() -> String {
    "usage: levtop <jobdir> [--smoke|--paper] [--once] [--json] [--interval-secs N] \
     [--timeout-secs N]\n\
     \n  <jobdir>            the directory a running `all --serve <jobdir>` polls\
     \n  --smoke / --paper   tier tag on the status requests (default: LEVIOSO_SCALE or paper)\
     \n  --once              render a single frame and exit\
     \n  --json              with --once: print the raw status JSON instead of the dashboard\
     \n  --interval-secs N   refresh interval (default 2)\
     \n  --timeout-secs N    give up on an unanswered status request after N seconds (default 60)"
        .to_string()
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n{}", usage());
    exit(2)
}

fn parse_args() -> Args {
    let mut jobdir = None;
    let mut tier = match std::env::var("LEVIOSO_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => "smoke".to_string(),
        _ => "paper".to_string(),
    };
    let mut once = false;
    let mut json = false;
    let mut interval = Duration::from_secs(2);
    let mut timeout = Duration::from_secs(60);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => tier = "smoke".to_string(),
            "--paper" => tier = "paper".to_string(),
            "--once" => once = true,
            "--json" => json = true,
            "--interval-secs" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => interval = Duration::from_secs(n),
                _ => usage_error("--interval-secs needs a positive integer"),
            },
            "--timeout-secs" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => timeout = Duration::from_secs(n),
                _ => usage_error("--timeout-secs needs a positive integer"),
            },
            "--help" | "-h" => {
                eprintln!("{}", usage());
                exit(0);
            }
            other if other.starts_with('-') => usage_error(&format!("unknown argument `{other}`")),
            _ if jobdir.is_none() => jobdir = Some(PathBuf::from(arg)),
            _ => usage_error("expected exactly one <jobdir>"),
        }
    }
    if json && !once {
        usage_error("--json only makes sense with --once");
    }
    let Some(jobdir) = jobdir else { usage_error("expected a <jobdir>") };
    Args { jobdir, tier, once, json, interval, timeout }
}

/// Submits one `status` request and returns the server's report text.
/// `None` if the server never answered within the timeout.
fn poll_status(dir: &Path, tier: &str, seq: u64, timeout: Duration) -> Option<String> {
    let id = format!("levtop-{}-{seq}", std::process::id());
    let request = Request {
        id: id.clone(),
        selector: "status".to_string(),
        tier: tier.to_string(),
        threads: 1,
        // Empty = accept any core revision: a dashboard wants to observe
        // whatever server is running, not refuse a stale one.
        fingerprint: String::new(),
    };
    let resp_path = jobdir::response_path(dir, &id);
    let _ = std::fs::remove_file(&resp_path);
    if let Err(e) = request.write(dir) {
        eprintln!("levtop: cannot write request into {}: {e}", dir.display());
        exit(3);
    }
    let deadline = Instant::now() + timeout;
    let text = loop {
        match std::fs::read_to_string(&resp_path) {
            Ok(text) => break text,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => {
                let _ = std::fs::remove_file(jobdir::request_path(dir, &id));
                return None;
            }
        }
    };
    let _ = std::fs::remove_file(&resp_path);
    let response = Json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|doc| Response::from_json(&doc))
        .unwrap_or_else(|e| {
            eprintln!("levtop: unparseable response {}: {e}", resp_path.display());
            exit(3);
        });
    if !response.ok {
        eprintln!(
            "levtop: server refused the status request: {}",
            response.error.as_deref().unwrap_or("(no reason)")
        );
        exit(3);
    }
    Some(response.report)
}

/// Splits a registry identity `name{k=v,...}` into the metric name and its
/// label pairs.
fn split_identity(identity: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(brace) = identity.find('{') else {
        return (identity, Vec::new());
    };
    let name = &identity[..brace];
    let labels = identity[brace + 1..]
        .trim_end_matches('}')
        .split(',')
        .filter_map(|pair| pair.split_once('='))
        .collect();
    (name, labels)
}

fn label<'a>(labels: &[(&str, &'a str)], key: &str) -> Option<&'a str> {
    labels.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

/// The parsed pieces of one status document the dashboard renders.
struct Frame {
    fingerprint: String,
    uptime: f64,
    served: i64,
    inflight: i64,
    queue_highwater: i64,
    enabled: bool,
    /// `(identity, value)` of every counter, registry order.
    counters: Vec<(String, u64)>,
    /// `(selector, count, p50, p95, p99)` in seconds.
    latency: Vec<(String, u64, f64, f64, f64)>,
    /// `(worker, busy_nanos, idle_nanos)`.
    workers: Vec<(String, u64, u64)>,
}

fn parse_frame(report: &str) -> Frame {
    let fail = |reason: &str| -> ! {
        eprintln!("levtop: bad status document: {reason}");
        exit(3);
    };
    let Ok(doc) = Json::parse(report) else { fail("not valid JSON") };
    if doc.get("schema").and_then(Json::as_str) != Some(levioso_bench::serve::STATUS_SCHEMA) {
        fail("missing or unknown schema field");
    }
    let metrics = doc.get("metrics").unwrap_or(&Json::Null);
    let mut counters = Vec::new();
    if let Some(Json::Obj(entries)) = metrics.get("counters") {
        for (identity, value) in entries {
            let v = value.as_str().and_then(|s| s.parse::<u64>().ok());
            counters.push((identity.clone(), v.unwrap_or_else(|| fail("unparsable counter"))));
        }
    }
    let mut latency = Vec::new();
    if let Some(Json::Obj(entries)) = metrics.get("timers") {
        for (identity, value) in entries {
            let (name, labels) = split_identity(identity);
            if name != "serve_request_micros" {
                continue;
            }
            let selector = label(&labels, "selector").unwrap_or("(none)").to_string();
            let count =
                value.get("count").and_then(Json::as_str).and_then(|s| s.parse::<u64>().ok());
            let micros = |key: &str| -> f64 {
                value
                    .get(key)
                    .and_then(Json::as_str)
                    .and_then(|s| s.parse::<u64>().ok())
                    .map_or(f64::NAN, |m| m as f64 / 1e6)
            };
            latency.push((
                selector,
                count.unwrap_or(0),
                micros("p50"),
                micros("p95"),
                micros("p99"),
            ));
        }
    }
    let mut workers: Vec<(String, u64, u64)> = Vec::new();
    for (identity, value) in &counters {
        let (name, labels) = split_identity(identity);
        let (busy, idle) = match name {
            "pool_worker_busy_nanos" => (*value, 0),
            "pool_worker_idle_nanos" => (0, *value),
            _ => continue,
        };
        let worker = label(&labels, "worker").unwrap_or("?").to_string();
        match workers.iter_mut().find(|(w, _, _)| *w == worker) {
            Some(row) => {
                row.1 += busy;
                row.2 += idle;
            }
            None => workers.push((worker, busy, idle)),
        }
    }
    workers.sort_by_key(|(w, _, _)| w.parse::<u64>().unwrap_or(u64::MAX));
    let gauge = |name: &str| -> i64 {
        metrics.get("gauges").and_then(|g| g.get(name)).and_then(Json::as_i64).unwrap_or(0)
    };
    let inflight = gauge("serve_inflight");
    let queue_highwater = gauge("pool_queue_depth_highwater");
    Frame {
        fingerprint: doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .unwrap_or("(unknown)")
            .to_string(),
        uptime: doc.get("uptime_seconds").and_then(Json::as_f64).unwrap_or(0.0),
        served: doc.get("requests_served").and_then(Json::as_i64).unwrap_or(0),
        inflight,
        queue_highwater,
        enabled: metrics.get("enabled").and_then(Json::as_bool).unwrap_or(false),
        counters,
        latency,
        workers,
    }
}

impl Frame {
    fn counter(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(id, _)| split_identity(id).0 == name).map(|(_, v)| v).sum()
    }

    fn counter_with(&self, name: &str, key: &str, value: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(id, _)| {
                let (n, labels) = split_identity(id);
                n == name && label(&labels, key) == Some(value)
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Every distinct value of `key` across `name`'s label sets, in
    /// registry (sorted-identity) order.
    fn label_values(&self, name: &str, key: &str) -> Vec<String> {
        let mut values: Vec<String> = Vec::new();
        for (id, _) in &self.counters {
            let (n, labels) = split_identity(id);
            if n != name {
                continue;
            }
            if let Some(v) = label(&labels, key) {
                if !values.iter().any(|have| have == v) {
                    values.push(v.to_string());
                }
            }
        }
        values
    }
}

/// Renders one dashboard frame. `prev` (with the seconds since it was
/// taken) turns cumulative request counters into rates.
fn render(frame: &Frame, prev: Option<(&Frame, f64)>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "levioso levtop — fingerprint {} · up {:.1}s · {} served · {} in flight · metrics {}",
        frame.fingerprint,
        frame.uptime,
        frame.served,
        frame.inflight,
        if frame.enabled { "on" } else { "off" },
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "cache tiers", "l1 hits", "l2 hits", "misses", "stores", "promotions"
    );
    for domain in frame.label_values("sweep_cache_misses_total", "cache") {
        let c = |stem: &str| frame.counter_with(stem, "cache", &domain);
        let _ = writeln!(
            out,
            "  {domain:<20} {:>10} {:>10} {:>10} {:>10} {:>11}",
            c("sweep_cache_l1_hits_total"),
            c("sweep_cache_l2_hits_total"),
            c("sweep_cache_misses_total"),
            c("sweep_cache_stores_total"),
            c("sweep_cache_promotions_total"),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "requests", "total", "ok", "gate_failed", "error", "rate/s"
    );
    for selector in frame.label_values("serve_requests_total", "selector") {
        let outcome = |o: &str| -> u64 {
            frame
                .counters
                .iter()
                .filter(|(id, _)| {
                    let (n, labels) = split_identity(id);
                    n == "serve_requests_total"
                        && label(&labels, "selector") == Some(selector.as_str())
                        && label(&labels, "outcome") == Some(o)
                })
                .map(|(_, v)| v)
                .sum()
        };
        let total = frame.counter_with("serve_requests_total", "selector", &selector);
        let rate = prev.map_or(0.0, |(p, secs)| {
            let before = p.counter_with("serve_requests_total", "selector", &selector);
            if secs > 0.0 {
                total.saturating_sub(before) as f64 / secs
            } else {
                0.0
            }
        });
        let _ = writeln!(
            out,
            "  {selector:<20} {total:>10} {:>10} {:>12} {:>10} {rate:>10.2}",
            outcome("ok"),
            outcome("gate_failed"),
            outcome("error"),
        );
    }
    if !frame.latency.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>10} {:>10} {:>10}",
            "latency (seconds)", "count", "p50", "p95", "p99"
        );
        for (selector, count, p50, p95, p99) in &frame.latency {
            let _ =
                writeln!(out, "  {selector:<20} {count:>10} {p50:>10.3} {p95:>10.3} {p99:>10.3}");
        }
    }
    if !frame.workers.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<22} {:>10} {:>10} {:>10}", "workers", "busy s", "idle s", "util");
        for (worker, busy, idle) in &frame.workers {
            let total = busy + idle;
            let util = if total > 0 { 100.0 * *busy as f64 / total as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {worker:<20} {:>10.2} {:>10.2} {util:>9.1}%",
                *busy as f64 / 1e9,
                *idle as f64 / 1e9,
            );
        }
        let _ = writeln!(
            out,
            "pool: {} jobs dealt · {} steals · queue high-water {}",
            frame.counter("pool_jobs_dealt_total"),
            frame.counter("pool_steals_total"),
            frame.queue_highwater,
        );
    }
    out
}

fn main() {
    let args = parse_args();
    let mut seq = 0u64;
    let mut prev: Option<(Frame, Instant)> = None;
    loop {
        let Some(report) = poll_status(&args.jobdir, &args.tier, seq, args.timeout) else {
            eprintln!(
                "levtop: no status response within {}s — is `all --serve {}` running?",
                args.timeout.as_secs(),
                args.jobdir.display()
            );
            exit(3);
        };
        let taken = Instant::now();
        seq += 1;
        if args.json {
            print!("{report}");
            return;
        }
        let frame = parse_frame(&report);
        let rendered = render(
            &frame,
            prev.as_ref().map(|(p, at)| (p, taken.duration_since(*at).as_secs_f64())),
        );
        if args.once {
            print!("{rendered}");
            return;
        }
        // ANSI clear + home: a flicker-free refresh on any terminal.
        print!("\x1b[2J\x1b[H{rendered}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        prev = Some((frame, taken));
        std::thread::sleep(args.interval);
    }
}
