//! F4: sensitivity to reorder-buffer size.
#[path = "../util.rs"]
mod util;

fn main() {
    let f = levioso_bench::rob_sweep_figure(util::scale_from_env(), &[64, 128, 224, 352]);
    util::emit("fig4_rob_sweep", &f.render(), Some(f.to_json()));
}
