//! F4: sensitivity to reorder-buffer size.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, false);
    let f =
        levioso_bench::rob_sweep_figure(&opts.sweep(), opts.tier.scale(), opts.tier.rob_sizes());
    util::emit(&opts, "fig4_rob_sweep", &f.render(), Some(f.to_json()));
    util::finish(&opts, "fig4_rob_sweep", start);
}
