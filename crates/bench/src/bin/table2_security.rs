//! T2: the measured security matrix.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, false);
    let t = levioso_bench::security_table();
    util::emit(&opts, "table2_security", &t.render(), None);
    util::finish(&opts, "table2_security", start);
}
