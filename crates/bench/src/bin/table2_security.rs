//! T2: the measured security matrix.
#[path = "../util.rs"]
mod util;

fn main() {
    let opts = util::Opts::parse(false, false);
    let t = levioso_bench::security_table();
    util::emit(&opts, "table2_security", &t.render(), None);
}
