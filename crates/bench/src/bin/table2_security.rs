//! T2: the measured security matrix.
#[path = "../util.rs"]
mod util;

fn main() {
    let t = levioso_bench::security_table();
    util::emit("table2_security", &t.render(), None);
}
