//! F5: sensitivity to DRAM latency.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, false);
    let f = levioso_bench::mem_sweep_figure(
        &opts.sweep(),
        opts.tier.scale(),
        opts.tier.dram_latencies(),
    );
    util::emit(&opts, "fig5_mem_sweep", &f.render(), Some(f.to_json()));
    util::finish(&opts, "fig5_mem_sweep", start);
}
