//! F5: sensitivity to DRAM latency.
#[path = "../util.rs"]
mod util;

fn main() {
    let f = levioso_bench::mem_sweep_figure(util::scale_from_env(), &[60, 120, 240, 480]);
    util::emit("fig5_mem_sweep", &f.render(), Some(f.to_json()));
}
