//! T1: print the simulated core configuration.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, false);
    let t = levioso_bench::config_table();
    util::emit(&opts, "table1_config", &t.render(), None);
    util::finish(&opts, "table1_config", start);
}
