//! T1: print the simulated core configuration.
#[path = "../util.rs"]
mod util;

fn main() {
    let t = levioso_bench::config_table();
    util::emit("table1_config", &t.render(), None);
}
