//! F2: the headline overhead comparison (the paper's 51 % / 43 % -> 23 % claim).
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, true);
    let sweep = opts.sweep();
    let f = levioso_bench::overhead_figure(&sweep, opts.tier.scale());
    util::emit(&opts, "fig2_overhead", &f.render(), Some(f.to_json()));
    if !opts.quiet {
        for scheme in [
            levioso_core::Scheme::CommitDelay,
            levioso_core::Scheme::ExecuteDelay,
            levioso_core::Scheme::Levioso,
        ] {
            if let Some(g) = levioso_bench::geomean_of(&f, scheme) {
                println!("geomean overhead {scheme}: {:.1}%", (g - 1.0) * 100.0);
            }
        }
    }
    util::emit_attrib(&opts, &sweep, "fig2_overhead", &levioso_core::Scheme::HEADLINE);
    util::finish(&opts, "fig2_overhead", start);
}
