//! The bench driver: regenerates every figure and table of the evaluation,
//! or gates the current tree against the golden snapshots.
//!
//! ```text
//! all                       # regenerate everything, mirror into results/
//! all --smoke --check       # CI: recompute shape figures, diff vs golden, exit 1 on drift
//! all --paper --bless       # regenerate + record new paper-tier goldens
//! all --threads 8           # size the sweep pool explicitly
//! ```
//!
//! All simulation cells fan out across the sweep pool; results are
//! bit-identical at any thread count.
#[path = "../util.rs"]
mod util;

use levioso_bench::{gate, Sweep, Tier};
use std::time::Instant;

fn main() {
    let opts = util::Opts::parse(true);
    let sweep = opts.sweep();
    let tier = opts.tier;
    let start = Instant::now();
    eprintln!(
        "==> {} tier, {} worker thread(s){}",
        tier.name(),
        sweep.threads(),
        if opts.check {
            " — golden regression check"
        } else if opts.bless {
            " — regenerating golden snapshots"
        } else {
            ""
        }
    );

    if opts.check || opts.bless {
        gate_mode(&sweep, tier, opts.check, start);
    }

    // Full regeneration, report order. Tables first (cheap), then the
    // shape figures (the parallel sweeps).
    let t = levioso_bench::config_table();
    util::emit(tier, "table1_config", &t.render(), None);
    for (id, f) in gate::shape_figures(&sweep, tier) {
        util::emit(tier, id, &f.render(), Some(f.to_json()));
    }
    let t = levioso_bench::security_table();
    util::emit(tier, "table2_security", &t.render(), None);
    let t = levioso_bench::annotation_table(&sweep, tier.scale());
    util::emit(tier, "table3_annotation", &t.render(), None);
    eprintln!("==> regenerated everything in {:.1}s", start.elapsed().as_secs_f64());
}

/// `--check` / `--bless`: compute the shape figures, then gate or record.
fn gate_mode(sweep: &Sweep, tier: Tier, check: bool, start: Instant) -> ! {
    let figures = gate::shape_figures(sweep, tier);
    let violations = gate::shape_violations(&figures);
    for v in &violations {
        eprintln!("SHAPE {v}");
    }
    if check {
        let report = gate::check_figures(&figures, tier);
        print!("{}", report.render());
        eprintln!(
            "==> checked {} cells in {:.1}s",
            report.cells_checked,
            start.elapsed().as_secs_f64()
        );
        if !report.is_clean() || !violations.is_empty() {
            std::process::exit(1);
        }
        std::process::exit(0);
    }
    if !violations.is_empty() {
        eprintln!("refusing to bless snapshots that violate shape invariants");
        std::process::exit(1);
    }
    match gate::bless_figures(&figures, tier) {
        Ok(paths) => {
            for p in &paths {
                println!("blessed {}", p.display());
            }
            eprintln!(
                "==> recorded {} snapshots in {:.1}s",
                paths.len(),
                start.elapsed().as_secs_f64()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("failed to write golden snapshots: {e}");
            std::process::exit(1);
        }
    }
}
