//! Regenerates every figure and table of the evaluation in order.
#[path = "../util.rs"]
mod util;

fn main() {
    let scale = util::scale_from_env();
    let t = levioso_bench::config_table();
    util::emit("table1_config", &t.render(), None);
    let f = levioso_bench::motivation_figure(scale);
    util::emit("fig1_motivation", &f.render(), Some(f.to_json()));
    let f = levioso_bench::overhead_figure(scale);
    util::emit("fig2_overhead", &f.render(), Some(f.to_json()));
    let f = levioso_bench::ablation_figure(scale);
    util::emit("fig3_ablation", &f.render(), Some(f.to_json()));
    let f = levioso_bench::rob_sweep_figure(scale, &[64, 128, 224, 352]);
    util::emit("fig4_rob_sweep", &f.render(), Some(f.to_json()));
    let f = levioso_bench::mem_sweep_figure(scale, &[60, 120, 240, 480]);
    util::emit("fig5_mem_sweep", &f.render(), Some(f.to_json()));
    let f = levioso_bench::transient_fill_figure(scale);
    util::emit("fig6_transient_fills", &f.render(), Some(f.to_json()));
    let f = levioso_bench::annotation_cap_figure(scale, &[0, 1, 2, 3, 4, usize::MAX]);
    util::emit("fig7_hint_budget", &f.render(), Some(f.to_json()));
    let t = levioso_bench::security_table();
    util::emit("table2_security", &t.render(), None);
    let t = levioso_bench::annotation_table(scale);
    util::emit("table3_annotation", &t.render(), None);
}
