//! The bench driver: regenerates every figure and table of the evaluation,
//! or gates the current tree against the golden snapshots.
//!
//! ```text
//! all                       # regenerate everything, mirror into results/
//! all --smoke --check       # CI: recompute shape figures, diff vs golden, exit 1 on drift
//! all --paper --bless       # regenerate + record new paper-tier goldens
//! all --threads 8           # size the sweep pool explicitly
//! all --serve target/jobs   # warm sweep server: poll a job directory for levq requests
//! ```
//!
//! All simulation cells fan out across the sweep pool; results are
//! bit-identical at any thread count. Every mode additionally writes the
//! simulator throughput snapshot to `results/BENCH_sim_throughput.json`
//! (see `levioso_bench::throughput`), preserving any recorded `baseline`
//! object so the before/after trajectory survives regeneration, and
//! mirrors the final telemetry snapshot (`levioso-metrics/1`, see
//! `levioso_support::metrics`) to `results/METRICS_run.json`.
#[path = "../util.rs"]
mod util;

use levioso_bench::{cellcache, gate, Sweep, Tier};
use std::time::Instant;

fn main() {
    let opts = util::Opts::parse(true, true);
    if let Some(dir) = &opts.serve {
        std::process::exit(levioso_bench::serve::serve(dir));
    }
    let sweep = opts.sweep();
    let tier = opts.tier;
    let start = Instant::now();
    eprintln!(
        "==> {} tier, {} worker thread(s){}",
        tier.name(),
        sweep.threads(),
        if opts.check {
            " — golden regression check"
        } else if opts.bless {
            " — regenerating golden snapshots"
        } else {
            ""
        }
    );
    if opts.resume {
        eprintln!(
            "==> resuming: {} cell(s) already banked under fingerprint {} — only the rest compute",
            cellcache::with(|c| c.cell_count()),
            cellcache::with(|c| c.fingerprint().to_string()),
        );
    }

    if opts.check || opts.bless {
        let code = gate_mode(&sweep, tier, opts.check, start);
        write_throughput(&sweep, tier, start);
        write_metrics();
        append_ledger(&sweep, tier, start);
        std::process::exit(code);
    }

    // Full regeneration, report order. Tables first (cheap), then the
    // shape figures (the parallel sweeps).
    let t = levioso_bench::config_table();
    util::emit(&opts, "table1_config", &t.render(), None);
    for (id, f) in gate::shape_figures(&sweep, tier) {
        util::emit(&opts, id, &f.render(), Some(f.to_json()));
    }
    let t = levioso_bench::security_table();
    util::emit(&opts, "table2_security", &t.render(), None);
    let t = levioso_bench::annotation_table(&sweep, tier.scale());
    util::emit(&opts, "table3_annotation", &t.render(), None);
    util::emit_attrib(&opts, &sweep, "overhead", &levioso_core::Scheme::HEADLINE);
    print_cache_summary(false);
    write_throughput(&sweep, tier, start);
    write_metrics();
    append_ledger(&sweep, tier, start);
    eprintln!("==> regenerated everything in {:.1}s", start.elapsed().as_secs_f64());
}

/// Appends this run's record to `results/ledger.jsonl` — the
/// longitudinal counterpart of the snapshot files above (rendered and
/// gated by `levhist`).
fn append_ledger(sweep: &Sweep, tier: Tier, start: Instant) {
    levioso_bench::ledger::append_run("all", tier, sweep.threads(), start.elapsed().as_secs_f64());
}

/// Mirrors the final registry snapshot to `results/METRICS_run.json` —
/// the same document a served session refreshes after every request.
fn write_metrics() {
    let path = util::results_dir().join("METRICS_run.json");
    if let Err(e) = std::fs::create_dir_all(util::results_dir())
        .and_then(|()| std::fs::write(&path, levioso_support::metrics::snapshot_text()))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Prints the sweep-cache hit/miss split (the line `scripts/ci.sh` asserts
/// on) and, when `list_dirty`, exactly which cells this run had to
/// recompute — the "what did my core change invalidate" report.
fn print_cache_summary(list_dirty: bool) {
    let report = cellcache::report();
    let fingerprint = cellcache::with(|c| c.fingerprint().to_string());
    println!("{}", report.summary(&fingerprint));
    if !list_dirty || report.miss_labels.is_empty() {
        return;
    }
    const SHOWN: usize = 24;
    println!("dirty cells recomputed ({}):", report.miss_labels.len());
    for label in report.miss_labels.iter().take(SHOWN) {
        println!("  {label}");
    }
    if report.miss_labels.len() > SHOWN {
        println!("  ... and {} more", report.miss_labels.len() - SHOWN);
    }
}

/// `--check` / `--bless`: compute the shape figures, then gate or record.
/// Returns the process exit code (the caller still has bookkeeping to do).
fn gate_mode(sweep: &Sweep, tier: Tier, check: bool, start: Instant) -> i32 {
    let figures = gate::shape_figures(sweep, tier);
    let violations = gate::shape_violations(&figures);
    for v in &violations {
        eprintln!("SHAPE {v}");
    }
    if check {
        let report = gate::check_figures(&figures, tier);
        print!("{}", report.render());
        print_cache_summary(true);
        eprintln!(
            "==> checked {} cells in {:.1}s",
            report.cells_checked,
            start.elapsed().as_secs_f64()
        );
        return if report.is_clean() && violations.is_empty() { 0 } else { 1 };
    }
    if !violations.is_empty() {
        eprintln!("refusing to bless snapshots that violate shape invariants");
        return 1;
    }
    match gate::bless_figures(&figures, tier) {
        Ok(paths) => {
            for p in &paths {
                println!("blessed {}", p.display());
            }
            print_cache_summary(false);
            eprintln!(
                "==> recorded {} snapshots in {:.1}s",
                paths.len(),
                start.elapsed().as_secs_f64()
            );
            0
        }
        Err(e) => {
            eprintln!("bless refused or failed: {e}");
            1
        }
    }
}

/// Writes `results/BENCH_sim_throughput.json` from the global meter,
/// carrying over the `baseline` object of an existing file (if any) so the
/// recorded before/after comparison survives every regeneration.
fn write_throughput(sweep: &Sweep, tier: Tier, start: Instant) {
    let t = sweep.throughput();
    let path = util::results_dir().join("BENCH_sim_throughput.json");
    let baseline = std::fs::read_to_string(&path)
        .ok()
        .and_then(|old| util::json_object_field(&old, "baseline"));
    let json = util::throughput_json(
        &t,
        tier,
        sweep.threads(),
        start.elapsed().as_secs_f64(),
        &cellcache::report(),
        cellcache::enabled(),
        baseline.as_deref(),
    );
    if let Err(e) =
        std::fs::create_dir_all(util::results_dir()).and_then(|()| std::fs::write(&path, json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
        return;
    }
    eprintln!(
        "==> sim throughput: {} cells, {:.1} simulated Mcycles in {:.1}s busy \
         ({:.0} kilocycles/busy-sec, {:.2} cells/busy-sec) -> {}",
        t.cells,
        t.sim_cycles as f64 / 1e6,
        t.busy_seconds(),
        t.kilocycles_per_busy_sec(),
        t.cells_per_busy_sec(),
        path.display()
    );
}
