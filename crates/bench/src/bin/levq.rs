//! The thin client for the warm sweep server (`all --serve <jobdir>`).
//!
//! Writes one `levioso-sweep-job/1` request file into the job directory,
//! waits for the matching response, prints the served report bytes to
//! stdout (byte-identical to the cold CLI's report), and exits with the
//! server's status — so `levq <dir> check --smoke` is a drop-in for
//! `all --smoke --check` whenever a server is running.
//!
//! ```text
//! levq target/jobs check --smoke --threads 8   # golden check via the warm server
//! levq target/jobs table4 --smoke              # noninterference gate, same process
//! levq target/jobs shutdown                    # stop the server
//! ```
//!
//! One machine-greppable summary line goes to stderr:
//! `levq: id=<id> status=<n> wall_seconds=<s> l1_hits=<n> l2_hits=<n> misses=<n>`.

use levioso_support::jobdir::{self, Request, Response};
use levioso_support::Json;
use std::path::PathBuf;
use std::process::exit;
use std::time::{Duration, Instant};

struct Args {
    jobdir: PathBuf,
    selector: String,
    tier: String,
    threads: usize,
    id: Option<String>,
    timeout: Duration,
}

fn usage() -> String {
    "usage: levq <jobdir> <selector> [--smoke|--paper] [--threads N] [--id ID] [--timeout-secs N]\n\
     \n  <jobdir>            the directory a running `all --serve <jobdir>` polls\
     \n  <selector>          check | table1_config | table2_security | table3_annotation |\
     \n                      table4 | fig1_motivation..fig7_hint_budget | status | shutdown\
     \n  --smoke / --paper   sweep tier (default: LEVIOSO_SCALE or paper)\
     \n  --threads N         server-side worker threads for this request (default 1)\
     \n  --id ID             request id (default: levq-<pid>; names the request/response files)\
     \n  --timeout-secs N    give up waiting for the response after N seconds (default 600)"
        .to_string()
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}\n{}", usage());
    exit(2)
}

fn parse_args() -> Args {
    let mut positional: Vec<String> = Vec::new();
    let mut tier = match std::env::var("LEVIOSO_SCALE").as_deref() {
        Ok("smoke") | Ok("SMOKE") => "smoke".to_string(),
        _ => "paper".to_string(),
    };
    let mut threads = 1usize;
    let mut id = None;
    let mut timeout = Duration::from_secs(600);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => tier = "smoke".to_string(),
            "--paper" => tier = "paper".to_string(),
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage_error("--threads needs a positive integer"),
            },
            "--id" => match args.next() {
                Some(v) if jobdir::valid_id(&v) => id = Some(v),
                _ => usage_error("--id needs a filename-safe id (alphanumerics, `-`, `_`, `.`)"),
            },
            "--timeout-secs" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => timeout = Duration::from_secs(n),
                _ => usage_error("--timeout-secs needs a positive integer"),
            },
            "--help" | "-h" => {
                eprintln!("{}", usage());
                exit(0);
            }
            other if other.starts_with('-') => usage_error(&format!("unknown argument `{other}`")),
            _ => positional.push(arg),
        }
    }
    if positional.len() != 2 {
        usage_error("expected exactly <jobdir> and <selector>");
    }
    let selector = positional.pop().expect("two positionals");
    let jobdir = PathBuf::from(positional.pop().expect("two positionals"));
    Args { jobdir, selector, tier, threads, id, timeout }
}

fn main() {
    let args = parse_args();
    let id = args.id.unwrap_or_else(|| format!("levq-{}", std::process::id()));
    let request = Request {
        id: id.clone(),
        selector: args.selector,
        tier: args.tier,
        threads: args.threads,
        // Refuse service from a stale server: the response must come from
        // the same core revision this client was built against.
        fingerprint: levioso_uarch::core_fingerprint(),
    };
    // A leftover response under our id (crashed earlier client) must not
    // be mistaken for the answer to this request.
    let resp_path = jobdir::response_path(&args.jobdir, &id);
    let _ = std::fs::remove_file(&resp_path);
    if let Err(e) = request.write(&args.jobdir) {
        eprintln!("levq: cannot write request into {}: {e}", args.jobdir.display());
        exit(3);
    }
    let deadline = Instant::now() + args.timeout;
    let text = loop {
        match std::fs::read_to_string(&resp_path) {
            Ok(text) => break text,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // Withdraw the request so a late-starting server does not
                // burn a sweep nobody is waiting for.
                let _ = std::fs::remove_file(jobdir::request_path(&args.jobdir, &id));
                eprintln!(
                    "levq: no response for {id} within {}s — is `all --serve {}` running?",
                    args.timeout.as_secs(),
                    args.jobdir.display()
                );
                exit(3);
            }
        }
    };
    // The client consumes its response; the job directory stays clean.
    let _ = std::fs::remove_file(&resp_path);
    let response = Json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|doc| Response::from_json(&doc))
        .unwrap_or_else(|e| {
            eprintln!("levq: unparseable response {}: {e}", resp_path.display());
            exit(3);
        });
    print!("{}", response.report);
    if let Some(error) = &response.error {
        eprintln!("levq: server error: {error}");
    }
    eprintln!(
        "levq: id={id} status={} wall_seconds={:.3} l1_hits={} l2_hits={} misses={}",
        response.status,
        response.wall_seconds,
        response.cache.l1_hits,
        response.cache.l2_hits,
        response.cache.misses,
    );
    exit(i32::try_from(response.status).unwrap_or(1));
}
