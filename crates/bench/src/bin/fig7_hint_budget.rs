//! F7 (extension): Levioso overhead vs annotation hint budget.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, false);
    let f =
        levioso_bench::annotation_cap_figure(&opts.sweep(), opts.tier.scale(), opts.tier.caps());
    util::emit(&opts, "fig7_hint_budget", &f.render(), Some(f.to_json()));
    util::finish(&opts, "fig7_hint_budget", start);
}
