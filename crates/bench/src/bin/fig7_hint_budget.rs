//! F7 (extension): Levioso overhead vs annotation hint budget.
#[path = "../util.rs"]
mod util;

fn main() {
    let f = levioso_bench::annotation_cap_figure(
        util::scale_from_env(),
        &[0, 1, 2, 3, 4, usize::MAX],
    );
    util::emit("fig7_hint_budget", &f.render(), Some(f.to_json()));
}
