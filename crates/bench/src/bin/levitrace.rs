//! `levitrace` — trace one simulation cell and export a Perfetto-loadable
//! Chrome trace-event file plus the delay-attribution report.
//!
//! ```text
//! levitrace --smoke --workload filter_scan --scheme levioso --out trace.json
//! ```
//!
//! The cell runs once with a [`levioso_bench::ChromeTraceSink`] (bounded
//! instruction-lifetime spans) and a [`levioso_bench::AttribSink`]
//! (per-rule blame) teed together. Before exiting the tool proves its
//! own output:
//!
//! 1. **Conservation** — blamed delay cycles must equal the simulator's
//!    `policy_delay_cycles` exactly;
//! 2. **Round-trip** — the written file is re-read and re-parsed with
//!    `levioso_support::Json`, and its structural invariants checked
//!    (`validate_chrome_trace`).
//!
//! Any violation exits nonzero, which is how CI uses it (`scripts/ci.sh`).
//! Load the output at <https://ui.perfetto.dev> or `chrome://tracing`;
//! timestamps are simulator cycles shown as microseconds.

use levioso_bench::{run_workload_traced, AttribSink, ChromeTraceSink};
use levioso_core::Scheme;
use levioso_uarch::{CoreConfig, Tee};
use levioso_workloads::{suite, Scale};
use std::process::exit;

struct Args {
    scale: Scale,
    workload: String,
    scheme: Scheme,
    limit: usize,
    out: std::path::PathBuf,
    quiet: bool,
}

fn usage() -> String {
    "usage: levitrace [--smoke|--paper] [--workload NAME] [--scheme NAME] \
     [--limit N] [--out PATH] [--quiet]\n\
     \n  --smoke          smoke-tier problem size (default: paper tier)\
     \n  --workload NAME  workload to trace (default: filter_scan)\
     \n  --scheme NAME    scheme to trace under (default: levioso)\
     \n  --limit N        max spans retained in the trace ring (default: 65536)\
     \n  --out PATH       trace output path (default: levioso_trace.json)\
     \n  --quiet, -q      suppress the attribution report on stdout"
        .to_string()
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: Scale::Paper,
        workload: "filter_scan".to_string(),
        scheme: Scheme::Levioso,
        limit: levioso_bench::trace_export::DEFAULT_CAPACITY,
        out: "levioso_trace.json".into(),
        quiet: false,
    };
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n{}", usage());
        exit(2)
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => a.scale = Scale::Smoke,
            "--paper" => a.scale = Scale::Paper,
            "--workload" => match args.next() {
                Some(w) => a.workload = w,
                None => fail("--workload needs a name"),
            },
            "--scheme" => match args.next().map(|s| s.parse::<Scheme>()) {
                Some(Ok(s)) => a.scheme = s,
                Some(Err(e)) => fail(&e.to_string()),
                None => fail("--scheme needs a name"),
            },
            "--limit" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => a.limit = n,
                _ => fail("--limit needs a positive integer"),
            },
            "--out" => match args.next() {
                Some(p) => a.out = p.into(),
                None => fail("--out needs a path"),
            },
            "--quiet" | "-q" => a.quiet = true,
            "--help" | "-h" => {
                eprintln!("{}", usage());
                exit(0);
            }
            other => fail(&format!("unknown argument `{other}`")),
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let workloads = suite(args.scale);
    let Some(w) = workloads.iter().find(|w| w.name == args.workload) else {
        eprintln!(
            "error: unknown workload `{}` (expected one of: {})",
            args.workload,
            workloads.iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
        );
        exit(2);
    };

    let sink =
        Tee::new(Box::new(ChromeTraceSink::with_capacity(args.limit)), Box::new(AttribSink::new()));
    let (stats, sink) = run_workload_traced(w, args.scheme, &CoreConfig::default(), Box::new(sink));
    let tee = sink.into_any().downcast::<Tee>().expect("the tee we attached");
    let chrome =
        tee.a.into_any().downcast::<ChromeTraceSink>().expect("chrome sink is the first leg");
    let attrib = tee.b.into_any().downcast::<AttribSink>().expect("attrib sink is the second leg");
    let attrib = attrib.into_stats();

    // Proof 1: blame conservation against the simulator's own counter.
    if attrib.blamed_cycles() != stats.policy_delay_cycles {
        eprintln!(
            "FAIL: attribution not conserved: blamed {} cycles, simulator counted {}",
            attrib.blamed_cycles(),
            stats.policy_delay_cycles
        );
        exit(1);
    }

    let dropped = chrome.dropped();
    let doc = chrome.into_chrome_json();
    if let Err(e) = std::fs::write(&args.out, &doc) {
        eprintln!("FAIL: could not write {}: {e}", args.out.display());
        exit(1);
    }

    // Proof 2: the file on disk re-parses and passes structural checks.
    let reread = match std::fs::read_to_string(&args.out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: could not re-read {}: {e}", args.out.display());
            exit(1);
        }
    };
    let summary = match levioso_bench::validate_chrome_trace(&reread) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: emitted trace is invalid: {e}");
            exit(1);
        }
    };

    if !args.quiet {
        print!("{}", attrib.render(&format!("delay attribution: {} / {}", w.name, args.scheme)));
        println!();
    }
    eprintln!(
        "==> {} under {}: {} cycles, {} committed, {} policy-delay cycles (conserved)",
        w.name, args.scheme, stats.cycles, stats.committed, stats.policy_delay_cycles
    );
    eprintln!(
        "==> {}: {} spans ({} commit / {} squash, {} dropped), horizon {} cycles — \
         load it at https://ui.perfetto.dev",
        args.out.display(),
        summary.span_events,
        summary.committed,
        summary.squashed,
        dropped,
        summary.max_end
    );
}
