//! F1: conservative speculation shadow vs. true dependencies.
#[path = "../util.rs"]
mod util;

fn main() {
    let opts = util::Opts::parse(false);
    let f = levioso_bench::motivation_figure(&opts.sweep(), opts.tier.scale());
    util::emit(opts.tier, "fig1_motivation", &f.render(), Some(f.to_json()));
}
