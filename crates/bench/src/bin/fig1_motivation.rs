//! F1: conservative speculation shadow vs. true dependencies.
#[path = "../util.rs"]
mod util;

fn main() {
    let f = levioso_bench::motivation_figure(util::scale_from_env());
    util::emit("fig1_motivation", &f.render(), Some(f.to_json()));
}
