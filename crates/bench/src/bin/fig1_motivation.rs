//! F1: conservative speculation shadow vs. true dependencies.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, true);
    let sweep = opts.sweep();
    let f = levioso_bench::motivation_figure(&sweep, opts.tier.scale());
    util::emit(&opts, "fig1_motivation", &f.render(), Some(f.to_json()));
    util::emit_attrib(&opts, &sweep, "fig1_motivation", &[levioso_core::Scheme::Levioso]);
    util::finish(&opts, "fig1_motivation", start);
}
