//! T3: annotation cost.
#[path = "../util.rs"]
mod util;

fn main() {
    let t = levioso_bench::annotation_table(util::scale_from_env());
    util::emit("table3_annotation", &t.render(), None);
}
