//! T3: annotation cost.
#[path = "../util.rs"]
mod util;

fn main() {
    let start = std::time::Instant::now();
    let opts = util::Opts::parse(false, false);
    let t = levioso_bench::annotation_table(&opts.sweep(), opts.tier.scale());
    util::emit(&opts, "table3_annotation", &t.render(), None);
    util::finish(&opts, "table3_annotation", start);
}
