//! CI validator for the simulator-throughput snapshot.
//!
//! Reads `results/BENCH_sim_throughput.json` (written by every `all` run),
//! validates it, and prints a human summary plus one machine-readable
//! `PERF ...` line. Exits 1 if the file is missing or malformed — the CI
//! pipeline runs this right after the smoke golden gate, so a change that
//! silently stops producing throughput numbers fails the build.
//!
//! ```text
//! perfcheck            # validate + summarize results/BENCH_sim_throughput.json
//! ```
#[path = "../util.rs"]
mod util;

use std::process::exit;

fn main() {
    let path = util::results_dir().join("BENCH_sim_throughput.json");
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perfcheck: cannot read {}: {e}", path.display());
            eprintln!(
                "perfcheck: run the `all` driver first (it writes the snapshot in every mode)"
            );
            exit(1);
        }
    };
    if util::json_str_field(&doc, "schema").as_deref() != Some("levioso-sim-throughput/2") {
        eprintln!("perfcheck: {}: missing or unknown schema field", path.display());
        exit(1);
    }
    let Some(current) = util::json_object_field(&doc, "current") else {
        eprintln!("perfcheck: {}: no `current` object", path.display());
        exit(1);
    };
    let field = |key: &str| -> f64 {
        match util::json_num_field(&current, key) {
            Some(v) if v.is_finite() => v,
            _ => {
                eprintln!(
                    "perfcheck: {}: `current.{key}` missing or not a finite number",
                    path.display()
                );
                exit(1);
            }
        }
    };
    let tier = util::json_str_field(&current, "tier").unwrap_or_else(|| {
        eprintln!("perfcheck: {}: `current.tier` missing", path.display());
        exit(1);
    });
    let threads = field("threads");
    let cells = field("cells");
    let busy = field("busy_seconds");
    let wall = field("wall_seconds");
    let kc = field("kilocycles_per_busy_sec");
    let cps = field("cells_per_busy_sec");
    let Some(cache) = util::json_object_field(&current, "cache") else {
        eprintln!("perfcheck: {}: `current.cache` object missing", path.display());
        exit(1);
    };
    let cache_field = |key: &str| -> f64 {
        match util::json_num_field(&cache, key) {
            Some(v) if v.is_finite() && v >= 0.0 => v,
            _ => {
                eprintln!(
                    "perfcheck: {}: `current.cache.{key}` missing or invalid",
                    path.display()
                );
                exit(1);
            }
        }
    };
    let cache_enabled = util::json_bool_field(&cache, "enabled").unwrap_or_else(|| {
        eprintln!("perfcheck: {}: `current.cache.enabled` missing", path.display());
        exit(1);
    });
    let hits = cache_field("hits");
    let misses = cache_field("misses");
    // The throughput meter must only sample freshly computed cells: every
    // recorded cell corresponds to exactly one cache miss (hits return
    // stored stats and skip the meter). A snapshot where cells != misses
    // means cached results polluted the busy-time samples — fail loudly.
    if cache_enabled && cells != misses {
        eprintln!(
            "perfcheck: {}: {cells:.0} throughput cells but {misses:.0} cache misses — \
             busy-time samples must come only from freshly computed cells",
            path.display()
        );
        exit(1);
    }
    // A fully warm cache legitimately records zero fresh cells; no work at
    // all (no cells AND no hits) still fails.
    if cells < 1.0 && hits < 1.0 {
        eprintln!("perfcheck: {}: snapshot records no simulation work", path.display());
        exit(1);
    }
    if cells >= 1.0 && busy <= 0.0 {
        eprintln!("perfcheck: {}: cells recorded but zero busy time", path.display());
        exit(1);
    }

    println!(
        "sim throughput ({tier} tier, {threads:.0} thread(s)): {cells:.0} cells in {busy:.1}s busy / {wall:.1}s wall"
    );
    println!(
        "  sweep-cache: enabled={cache_enabled} hits={hits:.0} misses={misses:.0} \
         (all throughput samples from fresh cells)"
    );
    println!("  {kc:.0} simulated kilocycles per busy-second, {cps:.2} cells per busy-second");
    if let Some(baseline) = util::json_object_field(&doc, "baseline") {
        if let (Some(bkc), Some(bcps)) = (
            util::json_num_field(&baseline, "kilocycles_per_busy_sec"),
            util::json_num_field(&baseline, "cells_per_busy_sec"),
        ) {
            if bkc > 0.0 && bcps > 0.0 {
                println!(
                    "  vs recorded baseline: {:.2}x kilocycles/busy-sec, {:.2}x cells/busy-sec",
                    kc / bkc,
                    cps / bcps
                );
            }
        }
    }
    println!(
        "PERF tier={tier} threads={threads:.0} cells={cells:.0} busy_seconds={busy:.3} \
         wall_seconds={wall:.3} kilocycles_per_busy_sec={kc:.3} cells_per_busy_sec={cps:.3}"
    );
}
