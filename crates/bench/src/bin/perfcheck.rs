//! CI validator for the simulator-throughput snapshot.
//!
//! Reads `results/BENCH_sim_throughput.json` (written by every `all` run),
//! validates it, and prints a human summary plus one machine-readable
//! `PERF ...` line. Exits 1 if the file is missing or malformed — the CI
//! pipeline runs this right after the smoke golden gate, so a change that
//! silently stops producing throughput numbers fails the build.
//!
//! Also validates `results/BENCH_serve_latency.json` when present (the
//! warm sweep server's request-latency book, `levioso-serve-latency/2`,
//! including the per-selector p50/p95/p99 distributions) — a server run
//! that stops recording latencies fails the build the same way a silent
//! throughput regression would. Likewise `results/METRICS_run.json` (the
//! `levioso-metrics/1` registry snapshot every `all` run and every served
//! request mirrors): a present file must be schema-tagged and every
//! counter/timer well-formed.
//!
//! ```text
//! perfcheck            # validate + summarize results/BENCH_*.json
//! ```
#[path = "../util.rs"]
mod util;

use levioso_support::Json;
use std::process::exit;

fn main() {
    let path = util::results_dir().join("BENCH_sim_throughput.json");
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perfcheck: cannot read {}: {e}", path.display());
            eprintln!(
                "perfcheck: run the `all` driver first (it writes the snapshot in every mode)"
            );
            exit(1);
        }
    };
    if util::json_str_field(&doc, "schema").as_deref() != Some("levioso-sim-throughput/2") {
        eprintln!("perfcheck: {}: missing or unknown schema field", path.display());
        exit(1);
    }
    let Some(current) = util::json_object_field(&doc, "current") else {
        eprintln!("perfcheck: {}: no `current` object", path.display());
        exit(1);
    };
    let field = |key: &str| -> f64 {
        match util::json_num_field(&current, key) {
            Some(v) if v.is_finite() => v,
            _ => {
                eprintln!(
                    "perfcheck: {}: `current.{key}` missing or not a finite number",
                    path.display()
                );
                exit(1);
            }
        }
    };
    let tier = util::json_str_field(&current, "tier").unwrap_or_else(|| {
        eprintln!("perfcheck: {}: `current.tier` missing", path.display());
        exit(1);
    });
    let threads = field("threads");
    let cells = field("cells");
    let busy = field("busy_seconds");
    let wall = field("wall_seconds");
    let kc = field("kilocycles_per_busy_sec");
    let cps = field("cells_per_busy_sec");
    let Some(cache) = util::json_object_field(&current, "cache") else {
        eprintln!("perfcheck: {}: `current.cache` object missing", path.display());
        exit(1);
    };
    let cache_field = |key: &str| -> f64 {
        match util::json_num_field(&cache, key) {
            Some(v) if v.is_finite() && v >= 0.0 => v,
            _ => {
                eprintln!(
                    "perfcheck: {}: `current.cache.{key}` missing or invalid",
                    path.display()
                );
                exit(1);
            }
        }
    };
    let cache_enabled = util::json_bool_field(&cache, "enabled").unwrap_or_else(|| {
        eprintln!("perfcheck: {}: `current.cache.enabled` missing", path.display());
        exit(1);
    });
    let hits = cache_field("hits");
    let misses = cache_field("misses");
    // Additive field: present (and bounded by hits) since the hot tier
    // landed; absent in snapshots recorded before it.
    let l1_hits = util::json_num_field(&cache, "l1_hits").unwrap_or(0.0);
    if !(l1_hits.is_finite() && (0.0..=hits).contains(&l1_hits)) {
        eprintln!(
            "perfcheck: {}: `current.cache.l1_hits` ({l1_hits}) must be between 0 and hits \
             ({hits:.0})",
            path.display()
        );
        exit(1);
    }
    // The throughput meter must only sample freshly computed cells: every
    // recorded cell corresponds to exactly one cache miss (hits return
    // stored stats and skip the meter). A snapshot where cells != misses
    // means cached results polluted the busy-time samples — fail loudly.
    if cache_enabled && cells != misses {
        eprintln!(
            "perfcheck: {}: {cells:.0} throughput cells but {misses:.0} cache misses — \
             busy-time samples must come only from freshly computed cells",
            path.display()
        );
        exit(1);
    }
    // A fully warm cache legitimately records zero fresh cells; no work at
    // all (no cells AND no hits) still fails.
    if cells < 1.0 && hits < 1.0 {
        eprintln!("perfcheck: {}: snapshot records no simulation work", path.display());
        exit(1);
    }
    if cells >= 1.0 && busy <= 0.0 {
        eprintln!("perfcheck: {}: cells recorded but zero busy time", path.display());
        exit(1);
    }

    println!(
        "sim throughput ({tier} tier, {threads:.0} thread(s)): {cells:.0} cells in {busy:.1}s busy / {wall:.1}s wall"
    );
    println!(
        "  sweep-cache: enabled={cache_enabled} hits={hits:.0} misses={misses:.0} \
         (all throughput samples from fresh cells)"
    );
    println!("  {kc:.0} simulated kilocycles per busy-second, {cps:.2} cells per busy-second");
    if let Some(baseline) = util::json_object_field(&doc, "baseline") {
        if let (Some(bkc), Some(bcps)) = (
            util::json_num_field(&baseline, "kilocycles_per_busy_sec"),
            util::json_num_field(&baseline, "cells_per_busy_sec"),
        ) {
            if bkc > 0.0 && bcps > 0.0 {
                println!(
                    "  vs recorded baseline: {:.2}x kilocycles/busy-sec, {:.2}x cells/busy-sec",
                    kc / bkc,
                    cps / bcps
                );
            }
        }
    }
    println!(
        "PERF tier={tier} threads={threads:.0} cells={cells:.0} busy_seconds={busy:.3} \
         wall_seconds={wall:.3} kilocycles_per_busy_sec={kc:.3} cells_per_busy_sec={cps:.3}"
    );
    check_serve_latency();
    check_metrics_run();
    check_ledger();
}

/// Validates `results/ledger.jsonl` if runs have appended to it. Absence
/// is fine (fresh clone); a present file must parse record-for-record —
/// the loader is strict and names the corrupt line. Judging the trends
/// is delegated to `levhist --check`; perfcheck only guarantees the
/// sentinel's input is well-formed.
fn check_ledger() {
    let path = levioso_bench::ledger::ledger_path();
    if !path.exists() {
        return;
    }
    let records = match levioso_support::ledger::load(&path) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("perfcheck: {e}");
            exit(1);
        }
    };
    let series = levioso_support::ledger::series_of(&records);
    let checkable =
        series.iter().filter(|s| s.points.len() >= levioso_support::ledger::MIN_SAMPLES).count();
    println!("LEDGER records={} series={} checkable={checkable}", records.len(), series.len());
}

/// Validates `results/BENCH_serve_latency.json` if a server wrote one.
/// Absence is fine (not every pipeline runs serve mode); a present file
/// must be well-formed, and every recorded latency finite.
fn check_serve_latency() {
    let path = util::results_dir().join("BENCH_serve_latency.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let fail = |reason: &str| -> ! {
        eprintln!("perfcheck: {}: {reason}", path.display());
        exit(1);
    };
    let Ok(doc) = Json::parse(&text) else { fail("not valid JSON") };
    if doc.get("schema").and_then(Json::as_str) != Some("levioso-serve-latency/2") {
        fail("missing or unknown schema field (expected levioso-serve-latency/2)");
    }
    // Either cold field may be null (no check request served yet), but a
    // recorded value must be a positive finite duration.
    let secs = |key: &str| -> Option<f64> {
        match doc.get(key) {
            Some(Json::Null) => None,
            Some(v) => match v.as_f64() {
                Some(s) if s.is_finite() && s > 0.0 => Some(s),
                _ => fail(&format!("`{key}` must be null or a positive finite number")),
            },
            None => fail(&format!("missing field `{key}`")),
        }
    };
    let cold = secs("cold_request_seconds");
    let warm = secs("warm_request_seconds");
    let Some(requests) = doc.get("requests").and_then(Json::as_arr) else {
        fail("missing or non-array field `requests`")
    };
    if requests.is_empty() {
        fail("a server wrote the latency book but recorded no requests");
    }
    for (i, req) in requests.iter().enumerate() {
        let wall = req.get("wall_seconds").and_then(Json::as_f64);
        if !wall.is_some_and(|w| w.is_finite() && w >= 0.0) {
            fail(&format!("requests[{i}].wall_seconds missing or not finite"));
        }
        for key in ["l1_hits", "l2_hits", "misses"] {
            let v = req.get("cache").and_then(|c| c.get(key)).and_then(Json::as_i64);
            if v.is_none_or(|n| n < 0) {
                fail(&format!("requests[{i}].cache.{key} missing or negative"));
            }
        }
    }
    // The per-selector latency distributions: every selector's entry must
    // carry a parsable histogram, ordered percentiles, and counts that sum
    // to the request book.
    let Some(Json::Obj(selectors)) = doc.get("selectors") else {
        fail("missing or non-object field `selectors`")
    };
    let mut selector_count = 0i64;
    for (selector, entry) in selectors {
        let sfail = |reason: &str| -> ! { fail(&format!("selectors.{selector}: {reason}")) };
        let count = match entry.get("count").and_then(Json::as_i64) {
            Some(n) if n >= 1 => n,
            _ => sfail("`count` missing or < 1"),
        };
        selector_count += count;
        let pct = |key: &str| -> f64 {
            match entry.get(key).and_then(Json::as_f64) {
                Some(v) if v.is_finite() && v >= 0.0 => v,
                _ => sfail(&format!("`{key}` missing or not a finite non-negative number")),
            }
        };
        let (p50, p95, p99) = (pct("p50_seconds"), pct("p95_seconds"), pct("p99_seconds"));
        if !(p50 <= p95 && p95 <= p99) {
            sfail(&format!("percentiles out of order: p50={p50} p95={p95} p99={p99}"));
        }
        let Some(h) = entry.get("histogram_micros").and_then(levioso_support::Histogram::from_json)
        else {
            sfail("`histogram_micros` missing or malformed")
        };
        if h.count() != count as u64 {
            sfail(&format!("histogram count {} disagrees with `count` {count}", h.count()));
        }
    }
    if selector_count != requests.len() as i64 {
        fail(&format!(
            "selector counts sum to {selector_count} but the book records {} request(s)",
            requests.len()
        ));
    }
    match (cold, warm) {
        (Some(c), Some(w)) => println!(
            "serve latency: {} request(s); smoke-check cold {c:.3}s -> warm {w:.3}s ({:.1}% of cold)",
            requests.len(),
            100.0 * w / c
        ),
        (Some(c), None) => {
            println!("serve latency: {} request(s); check cold {c:.3}s (no warm replay yet)", requests.len());
        }
        _ => println!("serve latency: {} request(s); no check request served yet", requests.len()),
    }
    println!(
        "SERVE requests={} cold_request_seconds={} warm_request_seconds={}",
        requests.len(),
        cold.map_or("null".to_string(), |c| format!("{c:.3}")),
        warm.map_or("null".to_string(), |w| format!("{w:.3}")),
    );
}

/// Validates `results/METRICS_run.json` if a run mirrored one. Absence is
/// fine (pre-telemetry snapshots); a present file must carry the schema
/// tag, u64-parsable counters, and well-formed timer histograms.
fn check_metrics_run() {
    let path = util::results_dir().join("METRICS_run.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let fail = |reason: &str| -> ! {
        eprintln!("perfcheck: {}: {reason}", path.display());
        exit(1);
    };
    let Ok(doc) = Json::parse(&text) else { fail("not valid JSON") };
    if doc.get("schema").and_then(Json::as_str) != Some("levioso-metrics/1") {
        fail("missing or unknown schema field (expected levioso-metrics/1)");
    }
    let obj = |key: &str| -> &Vec<(String, Json)> {
        match doc.get(key) {
            Some(Json::Obj(entries)) => entries,
            _ => fail(&format!("missing or non-object field `{key}`")),
        }
    };
    let counters = obj("counters");
    for (name, value) in counters {
        if value.as_str().is_none_or(|s| s.parse::<u64>().is_err()) {
            fail(&format!("counter `{name}` is not a u64-in-string"));
        }
    }
    let gauges = obj("gauges");
    for (name, value) in gauges {
        if value.as_i64().is_none() {
            fail(&format!("gauge `{name}` is not an integer"));
        }
    }
    let timers = obj("timers");
    for (name, value) in timers {
        if levioso_support::Histogram::from_json(value).is_none() {
            fail(&format!("timer `{name}` is not a parsable histogram"));
        }
    }
    println!(
        "METRICS counters={} gauges={} timers={} enabled={}",
        counters.len(),
        gauges.len(),
        timers.len(),
        doc.get("enabled").and_then(Json::as_bool).map_or("null".to_string(), |b| b.to_string()),
    );
}
